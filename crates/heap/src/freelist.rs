//! The object-space allocator: a free list over a simulated address range,
//! modelled on the JDK 1.1.8 allocator the paper describes, with a pluggable
//! search policy.
//!
//! The original allocator "does a linear search through the object pool to
//! find the first object that is at least as big as requested (and also tries
//! to coalesce two contiguous objects to make a block big enough)" and "keeps
//! track of the last location where it allocated an object from" (§3.7).
//! [`AllocPolicy::FirstFitRover`] reproduces exactly that: a rover cursor,
//! first-fit search with wrap-around, block splitting, and coalescing of
//! adjacent free blocks when objects are freed.  It stays the default — the
//! §4.8 recycling experiment contrasts the recycle list's cost against
//! precisely this search, so [`ObjectSpace::search_steps`] must keep meaning
//! "blocks examined by the linear search".
//!
//! [`AllocPolicy::SegregatedFit`] is the modern alternative: free blocks are
//! indexed by power-of-two size class, so an allocation probes only bins
//! that could possibly fit instead of walking the address-ordered list.  The
//! bins hold *candidate* addresses and are validated lazily against the
//! block map (a block may have been carved or coalesced since it was
//! binned); stale entries are dropped on discovery, so every free block is
//! reachable through exactly its current size class.

use std::collections::BTreeMap;

/// Address of a block within the object space (byte offset from the start of
/// the space).
pub type BlockAddr = usize;

/// How [`ObjectSpace::alloc`] searches for a free block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocPolicy {
    /// The paper-faithful JDK 1.1.8 search: first fit starting at the rover
    /// (the point of the last allocation), wrapping around to the start of
    /// the space.  O(free blocks) per allocation.
    #[default]
    FirstFitRover,
    /// Segregated free lists: free blocks indexed by power-of-two size
    /// class; an allocation probes the smallest class that can fit and
    /// walks upward.  O(size classes) bin probes per allocation.
    SegregatedFit,
}

impl AllocPolicy {
    /// Short label used in benchmark names and reports.
    pub fn label(self) -> &'static str {
        match self {
            AllocPolicy::FirstFitRover => "first_fit",
            AllocPolicy::SegregatedFit => "segregated",
        }
    }
}

/// Size class of a block: the bit length of its size, so class `c` holds
/// sizes in `[2^(c-1), 2^c)`.  Blocks in classes above `class_of(size)` are
/// always large enough for `size`.
fn class_of(size: usize) -> usize {
    (usize::BITS - size.leading_zeros()) as usize
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    size: usize,
    free: bool,
}

/// Statistics describing the current state of the object space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceStats {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Bytes currently allocated.
    pub used: usize,
    /// Bytes currently free (possibly fragmented).
    pub free: usize,
    /// Size of the largest single free block.
    pub largest_free_block: usize,
    /// Number of free blocks (a measure of fragmentation).
    pub free_blocks: usize,
    /// Number of allocated blocks.
    pub allocated_blocks: usize,
}

/// A first-fit, coalescing free-list allocator over `capacity` bytes.
///
/// # Example
///
/// ```
/// use cg_heap::ObjectSpace;
///
/// let mut space = ObjectSpace::new(64);
/// let a = space.alloc(16).unwrap();
/// let b = space.alloc(16).unwrap();
/// assert_ne!(a, b);
/// space.free(a);
/// // First-fit continues from the rover (past `b`), so the next allocation
/// // lands after `b` rather than reusing `a` immediately.
/// let c = space.alloc(16).unwrap();
/// assert!(c > b);
/// assert_eq!(space.stats().used, 32);
/// ```
#[derive(Debug, Clone)]
pub struct ObjectSpace {
    capacity: usize,
    /// Every block (free or allocated), keyed by starting address.  Adjacent
    /// free blocks are always coalesced, so two free blocks are never
    /// neighbours.
    blocks: BTreeMap<BlockAddr, Block>,
    /// The rover: the address just past the most recent allocation, where the
    /// next first-fit search begins.
    rover: BlockAddr,
    used: usize,
    /// Cumulative number of blocks examined by searches (linear blocks for
    /// first fit, bin entries for segregated fit); the recycling experiment
    /// (§4.8) contrasts this cost against the recycle list's.
    search_steps: u64,
    allocations: u64,
    frees: u64,
    policy: AllocPolicy,
    /// Candidate free-block addresses per size class (SegregatedFit only;
    /// empty under FirstFitRover).  Entries are validated lazily against
    /// `blocks`: an entry is *stale* — and dropped on discovery — when its
    /// address no longer starts a free block of that class.
    bins: Vec<Vec<BlockAddr>>,
}

impl ObjectSpace {
    /// Creates an empty object space of `capacity` bytes with the default
    /// (paper-faithful first-fit) policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, AllocPolicy::FirstFitRover)
    }

    /// Creates an empty object space of `capacity` bytes using `policy` for
    /// free-block searches.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_policy(capacity: usize, policy: AllocPolicy) -> Self {
        assert!(capacity > 0, "object space capacity must be positive");
        let mut blocks = BTreeMap::new();
        blocks.insert(
            0,
            Block {
                size: capacity,
                free: true,
            },
        );
        let mut space = Self {
            capacity,
            blocks,
            rover: 0,
            used: 0,
            search_steps: 0,
            allocations: 0,
            frees: 0,
            policy,
            bins: match policy {
                AllocPolicy::FirstFitRover => Vec::new(),
                AllocPolicy::SegregatedFit => vec![Vec::new(); class_of(capacity) + 1],
            },
        };
        space.bin_insert(0, capacity);
        space
    }

    /// The policy this space searches with.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Records a newly created/resized free block in its size-class bin
    /// (no-op under FirstFitRover).
    fn bin_insert(&mut self, addr: BlockAddr, size: usize) {
        if self.policy == AllocPolicy::SegregatedFit {
            self.bins[class_of(size)].push(addr);
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.used
    }

    /// Number of completed allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of completed frees.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Cumulative number of blocks (or bin entries) examined during
    /// free-block searches.
    pub fn search_steps(&self) -> u64 {
        self.search_steps
    }

    /// Allocates `size` bytes, returning the block address, or `None` if no
    /// free block is large enough.
    ///
    /// Under [`AllocPolicy::FirstFitRover`] the search is first-fit starting
    /// at the rover (the point of the last allocation) and wraps around to
    /// the beginning of the space, exactly like the JDK 1.1.8 allocator the
    /// paper builds on.  Under [`AllocPolicy::SegregatedFit`] the search
    /// probes the size-class bins instead.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: usize) -> Option<BlockAddr> {
        assert!(size > 0, "cannot allocate zero bytes");
        let found = match self.policy {
            AllocPolicy::FirstFitRover => self
                .find_first_fit(self.rover, size)
                .or_else(|| self.find_first_fit(0, size))?,
            AllocPolicy::SegregatedFit => self.find_segregated(size)?,
        };
        self.carve(found, size);
        self.rover = found + size;
        if self.rover >= self.capacity {
            self.rover = 0;
        }
        self.used += size;
        self.allocations += 1;
        Some(found)
    }

    /// Frees the block starting at `addr`, coalescing it with any free
    /// neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not the start of an allocated block (double frees
    /// and wild frees are programming errors in the VM, not recoverable
    /// conditions).
    pub fn free(&mut self, addr: BlockAddr) {
        let block = self
            .blocks
            .get_mut(&addr)
            .unwrap_or_else(|| panic!("free of unknown block address {addr}"));
        assert!(!block.free, "double free of block at address {addr}");
        block.free = true;
        let size = block.size;
        self.used -= size;
        self.frees += 1;
        self.coalesce_around(addr);
    }

    /// The size of the allocated block starting at `addr`, if there is one.
    pub fn block_size(&self, addr: BlockAddr) -> Option<usize> {
        self.blocks.get(&addr).filter(|b| !b.free).map(|b| b.size)
    }

    /// Current space statistics.
    pub fn stats(&self) -> SpaceStats {
        let mut largest = 0;
        let mut free_blocks = 0;
        let mut allocated_blocks = 0;
        for block in self.blocks.values() {
            if block.free {
                free_blocks += 1;
                largest = largest.max(block.size);
            } else {
                allocated_blocks += 1;
            }
        }
        SpaceStats {
            capacity: self.capacity,
            used: self.used,
            free: self.free_bytes(),
            largest_free_block: largest,
            free_blocks,
            allocated_blocks,
        }
    }

    /// Verifies internal invariants (contiguity, no adjacent free blocks,
    /// accounting).  Used by tests and debug assertions.
    pub fn check_invariants(&self) {
        let mut cursor = 0usize;
        let mut used = 0usize;
        let mut prev_free = false;
        for (&addr, block) in &self.blocks {
            assert_eq!(addr, cursor, "blocks must tile the space contiguously");
            assert!(block.size > 0, "zero-sized block at {addr}");
            if block.free {
                assert!(
                    !prev_free,
                    "adjacent free blocks were not coalesced at {addr}"
                );
            } else {
                used += block.size;
            }
            prev_free = block.free;
            cursor += block.size;
        }
        assert_eq!(cursor, self.capacity, "blocks must cover the whole space");
        assert_eq!(used, self.used, "used-byte accounting drifted");
        if self.policy == AllocPolicy::SegregatedFit {
            // Every free block must be reachable through its current size
            // class — lazy deletion may leave stale entries behind, but a
            // live entry must exist or the block is lost to the allocator.
            for (&addr, block) in self.blocks.iter().filter(|(_, b)| b.free) {
                assert!(
                    self.bins[class_of(block.size)].contains(&addr),
                    "free block at {addr} missing from its size-class bin"
                );
            }
        }
    }

    /// Finds the first free block at or after `start` that can hold `size`
    /// bytes.
    fn find_first_fit(&mut self, start: BlockAddr, size: usize) -> Option<BlockAddr> {
        let mut steps = 0u64;
        let found = self
            .blocks
            .range(start..)
            .filter(|(_, block)| block.free)
            .find(|(_, block)| {
                steps += 1;
                block.size >= size
            })
            .map(|(&addr, _)| addr);
        self.search_steps += steps;
        found
    }

    /// Finds a free block that can hold `size` bytes by probing the
    /// size-class bins from the smallest possibly-fitting class upward,
    /// dropping stale entries along the way.
    fn find_segregated(&mut self, size: usize) -> Option<BlockAddr> {
        let start = class_of(size);
        let mut steps = 0u64;
        let mut found = None;
        'classes: for class in start..self.bins.len() {
            let mut i = 0;
            while i < self.bins[class].len() {
                steps += 1;
                let addr = self.bins[class][i];
                match self.blocks.get(&addr) {
                    // Live entry: the address still starts a free block of
                    // this class.
                    Some(block) if block.free && class_of(block.size) == class => {
                        if block.size >= size {
                            self.bins[class].swap_remove(i);
                            found = Some(addr);
                            break 'classes;
                        }
                        // Only the starting class can hold too-small
                        // blocks; keep the entry for smaller requests.
                        i += 1;
                    }
                    // Stale: carved, coalesced away, or re-classed.
                    _ => {
                        self.bins[class].swap_remove(i);
                    }
                }
            }
        }
        self.search_steps += steps;
        found
    }

    /// Marks `size` bytes at the start of the free block at `addr` as
    /// allocated, splitting off the remainder as a new free block.
    fn carve(&mut self, addr: BlockAddr, size: usize) {
        let block = self.blocks[&addr];
        debug_assert!(block.free && block.size >= size);
        let remainder = block.size - size;
        self.blocks.insert(addr, Block { size, free: false });
        if remainder > 0 {
            self.blocks.insert(
                addr + size,
                Block {
                    size: remainder,
                    free: true,
                },
            );
            self.bin_insert(addr + size, remainder);
        }
    }

    /// Coalesces the free block at `addr` with free neighbours on both sides.
    fn coalesce_around(&mut self, addr: BlockAddr) {
        let mut start = addr;
        let mut size = self.blocks[&addr].size;

        // Merge with the following block if it is free.
        let next_addr = addr + size;
        if let Some(next) = self.blocks.get(&next_addr) {
            if next.free {
                size += next.size;
                self.blocks.remove(&next_addr);
            }
        }

        // Merge with the preceding block if it is free.
        if let Some((&prev_addr, prev)) = self.blocks.range(..addr).next_back() {
            if prev.free && prev_addr + prev.size == addr {
                start = prev_addr;
                size += prev.size;
                self.blocks.remove(&addr);
            }
        }

        self.blocks.insert(start, Block { size, free: true });
        self.bin_insert(start, size);
        // Keep the rover pointing at a valid address.
        if self.rover >= self.capacity {
            self.rover = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_panics() {
        let _ = ObjectSpace::new(0);
    }

    #[test]
    #[should_panic(expected = "zero bytes")]
    fn zero_alloc_panics() {
        let mut s = ObjectSpace::new(16);
        s.alloc(0);
    }

    #[test]
    fn alloc_until_full_then_fail() {
        let mut s = ObjectSpace::new(64);
        let mut addrs = Vec::new();
        for _ in 0..4 {
            addrs.push(s.alloc(16).unwrap());
        }
        assert_eq!(s.used(), 64);
        assert_eq!(s.free_bytes(), 0);
        assert!(s.alloc(1).is_none());
        // Addresses are distinct and within bounds.
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 4);
        assert!(addrs.iter().all(|&a| a < 64));
        s.check_invariants();
    }

    #[test]
    fn free_makes_space_reusable() {
        let mut s = ObjectSpace::new(64);
        let a = s.alloc(32).unwrap();
        let _b = s.alloc(32).unwrap();
        assert!(s.alloc(8).is_none());
        s.free(a);
        let c = s.alloc(32).unwrap();
        assert_eq!(c, a);
        s.check_invariants();
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut s = ObjectSpace::new(96);
        let a = s.alloc(32).unwrap();
        let b = s.alloc(32).unwrap();
        let c = s.alloc(32).unwrap();
        // Free middle then left: they must coalesce so a 64-byte block fits.
        s.free(b);
        s.free(a);
        s.check_invariants();
        assert_eq!(s.stats().largest_free_block, 64);
        let d = s.alloc(64).unwrap();
        assert_eq!(d, a);
        s.free(c);
        s.free(d);
        s.check_invariants();
        assert_eq!(s.stats().free_blocks, 1);
        assert_eq!(s.stats().largest_free_block, 96);
    }

    #[test]
    fn rover_advances_past_last_allocation() {
        let mut s = ObjectSpace::new(64);
        let a = s.alloc(16).unwrap();
        let b = s.alloc(16).unwrap();
        s.free(a);
        // First-fit from the rover prefers the block after b even though a is
        // free, matching the JDK allocator's behaviour of continuing from the
        // last allocation point.
        let c = s.alloc(16).unwrap();
        assert!(c > b);
        // Wrap-around finds a once the tail is exhausted.
        let d = s.alloc(16).unwrap();
        let e = s.alloc(16).unwrap();
        assert_eq!([d, e].iter().filter(|&&x| x == a).count(), 1);
        s.check_invariants();
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut s = ObjectSpace::new(32);
        let a = s.alloc(16).unwrap();
        s.free(a);
        s.free(a);
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn wild_free_panics() {
        let mut s = ObjectSpace::new(32);
        let _a = s.alloc(16).unwrap();
        s.free(3);
    }

    #[test]
    fn block_size_reports_allocated_blocks_only() {
        let mut s = ObjectSpace::new(64);
        let a = s.alloc(24).unwrap();
        assert_eq!(s.block_size(a), Some(24));
        s.free(a);
        assert_eq!(s.block_size(a), None);
        assert_eq!(s.block_size(999), None);
    }

    #[test]
    fn stats_track_counts() {
        let mut s = ObjectSpace::new(128);
        let a = s.alloc(16).unwrap();
        let _b = s.alloc(16).unwrap();
        s.free(a);
        let st = s.stats();
        assert_eq!(st.capacity, 128);
        assert_eq!(st.used, 16);
        assert_eq!(st.free, 112);
        assert_eq!(st.allocated_blocks, 1);
        assert!(st.free_blocks >= 1);
        assert_eq!(s.allocations(), 2);
        assert_eq!(s.frees(), 1);
        assert!(s.search_steps() >= 2);
    }

    #[test]
    fn fragmentation_can_cause_failure_despite_total_space() {
        let mut s = ObjectSpace::new(64);
        let a = s.alloc(16).unwrap();
        let _b = s.alloc(16).unwrap();
        let c = s.alloc(16).unwrap();
        let _d = s.alloc(16).unwrap();
        s.free(a);
        s.free(c);
        // 32 bytes free, but split into two 16-byte holes.
        assert_eq!(s.free_bytes(), 32);
        assert!(s.alloc(32).is_none());
        s.check_invariants();
    }

    #[test]
    fn size_classes_partition_sizes() {
        assert_eq!(class_of(1), 1);
        assert_eq!(class_of(2), 2);
        assert_eq!(class_of(3), 2);
        assert_eq!(class_of(4), 3);
        assert_eq!(class_of(7), 3);
        assert_eq!(class_of(8), 4);
        // Every block in a class above class_of(size) fits size.
        for size in 1..256usize {
            for block in 1..512usize {
                if class_of(block) > class_of(size) {
                    assert!(block >= size, "block {block} vs size {size}");
                }
            }
        }
    }

    #[test]
    fn segregated_alloc_reuses_freed_blocks() {
        let mut s = ObjectSpace::with_policy(64, AllocPolicy::SegregatedFit);
        assert_eq!(s.policy(), AllocPolicy::SegregatedFit);
        assert_eq!(s.policy().label(), "segregated");
        let a = s.alloc(32).unwrap();
        let _b = s.alloc(32).unwrap();
        assert!(s.alloc(8).is_none());
        s.free(a);
        let c = s.alloc(32).unwrap();
        assert_eq!(c, a);
        s.check_invariants();
    }

    #[test]
    fn segregated_coalescing_merges_neighbours() {
        let mut s = ObjectSpace::with_policy(96, AllocPolicy::SegregatedFit);
        let a = s.alloc(32).unwrap();
        let b = s.alloc(32).unwrap();
        let c = s.alloc(32).unwrap();
        s.free(b);
        s.free(a);
        s.check_invariants();
        assert_eq!(s.stats().largest_free_block, 64);
        let d = s.alloc(64).unwrap();
        assert_eq!(d, a);
        s.free(c);
        s.free(d);
        s.check_invariants();
        assert_eq!(s.stats().free_blocks, 1);
        assert_eq!(s.stats().largest_free_block, 96);
    }

    #[test]
    fn segregated_probes_fewer_blocks_than_first_fit_on_mixed_sizes() {
        // Many small free holes in front of one large block: first fit
        // walks the holes on every large request, segregated fit jumps
        // straight to the big block's class.
        let build = |policy: AllocPolicy| {
            let mut s = ObjectSpace::with_policy(1 << 16, policy);
            let mut small = Vec::new();
            for _ in 0..256 {
                small.push(s.alloc(8).unwrap());
                s.alloc(8).unwrap(); // spacers prevent coalescing
            }
            for addr in small {
                s.free(addr);
            }
            s
        };
        let mut first_fit = build(AllocPolicy::FirstFitRover);
        let mut segregated = build(AllocPolicy::SegregatedFit);
        // Reset the rover to the start so first fit has to walk the holes.
        first_fit.rover = 0;
        let before_ff = first_fit.search_steps();
        let before_seg = segregated.search_steps();
        assert!(first_fit.alloc(1024).is_some());
        assert!(segregated.alloc(1024).is_some());
        let ff_steps = first_fit.search_steps() - before_ff;
        let seg_steps = segregated.search_steps() - before_seg;
        assert!(
            seg_steps * 8 <= ff_steps,
            "segregated fit should probe far fewer blocks ({seg_steps} vs {ff_steps})"
        );
        first_fit.check_invariants();
        segregated.check_invariants();
    }

    mod properties {
        use super::*;
        use cg_testutil::TestRng;

        /// Random alloc/free interleavings preserve all invariants and
        /// never hand out overlapping blocks, under either policy.
        #[test]
        fn random_workload_preserves_invariants() {
            for seed in 0..64u64 {
                let policy = if seed % 2 == 0 {
                    AllocPolicy::FirstFitRover
                } else {
                    AllocPolicy::SegregatedFit
                };
                let mut rng = TestRng::new(seed);
                let ops = rng.gen_range(10, 200);
                let mut space = ObjectSpace::with_policy(4096, policy);
                let mut live: Vec<(BlockAddr, usize)> = Vec::new();
                for _ in 0..ops {
                    if live.is_empty() || rng.gen_bool(0.6) {
                        let size = rng.gen_range(1, 129);
                        if let Some(addr) = space.alloc(size) {
                            // No overlap with any live block.
                            for &(other, osize) in &live {
                                assert!(
                                    addr + size <= other || other + osize <= addr,
                                    "seed {seed}: overlap: [{},{}) vs [{},{})",
                                    addr,
                                    addr + size,
                                    other,
                                    other + osize
                                );
                            }
                            live.push((addr, size));
                        }
                    } else {
                        let idx = rng.gen_range(0, live.len());
                        let (addr, _) = live.swap_remove(idx);
                        space.free(addr);
                    }
                    space.check_invariants();
                }
                let live_total: usize = live.iter().map(|&(_, s)| s).sum();
                assert_eq!(space.used(), live_total, "seed {seed}");
            }
        }

        /// The two policies place blocks differently but must agree on all
        /// byte accounting (used, free, live-block count) across random
        /// alloc/free workloads that fit comfortably in the space.
        #[test]
        fn policies_agree_on_accounting() {
            for seed in 0..64u64 {
                let mut rng = TestRng::new(seed);
                let mut first_fit = ObjectSpace::with_policy(1 << 20, AllocPolicy::FirstFitRover);
                let mut segregated = ObjectSpace::with_policy(1 << 20, AllocPolicy::SegregatedFit);
                // Live blocks as (first_fit_addr, segregated_addr, size).
                let mut live: Vec<(BlockAddr, BlockAddr, usize)> = Vec::new();
                for _ in 0..rng.gen_range(20, 300) {
                    if live.is_empty() || rng.gen_bool(0.6) {
                        let size = rng.gen_range(1, 257);
                        // The space is far larger than the workload's
                        // footprint, so both policies must succeed.
                        let fa = first_fit.alloc(size).expect("first fit fits");
                        let sa = segregated.alloc(size).expect("segregated fits");
                        live.push((fa, sa, size));
                    } else {
                        let idx = rng.gen_range(0, live.len());
                        let (fa, sa, _) = live.swap_remove(idx);
                        first_fit.free(fa);
                        segregated.free(sa);
                    }
                    assert_eq!(first_fit.used(), segregated.used(), "seed {seed}");
                    assert_eq!(
                        first_fit.free_bytes(),
                        segregated.free_bytes(),
                        "seed {seed}"
                    );
                    assert_eq!(
                        first_fit.stats().allocated_blocks,
                        segregated.stats().allocated_blocks,
                        "seed {seed}"
                    );
                    first_fit.check_invariants();
                    segregated.check_invariants();
                }
                let live_total: usize = live.iter().map(|&(_, _, s)| s).sum();
                assert_eq!(first_fit.used(), live_total, "seed {seed}");
                assert_eq!(segregated.used(), live_total, "seed {seed}");
                assert_eq!(first_fit.allocations(), segregated.allocations());
                assert_eq!(first_fit.frees(), segregated.frees());
            }
        }

        /// Freeing everything always restores a single maximal free block.
        #[test]
        fn full_free_restores_whole_space() {
            for seed in 0..64u64 {
                let policy = if seed % 2 == 0 {
                    AllocPolicy::FirstFitRover
                } else {
                    AllocPolicy::SegregatedFit
                };
                let mut rng = TestRng::new(seed);
                let mut space = ObjectSpace::with_policy(2048, policy);
                let mut live = Vec::new();
                while let Some(addr) = space.alloc(rng.gen_range(1, 65)) {
                    live.push(addr);
                    if live.len() > 200 {
                        break;
                    }
                }
                rng.shuffle(&mut live);
                for addr in live {
                    space.free(addr);
                }
                space.check_invariants();
                let st = space.stats();
                assert_eq!(st.used, 0, "seed {seed}");
                assert_eq!(st.free_blocks, 1, "seed {seed}");
                assert_eq!(st.largest_free_block, 2048, "seed {seed}");
            }
        }
    }
}
