//! Handle-based object heap modelled on the Sun JDK 1.1.8 interpreter.
//!
//! The contaminated-GC paper implements its collector inside the JDK 1.1.8
//! JVM, whose storage manager has three properties the algorithm depends on:
//!
//! 1. **Handles.**  Every object is reached through a handle; references
//!    between objects indirect through the handle table, so objects can be
//!    relocated (or, for CG, tagged with collector metadata) by touching only
//!    the handle (§3.1).
//! 2. **A split heap.**  The heap is divided into a handle space and an
//!    object space (originally 20% / 80%); the CG implementation widens the
//!    handle space because it grows each handle from 2 words to 16 (or, with
//!    the §3.5 packing, 8) words.
//! 3. **A first-fit free-list allocator.**  The object space allocator does a
//!    linear search from its last allocation point, coalescing adjacent free
//!    blocks, and triggers garbage collection when the search fails (§3.7).
//!
//! This crate reproduces that storage substrate in safe Rust:
//!
//! * [`Handle`] / [`ClassId`] — dense identifiers.
//! * [`Value`] — field/array-element values (references and primitives).
//! * [`Object`] — instances and arrays, with their field storage.
//! * [`ObjectSpace`] — the byte-accounted free-list allocator with a
//!   pluggable search policy ([`AllocPolicy`]): the paper-faithful
//!   first-fit rover, or segregated size-class bins.
//! * [`Heap`] — the handle table plus object space, allocation, freeing,
//!   reinitialisation (for recycling) and reference traversal.
//! * [`HeapConfig`] / [`HandleRepr`] — sizing knobs reproducing the paper's
//!   space accounting.
//!
//! # Example
//!
//! ```
//! use cg_heap::{Heap, HeapConfig, ClassId, Value};
//!
//! let mut heap = Heap::new(HeapConfig::small());
//! let class = ClassId::new(0);
//! let a = heap.allocate(class, 2)?;
//! let b = heap.allocate(class, 0)?;
//! heap.set_field(a, 0, Value::from(b))?;
//! assert_eq!(heap.references_of(a), vec![b]);
//! # Ok::<(), cg_heap::HeapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod freelist;
pub mod heap;
pub mod layout;
pub mod object;
pub mod value;

pub use error::HeapError;
pub use freelist::{AllocPolicy, BlockAddr, ObjectSpace, SpaceStats};
pub use heap::{Heap, HeapStats};
pub use layout::{HandleRepr, HeapConfig, WORD_BYTES};
pub use object::{Object, ObjectKind};
pub use value::{ClassId, Handle, Value};
