//! The heap: handle table plus object space.

use crate::error::HeapError;
use crate::freelist::{BlockAddr, ObjectSpace};
use crate::layout::HeapConfig;
use crate::object::Object;
use crate::value::{ClassId, Handle, Value};

/// Cumulative heap activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects ever allocated (instances + arrays), excluding recycled
    /// reinitialisations.
    pub objects_allocated: u64,
    /// Objects freed back to the object space.
    pub objects_freed: u64,
    /// Total bytes ever requested from the object space.
    pub bytes_allocated: u64,
    /// Allocation attempts that failed for lack of object space (before any
    /// collector intervention).
    pub allocation_failures: u64,
    /// Objects handed back to the program by reinitialising a dead object in
    /// place (the §3.7 recycling path).
    pub objects_recycled: u64,
    /// The largest number of simultaneously live objects observed.
    pub peak_live_objects: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    object: Object,
    addr: BlockAddr,
}

/// The handle-indirected heap: a handle table in front of a first-fit object
/// space, mirroring the JDK 1.1.8 storage manager the paper modifies.
///
/// # Example
///
/// ```
/// use cg_heap::{Heap, HeapConfig, ClassId, Value};
///
/// let mut heap = Heap::new(HeapConfig::small());
/// let list_class = ClassId::new(0);
/// let node = heap.allocate(list_class, 2)?;
/// let payload = heap.allocate(list_class, 0)?;
/// heap.set_field(node, 0, Value::from(payload))?;
/// assert_eq!(heap.references_of(node), vec![payload]);
/// assert_eq!(heap.live_count(), 2);
/// heap.free(payload)?;
/// assert_eq!(heap.live_count(), 1);
/// # Ok::<(), cg_heap::HeapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Heap {
    config: HeapConfig,
    space: ObjectSpace,
    slots: Vec<Option<Slot>>,
    live: usize,
    stats: HeapStats,
    alloc_attempts: u64,
}

impl Heap {
    /// Creates an empty heap with the given configuration.
    pub fn new(config: HeapConfig) -> Self {
        Self {
            config,
            space: ObjectSpace::with_policy(config.object_space_bytes, config.alloc_policy),
            slots: Vec::new(),
            live: 0,
            stats: HeapStats::default(),
            alloc_attempts: 0,
        }
    }

    /// The heap's configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// The underlying object space (for allocator statistics).
    pub fn object_space(&self) -> &ObjectSpace {
        &self.space
    }

    /// Number of currently live objects.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Number of handles ever minted (live + retired).
    pub fn handles_minted(&self) -> usize {
        self.slots.len()
    }

    /// Bytes currently occupied in the object space.
    pub fn bytes_in_use(&self) -> usize {
        self.space.used()
    }

    /// Bytes currently free in the object space.
    pub fn free_bytes(&self) -> usize {
        self.space.free_bytes()
    }

    /// Whether `handle` names a live object.
    pub fn is_live(&self, handle: Handle) -> bool {
        self.slots
            .get(handle.index_usize())
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    /// Allocates an instance of `class` with `field_count` reference/primitive
    /// fields.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfObjectSpace`] when no free block fits and
    /// [`HeapError::OutOfHandleSpace`] when the handle table is full; the VM
    /// reacts by running the installed collector and retrying.
    pub fn allocate(&mut self, class: ClassId, field_count: usize) -> Result<Handle, HeapError> {
        let size = self.config.instance_bytes(field_count);
        self.allocate_object(Object::instance(class, field_count, size))
    }

    /// Allocates an array of `class` with `length` elements.
    ///
    /// # Errors
    ///
    /// Same as [`Heap::allocate`].
    pub fn allocate_array(&mut self, class: ClassId, length: usize) -> Result<Handle, HeapError> {
        let size = self.config.array_bytes(length);
        self.allocate_object(Object::array(class, length, size))
    }

    /// Reserves object space for `object`, charging failed attempts; the
    /// caller installs the slot and calls [`Heap::commit_allocation`].
    fn reserve_space(&mut self, object: &Object) -> Result<BlockAddr, HeapError> {
        let attempt = self.alloc_attempts;
        self.alloc_attempts += 1;
        if self.config.alloc_failure_at == Some(attempt) {
            self.stats.allocation_failures += 1;
            return Err(HeapError::OutOfObjectSpace {
                requested: object.size_bytes(),
                free: self.space.free_bytes(),
            });
        }
        if self.live >= self.config.handle_capacity() {
            self.stats.allocation_failures += 1;
            return Err(HeapError::OutOfHandleSpace {
                capacity: self.config.handle_capacity(),
            });
        }
        let size = object.size_bytes();
        match self.space.alloc(size) {
            Some(addr) => Ok(addr),
            None => {
                self.stats.allocation_failures += 1;
                Err(HeapError::OutOfObjectSpace {
                    requested: size,
                    free: self.space.free_bytes(),
                })
            }
        }
    }

    /// The shared accounting tail of every successful allocation.
    fn commit_allocation(&mut self, size: usize) {
        self.live += 1;
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += size as u64;
        self.stats.peak_live_objects = self.stats.peak_live_objects.max(self.live as u64);
    }

    fn allocate_object(&mut self, object: Object) -> Result<Handle, HeapError> {
        let addr = self.reserve_space(&object)?;
        let size = object.size_bytes();
        let handle = Handle::from_index(self.slots.len() as u32);
        self.slots.push(Some(Slot { object, addr }));
        self.commit_allocation(size);
        Ok(handle)
    }

    /// Allocates an instance of `class` under a caller-chosen handle — the
    /// sharded replay mode.
    ///
    /// A parallel trace evaluation gives every shard its own `Heap` (a
    /// private object-space region with its own rover and free list, so
    /// shards never touch each other's free lists); handle identities,
    /// however, were minted globally by the recording run, so each shard
    /// mirrors only its own slice of the handle table and must place each
    /// object at the *recorded* handle index rather than the next sequential
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::HandleInUse`] if the slot already holds a live
    /// object, plus the same exhaustion errors as [`Heap::allocate`].
    pub fn allocate_at(
        &mut self,
        handle: Handle,
        class: ClassId,
        field_count: usize,
    ) -> Result<(), HeapError> {
        let size = self.config.instance_bytes(field_count);
        self.allocate_object_at(handle, Object::instance(class, field_count, size))
    }

    /// Allocates an array under a caller-chosen handle (see
    /// [`Heap::allocate_at`]).
    ///
    /// # Errors
    ///
    /// Same as [`Heap::allocate_at`].
    pub fn allocate_array_at(
        &mut self,
        handle: Handle,
        class: ClassId,
        length: usize,
    ) -> Result<(), HeapError> {
        let size = self.config.array_bytes(length);
        self.allocate_object_at(handle, Object::array(class, length, size))
    }

    fn allocate_object_at(&mut self, handle: Handle, object: Object) -> Result<(), HeapError> {
        let index = handle.index_usize();
        // Placed allocation trusts the caller's index: the replay layers
        // (`validate_event_handles` on both the single-heap and sharded
        // paths) bound every event-named handle by the configured capacity
        // before it reaches the heap, so a hostile index near `u32::MAX`
        // never gets far enough to inflate the slot table.  Handles may be
        // sparse — capacity bounds the *live count*, not the index space.
        if self.slots.len() <= index {
            self.slots.resize(index + 1, None);
        }
        if self.slots[index].is_some() {
            return Err(HeapError::HandleInUse(handle));
        }
        let addr = self.reserve_space(&object)?;
        let size = object.size_bytes();
        self.slots[index] = Some(Slot { object, addr });
        self.commit_allocation(size);
        Ok(())
    }

    /// Frees the object named by `handle`, returning its size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DeadHandle`] if the handle is not live.
    pub fn free(&mut self, handle: Handle) -> Result<usize, HeapError> {
        let slot = self
            .slots
            .get_mut(handle.index_usize())
            .and_then(Option::take)
            .ok_or(HeapError::DeadHandle(handle))?;
        self.space.free(slot.addr);
        self.live -= 1;
        self.stats.objects_freed += 1;
        Ok(slot.object.size_bytes())
    }

    /// Reinitialises a live (but logically dead) object in place so it can be
    /// handed out as a fresh instance of `class` with `field_count` fields.
    ///
    /// This is the §3.7 recycling path: the object's storage and handle are
    /// reused without a round-trip through the free list.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DeadHandle`] if the handle is not live and
    /// [`HeapError::RecycleSizeMismatch`] if the dead object cannot hold the
    /// requested instance.
    pub fn reinitialize(
        &mut self,
        handle: Handle,
        class: ClassId,
        field_count: usize,
    ) -> Result<(), HeapError> {
        let requested = self.config.instance_bytes(field_count);
        let slot = self
            .slots
            .get_mut(handle.index_usize())
            .and_then(Option::as_mut)
            .ok_or(HeapError::DeadHandle(handle))?;
        if slot.object.is_array() || slot.object.slot_count() < field_count {
            return Err(HeapError::RecycleSizeMismatch {
                handle,
                class,
                available: slot.object.size_bytes(),
                requested,
            });
        }
        slot.object.reinitialize(class);
        self.stats.objects_recycled += 1;
        Ok(())
    }

    /// Shared access to the object named by `handle`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DeadHandle`] if the handle is not live.
    pub fn get(&self, handle: Handle) -> Result<&Object, HeapError> {
        self.slots
            .get(handle.index_usize())
            .and_then(Option::as_ref)
            .map(|s| &s.object)
            .ok_or(HeapError::DeadHandle(handle))
    }

    /// Mutable access to the object named by `handle`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DeadHandle`] if the handle is not live.
    pub fn get_mut(&mut self, handle: Handle) -> Result<&mut Object, HeapError> {
        self.slots
            .get_mut(handle.index_usize())
            .and_then(Option::as_mut)
            .map(|s| &mut s.object)
            .ok_or(HeapError::DeadHandle(handle))
    }

    /// Reads slot `index` (field or array element) of the object.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DeadHandle`] or [`HeapError::BadField`].
    pub fn slot(&self, handle: Handle, index: usize) -> Result<Value, HeapError> {
        let object = self.get(handle)?;
        object
            .slots()
            .get(index)
            .copied()
            .ok_or(HeapError::BadField {
                handle,
                index,
                len: object.slot_count(),
            })
    }

    /// Writes slot `index` (field or array element) of the object, returning
    /// the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DeadHandle`] or [`HeapError::BadField`].
    pub fn set_slot(
        &mut self,
        handle: Handle,
        index: usize,
        value: Value,
    ) -> Result<Value, HeapError> {
        let object = self.get_mut(handle)?;
        let len = object.slot_count();
        let slot = object
            .slots_mut()
            .get_mut(index)
            .ok_or(HeapError::BadField { handle, index, len })?;
        Ok(std::mem::replace(slot, value))
    }

    /// Reads a field of an instance object.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::KindMismatch`] for arrays, otherwise as
    /// [`Heap::slot`].
    pub fn field(&self, handle: Handle, index: usize) -> Result<Value, HeapError> {
        if self.get(handle)?.is_array() {
            return Err(HeapError::KindMismatch {
                handle,
                expected: "instance",
            });
        }
        self.slot(handle, index)
    }

    /// Writes a field of an instance object, returning the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::KindMismatch`] for arrays, otherwise as
    /// [`Heap::set_slot`].
    pub fn set_field(
        &mut self,
        handle: Handle,
        index: usize,
        value: Value,
    ) -> Result<Value, HeapError> {
        if self.get(handle)?.is_array() {
            return Err(HeapError::KindMismatch {
                handle,
                expected: "instance",
            });
        }
        self.set_slot(handle, index, value)
    }

    /// Reads an array element.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::KindMismatch`] for non-arrays, otherwise as
    /// [`Heap::slot`].
    pub fn element(&self, handle: Handle, index: usize) -> Result<Value, HeapError> {
        if !self.get(handle)?.is_array() {
            return Err(HeapError::KindMismatch {
                handle,
                expected: "array",
            });
        }
        self.slot(handle, index)
    }

    /// Writes an array element, returning the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::KindMismatch`] for non-arrays, otherwise as
    /// [`Heap::set_slot`].
    pub fn set_element(
        &mut self,
        handle: Handle,
        index: usize,
        value: Value,
    ) -> Result<Value, HeapError> {
        if !self.get(handle)?.is_array() {
            return Err(HeapError::KindMismatch {
                handle,
                expected: "array",
            });
        }
        self.set_slot(handle, index, value)
    }

    /// The handles referenced by the object named by `handle` (empty if the
    /// handle is dead).
    ///
    /// Allocates a fresh `Vec` per call; traversal loops should prefer the
    /// borrowing [`Heap::references_iter`].
    pub fn references_of(&self, handle: Handle) -> Vec<Handle> {
        self.get(handle).map(|o| o.references()).unwrap_or_default()
    }

    /// Iterates over the handles referenced by the object named by `handle`
    /// without allocating (empty if the handle is dead).
    pub fn references_iter(&self, handle: Handle) -> impl Iterator<Item = Handle> + '_ {
        self.get(handle)
            .ok()
            .map(Object::iter_references)
            .into_iter()
            .flatten()
    }

    /// Iterates over all currently live handles.
    pub fn live_handles(&self) -> impl Iterator<Item = Handle> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| Handle::from_index(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HandleRepr;

    fn heap() -> Heap {
        Heap::new(HeapConfig::small())
    }

    fn class() -> ClassId {
        ClassId::new(0)
    }

    #[test]
    fn allocate_and_read_back() {
        let mut h = heap();
        let a = h.allocate(class(), 2).unwrap();
        assert!(h.is_live(a));
        assert_eq!(h.live_count(), 1);
        assert_eq!(h.get(a).unwrap().slot_count(), 2);
        assert_eq!(h.stats().objects_allocated, 1);
        assert!(h.bytes_in_use() > 0);
    }

    #[test]
    fn allocate_array_and_elements() {
        let mut h = heap();
        let arr = h.allocate_array(class(), 3).unwrap();
        let obj = h.allocate(class(), 0).unwrap();
        h.set_element(arr, 1, Value::from(obj)).unwrap();
        assert_eq!(h.element(arr, 1).unwrap().as_handle(), Some(obj));
        assert_eq!(h.references_of(arr), vec![obj]);
        // Field accessors reject arrays and vice versa.
        assert!(matches!(
            h.field(arr, 0),
            Err(HeapError::KindMismatch { .. })
        ));
        assert!(matches!(
            h.set_element(obj, 0, Value::NULL),
            Err(HeapError::KindMismatch { .. })
        ));
    }

    #[test]
    fn set_field_returns_previous_value() {
        let mut h = heap();
        let a = h.allocate(class(), 1).unwrap();
        let b = h.allocate(class(), 0).unwrap();
        let prev = h.set_field(a, 0, Value::from(b)).unwrap();
        assert!(prev.is_null());
        let prev = h.set_field(a, 0, Value::Int(5)).unwrap();
        assert_eq!(prev.as_handle(), Some(b));
    }

    #[test]
    fn bad_field_index_is_reported() {
        let mut h = heap();
        let a = h.allocate(class(), 1).unwrap();
        assert!(matches!(
            h.field(a, 7),
            Err(HeapError::BadField {
                index: 7,
                len: 1,
                ..
            })
        ));
        assert!(matches!(
            h.set_field(a, 7, Value::NULL),
            Err(HeapError::BadField { .. })
        ));
    }

    #[test]
    fn free_releases_space_and_retires_handle() {
        let mut h = heap();
        let a = h.allocate(class(), 2).unwrap();
        let used = h.bytes_in_use();
        let freed = h.free(a).unwrap();
        assert_eq!(freed, 16);
        assert_eq!(h.bytes_in_use(), used - 16);
        assert!(!h.is_live(a));
        assert!(matches!(h.get(a), Err(HeapError::DeadHandle(_))));
        assert!(matches!(h.free(a), Err(HeapError::DeadHandle(_))));
        // Handle indices are not reused.
        let b = h.allocate(class(), 0).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn out_of_object_space_is_reported() {
        // Tiny object space but a roomy handle table, so the object space is
        // what runs out first.
        let mut config = HeapConfig::tight(64);
        config.handle_space_bytes = 1 << 16;
        let mut h = Heap::new(config);
        // Each 2-field object is 16 bytes; 4 fit.
        for _ in 0..4 {
            h.allocate(class(), 2).unwrap();
        }
        let err = h.allocate(class(), 2).unwrap_err();
        assert!(matches!(
            err,
            HeapError::OutOfObjectSpace { requested: 16, .. }
        ));
        assert_eq!(h.stats().allocation_failures, 1);
    }

    #[test]
    fn out_of_handle_space_is_reported() {
        // 1 KiB object space with stock JDK handles: 256 / 8 = 32 handles.
        let config = HeapConfig::with_object_space(1024, HandleRepr::Jdk);
        let mut h = Heap::new(config);
        let capacity = config.handle_capacity();
        for _ in 0..capacity {
            h.allocate(class(), 0).unwrap();
        }
        let err = h.allocate(class(), 0).unwrap_err();
        assert!(matches!(err, HeapError::OutOfHandleSpace { .. }));
    }

    #[test]
    fn freeing_allows_more_handles() {
        let config = HeapConfig::with_object_space(1024, HandleRepr::Jdk);
        let mut h = Heap::new(config);
        let first = h.allocate(class(), 0).unwrap();
        for _ in 1..config.handle_capacity() {
            h.allocate(class(), 0).unwrap();
        }
        h.free(first).unwrap();
        assert!(h.allocate(class(), 0).is_ok());
    }

    #[test]
    fn reinitialize_recycles_in_place() {
        let mut h = heap();
        let a = h.allocate(class(), 3).unwrap();
        let b = h.allocate(class(), 0).unwrap();
        h.set_field(a, 0, Value::from(b)).unwrap();
        let new_class = ClassId::new(9);
        h.reinitialize(a, new_class, 2).unwrap();
        assert_eq!(h.get(a).unwrap().class(), new_class);
        assert!(h.references_of(a).is_empty());
        assert_eq!(h.stats().objects_recycled, 1);
        // Too-large requests are rejected.
        assert!(matches!(
            h.reinitialize(a, new_class, 8),
            Err(HeapError::RecycleSizeMismatch { .. })
        ));
        // Arrays cannot be recycled into instances.
        let arr = h.allocate_array(class(), 4).unwrap();
        assert!(matches!(
            h.reinitialize(arr, new_class, 1),
            Err(HeapError::RecycleSizeMismatch { .. })
        ));
    }

    #[test]
    fn live_handles_iterates_only_live() {
        let mut h = heap();
        let a = h.allocate(class(), 0).unwrap();
        let b = h.allocate(class(), 0).unwrap();
        let c = h.allocate(class(), 0).unwrap();
        h.free(b).unwrap();
        let live: Vec<Handle> = h.live_handles().collect();
        assert_eq!(live, vec![a, c]);
        assert_eq!(h.handles_minted(), 3);
        assert_eq!(h.live_count(), 2);
    }

    #[test]
    fn allocate_at_places_objects_at_recorded_handles() {
        // A shard mirrors only its slice of the handle table: indices 1 and
        // 3 here, as if handles 0 and 2 belong to another shard.
        let mut h = heap();
        h.allocate_at(Handle::from_index(1), class(), 2).unwrap();
        h.allocate_at(Handle::from_index(3), class(), 0).unwrap();
        assert!(h.is_live(Handle::from_index(1)));
        assert!(!h.is_live(Handle::from_index(0)));
        assert!(!h.is_live(Handle::from_index(2)));
        assert_eq!(h.live_count(), 2);
        assert_eq!(h.stats().objects_allocated, 2);
        // The slot is occupied now.
        assert!(matches!(
            h.allocate_at(Handle::from_index(1), class(), 1),
            Err(HeapError::HandleInUse(_))
        ));
        // Freeing and re-placing works (a recycle-free cycle in a shard).
        h.free(Handle::from_index(1)).unwrap();
        h.allocate_at(Handle::from_index(1), class(), 1).unwrap();
        assert_eq!(h.get(Handle::from_index(1)).unwrap().slot_count(), 1);
        // Arrays too.
        h.allocate_array_at(Handle::from_index(7), class(), 4)
            .unwrap();
        assert!(h.get(Handle::from_index(7)).unwrap().is_array());
        assert_eq!(h.live_count(), 3);
    }

    #[test]
    fn allocate_at_reports_exhaustion() {
        let mut config = HeapConfig::tight(64);
        config.handle_space_bytes = 1 << 16;
        let mut h = Heap::new(config);
        for i in 0..4 {
            h.allocate_at(Handle::from_index(i), class(), 2).unwrap();
        }
        assert!(matches!(
            h.allocate_at(Handle::from_index(9), class(), 2),
            Err(HeapError::OutOfObjectSpace { .. })
        ));
        // A failed placement must not leak the reserved slot: the handle
        // stays dead and allocatable later.
        assert!(!h.is_live(Handle::from_index(9)));
        assert_eq!(h.stats().allocation_failures, 1);
    }

    #[test]
    fn allocate_array_at_reports_exhaustion_and_occupied_slots() {
        let mut config = HeapConfig::tight(64);
        config.handle_space_bytes = 1 << 16;
        let mut h = Heap::new(config);
        // A 13-element array needs (2 + 1 + 13) * 4 = 64 bytes: fills the
        // region exactly.
        h.allocate_array_at(Handle::from_index(0), class(), 13)
            .unwrap();
        // The array variant reports HandleInUse like the instance variant...
        assert!(matches!(
            h.allocate_array_at(Handle::from_index(0), class(), 1),
            Err(HeapError::HandleInUse(_))
        ));
        // ...and out-of-region exhaustion on a fresh slot.
        assert!(matches!(
            h.allocate_array_at(Handle::from_index(5), class(), 1),
            Err(HeapError::OutOfObjectSpace { .. })
        ));
        assert!(!h.is_live(Handle::from_index(5)));
        // Freeing the array makes both the space and the slot reusable.
        h.free(Handle::from_index(0)).unwrap();
        h.allocate_array_at(Handle::from_index(0), class(), 13)
            .unwrap();
    }

    #[test]
    fn allocate_at_respects_handle_capacity() {
        // A handle table with room for exactly 2 live handles (JDK repr:
        // 8 bytes per handle).
        let mut config = HeapConfig::with_object_space(1 << 12, HandleRepr::Jdk);
        config.handle_space_bytes = 16;
        let mut h = Heap::new(config);
        h.allocate_at(Handle::from_index(0), class(), 0).unwrap();
        h.allocate_at(Handle::from_index(7), class(), 0).unwrap();
        let err = h
            .allocate_at(Handle::from_index(3), class(), 0)
            .unwrap_err();
        assert_eq!(err, HeapError::OutOfHandleSpace { capacity: 2 });
        // Same for the array variant.
        let err = h
            .allocate_array_at(Handle::from_index(3), class(), 1)
            .unwrap_err();
        assert_eq!(err, HeapError::OutOfHandleSpace { capacity: 2 });
        // Freeing one releases capacity for a placed allocation again.
        h.free(Handle::from_index(7)).unwrap();
        h.allocate_array_at(Handle::from_index(3), class(), 1)
            .unwrap();
    }

    #[test]
    fn injected_allocation_failure_trips_the_exact_attempt() {
        let config = HeapConfig::small().with_alloc_failure_at(2);
        let mut h = Heap::new(config);
        h.allocate(class(), 0).unwrap();
        h.allocate(class(), 1).unwrap();
        let err = h.allocate(class(), 0).unwrap_err();
        assert!(matches!(err, HeapError::OutOfObjectSpace { .. }));
        assert_eq!(h.stats().allocation_failures, 1);
        // The failure fires once; the heap keeps working afterwards.
        h.allocate(class(), 0).unwrap();
        assert_eq!(h.live_count(), 3);
        // The placed-allocation paths share the counter.
        let config = HeapConfig::small().with_alloc_failure_at(0);
        let mut h = Heap::new(config);
        let err = h
            .allocate_at(Handle::from_index(4), class(), 0)
            .unwrap_err();
        assert!(matches!(err, HeapError::OutOfObjectSpace { .. }));
        assert!(!h.is_live(Handle::from_index(4)));
    }

    #[test]
    fn peak_live_tracks_high_water_mark() {
        let mut h = heap();
        let a = h.allocate(class(), 0).unwrap();
        let _b = h.allocate(class(), 0).unwrap();
        h.free(a).unwrap();
        let _c = h.allocate(class(), 0).unwrap();
        assert_eq!(h.stats().peak_live_objects, 2);
    }

    mod properties {
        use super::*;
        use cg_testutil::TestRng;

        /// Heap accounting (live count, bytes in use) always matches the
        /// set of objects the test believes are live, across random
        /// allocate/free/write workloads.
        #[test]
        fn accounting_matches_model() {
            for seed in 0..64u64 {
                let mut rng = TestRng::new(seed);
                let steps = rng.gen_range(10, 150);
                let mut h = Heap::new(HeapConfig::with_object_space(1 << 16, HandleRepr::CgWide));
                let mut live: Vec<(Handle, usize)> = Vec::new();
                for _ in 0..steps {
                    let roll: f64 = rng.gen_f64();
                    if live.is_empty() || roll < 0.55 {
                        let fields = rng.gen_range(0, 6);
                        if let Ok(handle) = h.allocate(ClassId::new(0), fields) {
                            live.push((handle, h.get(handle).unwrap().size_bytes()));
                        }
                    } else if roll < 0.8 {
                        let idx = rng.gen_range(0, live.len());
                        let (handle, _) = live.swap_remove(idx);
                        h.free(handle).unwrap();
                    } else {
                        // Random reference store between live objects.
                        let src = live[rng.gen_range(0, live.len())].0;
                        let dst = live[rng.gen_range(0, live.len())].0;
                        let slots = h.get(src).unwrap().slot_count();
                        if slots > 0 {
                            h.set_field(src, rng.gen_range(0, slots), Value::from(dst))
                                .unwrap();
                        }
                    }
                    h.object_space().check_invariants();
                }
                assert_eq!(h.live_count(), live.len(), "seed {seed}");
                let expected_bytes: usize = live.iter().map(|&(_, s)| s).sum();
                assert_eq!(h.bytes_in_use(), expected_bytes, "seed {seed}");
                // Every live handle resolves; references point at live objects only
                // if the referent was not freed (the heap does not chase pointers).
                for &(handle, _) in &live {
                    assert!(h.get(handle).is_ok(), "seed {seed}");
                }
            }
        }
    }
}
