//! Heap sizing and handle-representation accounting.
//!
//! The paper reports its space overhead in terms of *words added to the
//! object handle*: the stock JDK 1.1.8 handle is two words, the straightforward
//! CG handle adds eight words of union/find and list linkage (plus six more
//! used by other collection schemes in their build, §3.1.1), and the packed
//! representation of §3.5 squeezes the CG handle back to eight words total by
//! storing the rank in the low bits of the parent pointer.  To keep the
//! object space unchanged, the implementation widens the handle-space share
//! of the heap proportionally.  [`HeapConfig`] reproduces that accounting.

use crate::freelist::AllocPolicy;

/// Bytes per machine word on the paper's UltraSPARC target (32-bit words in
/// JDK 1.1.8's heap layout).
pub const WORD_BYTES: usize = 4;

/// How much handle-table space each live object consumes.
///
/// This only affects space accounting (when the handle space is considered
/// full); the Rust-side representation is the same for all variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HandleRepr {
    /// The stock JDK 1.1.8 handle: object pointer + method table pointer
    /// (2 words).
    Jdk,
    /// The straightforward contaminated-GC handle described in §3.1.1:
    /// the original 2 words plus 8 CG words plus 6 words used by other
    /// collection schemes in the authors' build (16 words total).
    #[default]
    CgWide,
    /// The packed representation of §3.5: rank stored in the low bits of the
    /// parent pointer, halving the CG handle to 8 words.
    CgPacked,
}

impl HandleRepr {
    /// Handle size in words.
    pub fn words(self) -> usize {
        match self {
            HandleRepr::Jdk => 2,
            HandleRepr::CgWide => 16,
            HandleRepr::CgPacked => 8,
        }
    }

    /// Handle size in bytes.
    pub fn bytes(self) -> usize {
        self.words() * WORD_BYTES
    }

    /// The factor by which the handle space must grow relative to the stock
    /// JDK handle to hold the same number of handles.
    pub fn expansion_factor(self) -> usize {
        self.words() / HandleRepr::Jdk.words()
    }
}

/// Sizing configuration for a [`Heap`](crate::Heap).
///
/// The JDK 1.1.8 heap is split 20% handle space / 80% object space; when the
/// CG handles are wider the handle space is multiplied by the expansion
/// factor so the object space the program sees is unchanged (§3.1.1).
///
/// # Example
///
/// ```
/// use cg_heap::{HeapConfig, HandleRepr};
///
/// let config = HeapConfig::with_object_space(1 << 20, HandleRepr::CgWide);
/// assert_eq!(config.object_space_bytes, 1 << 20);
/// // 20/80 split: handle space is a quarter of the object space, times the
/// // 8x expansion for the wide CG handle.
/// assert_eq!(config.handle_space_bytes, (1 << 20) / 4 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapConfig {
    /// Bytes available to the object space (the 80% share).
    pub object_space_bytes: usize,
    /// Bytes available to the handle space (the 20% share, already scaled by
    /// the handle representation's expansion factor).
    pub handle_space_bytes: usize,
    /// The handle representation used for handle-space accounting.
    pub handle_repr: HandleRepr,
    /// Object header size in words (class pointer + flags), charged to every
    /// object in the object space.
    pub object_header_words: usize,
    /// How the object space searches for free blocks.  Defaults to the
    /// paper-faithful first-fit rover; [`AllocPolicy::SegregatedFit`] trades
    /// paper fidelity for O(size classes) searches.
    pub alloc_policy: AllocPolicy,
    /// Fault injection: fail the k-th allocation attempt (0-based, counted
    /// across all allocation entry points) with an out-of-space error.
    /// `None` in every real configuration; the robustness test sweeps set
    /// it to prove allocation failure at any point propagates cleanly.
    /// Never serialized into `.cgt` headers.
    pub alloc_failure_at: Option<u64>,
}

impl HeapConfig {
    /// Default object header: class pointer + length/flags word.
    pub const DEFAULT_HEADER_WORDS: usize = 2;

    /// Builds a configuration from the object-space size, deriving the handle
    /// space from the 20/80 split and the handle representation's expansion.
    pub fn with_object_space(object_space_bytes: usize, handle_repr: HandleRepr) -> Self {
        let base_handle_space = object_space_bytes / 4; // 20% : 80% == 1 : 4
        Self {
            object_space_bytes,
            handle_space_bytes: base_handle_space * handle_repr.expansion_factor(),
            handle_repr,
            object_header_words: Self::DEFAULT_HEADER_WORDS,
            alloc_policy: AllocPolicy::FirstFitRover,
            alloc_failure_at: None,
        }
    }

    /// The same configuration with a different object-space search policy.
    pub fn with_alloc_policy(mut self, policy: AllocPolicy) -> Self {
        self.alloc_policy = policy;
        self
    }

    /// The same configuration with an injected failure at the k-th
    /// allocation attempt (see [`HeapConfig::alloc_failure_at`]).
    pub fn with_alloc_failure_at(mut self, attempt: u64) -> Self {
        self.alloc_failure_at = Some(attempt);
        self
    }

    /// A small heap suitable for unit tests and doctests (64 KiB of object
    /// space).
    pub fn small() -> Self {
        Self::with_object_space(64 * 1024, HandleRepr::CgWide)
    }

    /// The default experimental heap: 64 MiB of object space, wide CG
    /// handles, mirroring the "plenty of storage" runs in §4.5.
    pub fn spacious() -> Self {
        Self::with_object_space(64 * 1024 * 1024, HandleRepr::CgWide)
    }

    /// A deliberately tight heap that forces the traditional collector to
    /// run, used by the resetting experiments (§4.7).
    pub fn tight(object_space_bytes: usize) -> Self {
        Self::with_object_space(object_space_bytes, HandleRepr::CgWide)
    }

    /// Maximum number of live handles the handle space can hold.
    pub fn handle_capacity(&self) -> usize {
        self.handle_space_bytes / self.handle_repr.bytes()
    }

    /// Bytes charged to an instance with `field_count` fields.
    pub fn instance_bytes(&self, field_count: usize) -> usize {
        (self.object_header_words + field_count) * WORD_BYTES
    }

    /// Bytes charged to an array with `length` elements.
    pub fn array_bytes(&self, length: usize) -> usize {
        // Arrays carry an extra length word.
        (self.object_header_words + 1 + length) * WORD_BYTES
    }
}

impl Default for HeapConfig {
    fn default() -> Self {
        Self::spacious()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_repr_sizes_match_paper() {
        assert_eq!(HandleRepr::Jdk.words(), 2);
        assert_eq!(HandleRepr::CgWide.words(), 16);
        assert_eq!(HandleRepr::CgPacked.words(), 8);
        assert_eq!(HandleRepr::CgWide.expansion_factor(), 8);
        assert_eq!(HandleRepr::CgPacked.expansion_factor(), 4);
        assert_eq!(HandleRepr::Jdk.bytes(), 8);
    }

    #[test]
    fn config_derives_handle_space_from_split() {
        let c = HeapConfig::with_object_space(8000, HandleRepr::Jdk);
        assert_eq!(c.handle_space_bytes, 2000);
        let wide = HeapConfig::with_object_space(8000, HandleRepr::CgWide);
        assert_eq!(wide.handle_space_bytes, 16_000);
    }

    #[test]
    fn handle_capacity_counts_handles() {
        let c = HeapConfig::with_object_space(8000, HandleRepr::Jdk);
        assert_eq!(c.handle_capacity(), 2000 / 8);
        let wide = HeapConfig::with_object_space(8000, HandleRepr::CgWide);
        // Wider handles but proportionally more space: same capacity.
        assert_eq!(wide.handle_capacity(), c.handle_capacity());
    }

    #[test]
    fn packed_handles_halve_handle_space() {
        let wide = HeapConfig::with_object_space(8000, HandleRepr::CgWide);
        let packed = HeapConfig::with_object_space(8000, HandleRepr::CgPacked);
        assert_eq!(packed.handle_space_bytes * 2, wide.handle_space_bytes);
        assert_eq!(packed.handle_capacity(), wide.handle_capacity());
    }

    #[test]
    fn object_sizing() {
        let c = HeapConfig::small();
        // Header (2 words) + 2 fields = 16 bytes: the paper's "most objects
        // are 16 bytes" observation corresponds to small instances.
        assert_eq!(c.instance_bytes(2), 16);
        assert_eq!(c.instance_bytes(0), 8);
        assert_eq!(c.array_bytes(0), 12);
        assert_eq!(c.array_bytes(10), 52);
    }

    #[test]
    fn presets_are_ordered() {
        assert!(HeapConfig::small().object_space_bytes < HeapConfig::spacious().object_space_bytes);
        assert_eq!(HeapConfig::tight(1024).object_space_bytes, 1024);
        assert_eq!(HeapConfig::default(), HeapConfig::spacious());
    }
}
