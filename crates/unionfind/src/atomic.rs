//! A lock-free, concurrently-usable variant of the packed forest of §3.5.
//!
//! [`AtomicForest`] keeps exactly the [`PackedForest`](crate::PackedForest)
//! word layout — one `u32` per element, `ROOT_BIT | rank` for roots and the
//! parent id for interior nodes — but stores each word in an [`AtomicU32`]
//! so that many threads can run finds and unions against the same forest
//! without a lock.  The shared static domain of the contaminated collector
//! (`cg_core::StaticDomain`) is the intended client: the §3.3 static set is
//! the only cross-shard coupling, and this forest removes the last global
//! lock from it.
//!
//! # Protocol
//!
//! * **find** is wait-free for the caller that only needs *a* root: it walks
//!   parent words with `Acquire` loads until it hits a root, compressing by
//!   *path halving* as it goes — each step best-effort CASes a node's word
//!   from its observed parent to its observed grandparent, which always
//!   points strictly upward in the link order (see
//!   [`find`](AtomicForest::find) for why that, unlike pointing at a
//!   previously-observed root, can never create a cycle under races).  A
//!   failed compression CAS is simply skipped — another thread compressed
//!   or unioned first, and the returned root is still a valid (possibly
//!   former) representative, which is all the callers need.
//! * **union** links *loser root → winner root* with a single
//!   `compare_exchange` on the loser's word; that CAS is the linearisation
//!   point of the union.  The loser is chosen strictly below the winner in
//!   the total order `(rank, id)`: every parent edge ever created points
//!   upward in that order, so racing unions can never form a cycle, and a
//!   successful CAS proves the loser was still a root (a root word
//!   `ROOT_BIT | rank` can never recur once replaced — ranks only grow and
//!   nothing here detaches, so there is no ABA).
//! * **storage** is a fixed ladder of 32 lazily-allocated segments (segment
//!   `k` holds the `2^k` elements `[2^k - 1, 2^(k+1) - 2]`), so `make_set`
//!   never moves existing words and readers never race a reallocation.  The
//!   whole structure is safe Rust (`OnceLock` + atomics); no `unsafe`.
//!
//! # What may be stale
//!
//! `find` can return a node that has since been absorbed into a larger set;
//! [`same_set`](AtomicForest::same_set) is the linearisable way to compare
//! (it re-validates that the first root is still a root).  `set_count` /
//! `max_rank` are monotone counters updated around the linearisation point,
//! exact whenever the forest is quiescent — which is when the collector
//! reads them (aggregation happens after the shard threads join).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

use crate::forest::ElementId;

/// Top bit of a word: set for roots (low bits = rank), clear for interior
/// nodes (low bits = parent id).  Identical to the [`PackedForest`]
/// encoding.
///
/// [`PackedForest`]: crate::PackedForest
const ROOT_BIT: u32 = 1 << 31;

/// Number of storage segments: segment `k` covers ids
/// `[2^k - 1, 2^(k+1) - 2]`, so 32 segments cover every id below
/// `ROOT_BIT` (the packed-word id limit).
const SEGMENTS: usize = 32;

/// Segment index holding `id`.
#[inline]
fn segment_of(id: u32) -> usize {
    (id + 1).ilog2() as usize
}

/// Offset of `id` inside its segment.
#[inline]
fn offset_in_segment(id: u32, segment: usize) -> usize {
    (id + 1) as usize - (1usize << segment)
}

/// A lock-free disjoint-set forest sharing the §3.5 packed word layout with
/// [`PackedForest`](crate::PackedForest): union by rank via CAS, best-effort
/// path compression, wait-free finds.  All operations take `&self`.
///
/// # Example
///
/// ```
/// use cg_unionfind::AtomicForest;
///
/// let forest = AtomicForest::new();
/// let a = forest.make_set();
/// let b = forest.make_set();
/// let c = forest.make_set();
/// assert!(forest.try_union(a, b).is_some());
/// assert!(forest.try_union(a, b).is_none(), "already merged");
/// assert!(forest.same_set(a, b));
/// assert!(!forest.same_set(a, c));
/// assert_eq!(forest.set_count(), 2);
/// ```
pub struct AtomicForest {
    /// Lazily-allocated word storage; a segment is created filled with
    /// `ROOT_BIT` (root, rank 0) so `make_set` never writes a word.
    segments: [OnceLock<Box<[AtomicU32]>>; SEGMENTS],
    /// Elements ever created (ids are `0..len`, allocated by `fetch_add`).
    len: AtomicU32,
    /// Distinct sets: `+1` per `make_set`, `-1` per successful link CAS.
    set_count: AtomicU32,
    /// High-water mark of any root's rank (monotone, like
    /// `PackedForest::max_rank`).
    max_rank: AtomicU32,
}

impl Default for AtomicForest {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AtomicForest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicForest")
            .field("len", &self.len())
            .field("set_count", &self.set_count())
            .field("max_rank", &self.max_rank())
            .finish()
    }
}

impl AtomicForest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self {
            segments: [const { OnceLock::new() }; SEGMENTS],
            len: AtomicU32::new(0),
            set_count: AtomicU32::new(0),
            max_rank: AtomicU32::new(0),
        }
    }

    /// Number of elements ever created.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    /// Whether no elements have been created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct sets.  Exact when the forest is quiescent; during
    /// concurrent unions the counter can transiently run ahead of what a
    /// racing reader infers from the words themselves.
    pub fn set_count(&self) -> usize {
        self.set_count.load(Ordering::Acquire) as usize
    }

    /// The largest rank any root has ever reached (monotone high-water
    /// mark).
    pub fn max_rank(&self) -> u8 {
        self.max_rank.load(Ordering::Acquire) as u8
    }

    /// Whether `id` names an element of this forest.
    pub fn contains(&self, id: ElementId) -> bool {
        (id as usize) < self.len()
    }

    /// The atomic word of `id`.  The segment is materialised on first touch;
    /// any thread holding a published id reaches an initialised segment
    /// (publication of an id carries at least release/acquire ordering, and
    /// `OnceLock` initialisation is itself release/acquire).
    #[inline]
    fn word(&self, id: ElementId) -> &AtomicU32 {
        let segment = segment_of(id);
        let cells = self.segments[segment].get_or_init(|| Self::new_segment(segment));
        &cells[offset_in_segment(id, segment)]
    }

    fn new_segment(segment: usize) -> Box<[AtomicU32]> {
        (0..1usize << segment)
            .map(|_| AtomicU32::new(ROOT_BIT))
            .collect()
    }

    #[inline]
    fn is_root_word(word: u32) -> bool {
        word & ROOT_BIT != 0
    }

    /// Creates a new singleton set and returns its element id.  Ids are
    /// dense from zero, in allocation order across all threads.
    ///
    /// # Panics
    ///
    /// Panics if the forest already holds `2^31 - 1` elements (the packed
    /// word reserves one bit for the root discriminator).
    pub fn make_set(&self) -> ElementId {
        let id = self.len.fetch_add(1, Ordering::AcqRel);
        assert!(id < ROOT_BIT, "packed forest is limited to 2^31-1 elements");
        // Touch the segment so it exists before the id can be published;
        // the word itself is pre-initialised to `ROOT_BIT` (root, rank 0).
        let _ = self.word(id);
        self.set_count.fetch_add(1, Ordering::AcqRel);
        id
    }

    /// Whether `id` is currently a set representative.
    #[inline]
    pub fn is_root(&self, id: ElementId) -> bool {
        Self::is_root_word(self.word(id).load(Ordering::SeqCst))
    }

    /// Finds a representative of the set containing `id`, compressing the
    /// path by halving on the way.
    ///
    /// The returned node was the set's root at some point during the call;
    /// a concurrent union may have absorbed it by the time the caller looks
    /// at it.  That is sound for every client here: an absorbed root still
    /// leads to the current root, and the static domain's state is monotone
    /// (§3.3 — blocks only ever *join* the static set).  Use
    /// [`same_set`](Self::same_set) for a linearisable comparison.
    ///
    /// Compression is *path halving*: each step tries to CAS `cur`'s word
    /// from its observed parent to its observed grandparent.  Both values
    /// were parent words at the moment they were read, and every parent
    /// word ever stored is strictly greater than its node in the total
    /// order `(rank at link time, id)` — so the installed edge
    /// `cur → grandparent` also points strictly upward, under *any*
    /// interleaving.  (A two-pass "point everything at the pass-1 root"
    /// scheme does not have this property: a racing compression can move
    /// the walk past the pass-1 root, and re-installing that — by then
    /// possibly absorbed — root as a parent of a node above it creates a
    /// cycle.)  A failed CAS is simply skipped; the walk still advances.
    pub fn find(&self, id: ElementId) -> ElementId {
        debug_assert!(self.contains(id), "element {id} does not exist");
        // Parent edges strictly increase the total order `(rank at link
        // time, id)`, and every step moves `cur` strictly up that order, so
        // this terminates even while other threads re-link words under us.
        let mut cur = id;
        let mut word = self.word(cur).load(Ordering::Acquire);
        loop {
            if Self::is_root_word(word) {
                return cur;
            }
            let parent = word;
            let parent_word = self.word(parent).load(Ordering::Acquire);
            if Self::is_root_word(parent_word) {
                return parent;
            }
            // Halve: swing `cur` past `parent` to the grandparent.  The CAS
            // only succeeds while `cur`'s parent is still the `parent` we
            // read the grandparent from, and grandparent > parent > cur in
            // the link order either way, so acyclicity is preserved.
            let _ = self.word(cur).compare_exchange_weak(
                parent,
                parent_word,
                Ordering::Release,
                Ordering::Relaxed,
            );
            cur = parent_word;
            word = self.word(cur).load(Ordering::Acquire);
        }
    }

    /// Whether two elements are currently in the same set (linearisable:
    /// the answer was true at some instant during the call).
    pub fn same_set(&self, a: ElementId, b: ElementId) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            // If `ra` is still a root now, then at the instant `rb` was
            // resolved the two sets really were distinct.  Otherwise a
            // union raced us: retry.
            if Self::is_root_word(self.word(ra).load(Ordering::SeqCst)) {
                return false;
            }
        }
    }

    /// Unions the sets containing `a` and `b`.  Returns the surviving and
    /// absorbed roots as `Some((winner, loser))` if the sets were distinct,
    /// `None` if they were already one set (the effective-union count is
    /// what the collector's statistics need, and it is order-independent:
    /// however concurrent unions interleave, exactly
    /// `initial sets - final sets` of them return `Some`).
    ///
    /// The loser is the root strictly smaller in the order
    /// `(rank, id)` — rank ties break toward the higher id — so every link
    /// points upward in a fixed total order and no interleaving of racing
    /// unions can create a cycle.  The successful CAS on the loser's word
    /// is the linearisation point and is `SeqCst`: the static domain's
    /// reason protocol relies on a single total order of link CASes and
    /// reason-cell updates (see `cg_core::static_domain`).
    pub fn try_union(&self, a: ElementId, b: ElementId) -> Option<(ElementId, ElementId)> {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return None;
            }
            let wa = self.word(ra).load(Ordering::SeqCst);
            let wb = self.word(rb).load(Ordering::SeqCst);
            if !Self::is_root_word(wa) || !Self::is_root_word(wb) {
                continue; // a racing union absorbed one side; re-resolve
            }
            let rank_a = wa & !ROOT_BIT;
            let rank_b = wb & !ROOT_BIT;
            // Winner = greater in the total order (rank, id).
            let (winner, loser, loser_word, tie) = if rank_a > rank_b {
                (ra, rb, wb, false)
            } else if rank_a < rank_b {
                (rb, ra, wa, false)
            } else if ra > rb {
                (ra, rb, wb, true)
            } else {
                (rb, ra, wa, true)
            };
            if self
                .word(loser)
                .compare_exchange(loser_word, winner, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                // The loser's rank was bumped or it was absorbed first.
                continue;
            }
            self.set_count.fetch_sub(1, Ordering::AcqRel);
            if tie {
                // Union by rank: a tie bumps the winner.  Best-effort — if
                // the winner's word changed (absorbed, or bumped by a
                // racing tie) the balance heuristic is skipped, which
                // affects tree depth, never correctness.
                let new_rank = rank_a + 1;
                if self
                    .word(winner)
                    .compare_exchange(
                        ROOT_BIT | rank_a,
                        ROOT_BIT | new_rank,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    self.max_rank.fetch_max(new_rank, Ordering::AcqRel);
                }
            }
            return Some((winner, loser));
        }
    }

    /// Groups all elements by representative as `(root, members)` pairs.
    ///
    /// Cold path only (tests and statistics).  Call while the forest is
    /// quiescent for an exact answer.
    pub fn partitions(&self) -> Vec<(ElementId, Vec<ElementId>)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<ElementId, Vec<ElementId>> = BTreeMap::new();
        for id in 0..self.len() as ElementId {
            map.entry(self.find(id)).or_default().push(id);
        }
        map.into_iter().collect()
    }

    /// A point-in-time copy of the forest.
    ///
    /// Every word is read atomically, but the words are read one by one: if
    /// other threads union concurrently, the copy reflects each union
    /// either fully-applied or not-at-all (a link is a single word), and
    /// `set_count` is recomputed from the copied words so the snapshot is
    /// internally consistent.
    ///
    /// The snapshot is also *self-contained*: `len` is read first, and a
    /// racing `make_set` + union can link a copied root to an element
    /// created after that read (a parent id `>= len`).  Such a word is
    /// copied as a fresh root instead, so every `find` inside the copy
    /// stays within `0..len` and never walks into the copy's own
    /// lazily-created (all-root) storage.
    pub fn snapshot(&self) -> AtomicForest {
        let len = self.len.load(Ordering::Acquire);
        let copy = AtomicForest::new();
        copy.len.store(len, Ordering::Release);
        let mut roots = 0u32;
        for id in 0..len {
            let mut word = self.word(id).load(Ordering::Acquire);
            if !Self::is_root_word(word) && word >= len {
                // Linked past the snapshot boundary by a racing union;
                // re-rootify so the copy is closed under `find`.
                word = ROOT_BIT;
            }
            if Self::is_root_word(word) {
                roots += 1;
            }
            copy.word(id).store(word, Ordering::Release);
        }
        copy.set_count.store(roots, Ordering::Release);
        copy.max_rank
            .store(self.max_rank.load(Ordering::Acquire), Ordering::Release);
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::PackedForest;

    /// Walks the raw parent chain of every element with a step bound: any
    /// cycle a compression/union race could have installed would exceed it.
    /// (A cycle would make `find` itself spin forever, so this check reads
    /// the words directly instead of going through `find`.)
    fn assert_acyclic(forest: &AtomicForest) {
        let len = forest.len() as u32;
        for id in 0..len {
            let mut cur = id;
            let mut steps = 0u32;
            loop {
                let word = forest.word(cur).load(Ordering::SeqCst);
                if AtomicForest::is_root_word(word) {
                    break;
                }
                cur = word;
                steps += 1;
                assert!(steps <= len, "parent cycle reachable from element {id}");
            }
        }
    }

    #[test]
    fn new_forest_is_empty() {
        let forest = AtomicForest::new();
        assert!(forest.is_empty());
        assert_eq!(forest.len(), 0);
        assert_eq!(forest.set_count(), 0);
        assert_eq!(forest.max_rank(), 0);
    }

    #[test]
    fn make_set_assigns_dense_ids() {
        let forest = AtomicForest::new();
        assert_eq!(forest.make_set(), 0);
        assert_eq!(forest.make_set(), 1);
        assert_eq!(forest.make_set(), 2);
        assert_eq!(forest.len(), 3);
        assert_eq!(forest.set_count(), 3);
        assert!(forest.contains(2));
        assert!(!forest.contains(3));
        assert!(forest.is_root(0));
    }

    #[test]
    fn union_merges_and_reports_roles() {
        let forest = AtomicForest::new();
        let a = forest.make_set();
        let b = forest.make_set();
        let (winner, loser) = forest.try_union(a, b).expect("distinct sets merge");
        assert!(forest.is_root(winner));
        assert!(!forest.is_root(loser));
        assert!(forest.same_set(a, b));
        assert_eq!(forest.set_count(), 1);
        assert_eq!(forest.max_rank(), 1);
        assert!(forest.try_union(a, b).is_none(), "second union is a no-op");
    }

    #[test]
    fn segment_layout_covers_the_id_space() {
        assert_eq!(segment_of(0), 0);
        assert_eq!(segment_of(1), 1);
        assert_eq!(segment_of(2), 1);
        assert_eq!(segment_of(3), 2);
        assert_eq!(segment_of(6), 2);
        assert_eq!(segment_of(7), 3);
        for id in [0u32, 1, 2, 3, 6, 7, 14, 15, 1000, 1 << 20, ROOT_BIT - 1] {
            let seg = segment_of(id);
            assert!(seg < SEGMENTS, "id {id} lands in segment {seg}");
            let offset = offset_in_segment(id, seg);
            assert!(offset < (1usize << seg), "id {id} offset {offset}");
        }
    }

    #[test]
    fn growth_crosses_segment_boundaries() {
        let forest = AtomicForest::new();
        let ids: Vec<_> = (0..5000).map(|_| forest.make_set()).collect();
        for pair in ids.windows(2) {
            forest.try_union(pair[0], pair[1]);
        }
        assert_eq!(forest.set_count(), 1);
        let root = forest.find(0);
        for &id in &ids {
            assert_eq!(forest.find(id), root);
        }
    }

    #[test]
    fn snapshot_is_a_point_in_time_copy() {
        let forest = AtomicForest::new();
        let a = forest.make_set();
        let b = forest.make_set();
        let c = forest.make_set();
        forest.try_union(a, b);
        let copy = forest.snapshot();
        forest.try_union(a, c);
        assert_eq!(copy.set_count(), 2);
        assert!(copy.same_set(a, b));
        assert!(!copy.same_set(a, c));
        assert!(forest.same_set(a, c));
    }

    mod properties {
        use super::*;
        use cg_testutil::TestRng;

        /// Single-threaded, the atomic forest produces the same partitions,
        /// set counts, effective-union outcomes and max rank as the packed
        /// forest under random operation sequences (tie-breaks differ, but
        /// rank evolution depends only on rank comparisons, not identity).
        #[test]
        fn matches_packed_forest_model() {
            for seed in 0..96u64 {
                let mut rng = TestRng::new(seed);
                let n = rng.gen_range(1, 96);
                let atomic = AtomicForest::new();
                let mut packed = PackedForest::new();
                for _ in 0..n {
                    atomic.make_set();
                    packed.make_set();
                }
                for _ in 0..rng.gen_range(0, 300) {
                    let a = rng.gen_range(0, n) as u32;
                    let b = rng.gen_range(0, n) as u32;
                    let ao = atomic.try_union(a, b);
                    let po = packed.union(a, b);
                    assert_eq!(
                        ao.is_some(),
                        po.merged(),
                        "seed {seed}: union({a}, {b}) effectiveness"
                    );
                    assert_eq!(atomic.set_count(), packed.set_count(), "seed {seed}");
                }
                assert_eq!(atomic.max_rank(), packed.max_rank(), "seed {seed}");
                for a in 0..n as u32 {
                    for b in 0..n as u32 {
                        assert_eq!(
                            atomic.same_set(a, b),
                            packed.find_immutable(a) == packed.find_immutable(b),
                            "seed {seed}: {a} vs {b}"
                        );
                    }
                }
            }
        }

        /// Concurrent unions over a fixed edge multiset converge to the
        /// connected components of the edge graph — the same partition a
        /// sequential packed forest computes — regardless of interleaving,
        /// with an exact set count and every surviving `find` target a
        /// root.
        #[test]
        fn concurrent_unions_converge_to_components() {
            const THREADS: usize = 4;
            for seed in 0..24u64 {
                let mut rng = TestRng::new(0xA70B ^ seed);
                let n = rng.gen_range(16, 257);
                let edges: Vec<(u32, u32)> = (0..rng.gen_range(8, 512))
                    .map(|_| (rng.gen_range(0, n) as u32, rng.gen_range(0, n) as u32))
                    .collect();

                let forest = AtomicForest::new();
                for _ in 0..n {
                    forest.make_set();
                }
                let barrier = std::sync::Barrier::new(THREADS);
                let effective = std::sync::atomic::AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for t in 0..THREADS {
                        let forest = &forest;
                        let edges = &edges;
                        let barrier = &barrier;
                        let effective = &effective;
                        scope.spawn(move || {
                            barrier.wait();
                            for (i, &(a, b)) in edges.iter().enumerate() {
                                if i % THREADS == t && forest.try_union(a, b).is_some() {
                                    effective.fetch_add(1, Ordering::Relaxed);
                                }
                                // Interleave reads to stress find/compress.
                                let _ = forest.find(a);
                                let _ = forest.same_set(a, b);
                            }
                        });
                    }
                });

                let mut packed = PackedForest::new();
                for _ in 0..n {
                    packed.make_set();
                }
                for &(a, b) in &edges {
                    packed.union(a, b);
                }
                assert_acyclic(&forest);
                assert_eq!(forest.set_count(), packed.set_count(), "seed {seed}");
                assert_eq!(
                    effective.load(Ordering::Relaxed),
                    n - packed.set_count(),
                    "seed {seed}: effective unions are order-independent"
                );
                for a in 0..n as u32 {
                    assert!(forest.is_root(forest.find(a)), "seed {seed}: stale root");
                    for b in 0..n as u32 {
                        assert_eq!(
                            forest.same_set(a, b),
                            packed.find_immutable(a) == packed.find_immutable(b),
                            "seed {seed}: {a} vs {b}"
                        );
                    }
                }
            }
        }

        /// Dedicated find-vs-union compression race: reader threads hammer
        /// `find` (driving path-halving CASes) while writer threads run the
        /// whole union schedule, including unions that absorb roots the
        /// readers just observed.  The forest must stay acyclic — the
        /// two-pass "point at the pass-1 root" compression this crate used
        /// to do could install a downward edge here and make every later
        /// `find` spin forever.
        #[test]
        fn racing_finds_never_corrupt_the_forest() {
            const UNION_THREADS: usize = 2;
            const FIND_THREADS: usize = 2;
            for seed in 0..16u64 {
                let mut rng = TestRng::new(0xF1AD ^ seed);
                let n = rng.gen_range(64, 513);
                let edges: Vec<(u32, u32)> = (0..n * 2)
                    .map(|_| (rng.gen_range(0, n) as u32, rng.gen_range(0, n) as u32))
                    .collect();

                let forest = AtomicForest::new();
                for _ in 0..n {
                    forest.make_set();
                }
                let barrier = std::sync::Barrier::new(UNION_THREADS + FIND_THREADS);
                let writers_done = std::sync::atomic::AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for t in 0..UNION_THREADS {
                        let (forest, edges) = (&forest, &edges);
                        let (barrier, writers_done) = (&barrier, &writers_done);
                        scope.spawn(move || {
                            barrier.wait();
                            for (i, &(a, b)) in edges.iter().enumerate() {
                                if i % UNION_THREADS == t {
                                    forest.try_union(a, b);
                                }
                            }
                            writers_done.fetch_add(1, Ordering::Release);
                        });
                    }
                    for t in 0..FIND_THREADS {
                        let forest = &forest;
                        let (barrier, writers_done) = (&barrier, &writers_done);
                        scope.spawn(move || {
                            let mut rng = TestRng::new(0xF1AD ^ seed ^ ((t as u64) << 32));
                            barrier.wait();
                            while writers_done.load(Ordering::Acquire) < UNION_THREADS {
                                let id = rng.gen_range(0, n) as u32;
                                let root = forest.find(id);
                                let _ = forest.same_set(id, root);
                            }
                        });
                    }
                });

                assert_acyclic(&forest);
                let mut packed = PackedForest::new();
                for _ in 0..n {
                    packed.make_set();
                }
                for &(a, b) in &edges {
                    packed.union(a, b);
                }
                assert_eq!(forest.set_count(), packed.set_count(), "seed {seed}");
                for a in 0..n as u32 {
                    for b in 0..n as u32 {
                        assert_eq!(
                            forest.same_set(a, b),
                            packed.find_immutable(a) == packed.find_immutable(b),
                            "seed {seed}: {a} vs {b}"
                        );
                    }
                }
            }
        }

        /// Snapshots taken while another thread grows and unions the forest
        /// are self-contained: every `find` inside the copy resolves to an
        /// element below the copy's `len` (a racing link to a
        /// younger-than-the-snapshot element is re-rootified during the
        /// copy), and `set_count` matches the copied words.
        #[test]
        fn snapshot_is_self_contained_under_racing_growth() {
            use std::collections::HashSet;
            const GROWTH: usize = 20_000;
            for seed in 0..4u64 {
                let forest = AtomicForest::new();
                let base = 64u32;
                for _ in 0..base {
                    forest.make_set();
                }
                let grown = std::sync::atomic::AtomicBool::new(false);
                std::thread::scope(|scope| {
                    let (forest, grown) = (&forest, &grown);
                    scope.spawn(move || {
                        let mut rng = TestRng::new(0x5A45 ^ seed);
                        for _ in 0..GROWTH {
                            // Grow, then immediately union the newborn with
                            // an older element — the schedule that can link
                            // a pre-snapshot root to a post-snapshot id.
                            let id = forest.make_set();
                            let old = rng.gen_range(0, id as usize) as u32;
                            forest.try_union(old, id);
                        }
                        grown.store(true, Ordering::Release);
                    });
                    // Snapshot while the grower races us; bounded so the
                    // test terminates even on a single core (at least one
                    // snapshot is taken after growth finishes, as a control).
                    let mut snaps = 0;
                    while snaps < 64 {
                        let done = grown.load(Ordering::Acquire);
                        let copy = forest.snapshot();
                        let len = copy.len() as u32;
                        assert!(len >= base);
                        let mut roots = HashSet::new();
                        for id in 0..len {
                            let root = copy.find(id);
                            assert!(
                                root < len,
                                "seed {seed}: snapshot find({id}) = {root} escapes 0..{len}"
                            );
                            roots.insert(root);
                        }
                        assert_acyclic(&copy);
                        assert_eq!(
                            copy.set_count(),
                            roots.len(),
                            "seed {seed}: snapshot set_count is internally consistent"
                        );
                        snaps += 1;
                        if done {
                            break;
                        }
                    }
                });
            }
        }

        /// `make_set` is itself safe to race: ids come out dense and
        /// distinct, and the set count is exact.
        #[test]
        fn concurrent_make_set_allocates_distinct_ids() {
            const THREADS: usize = 4;
            const PER_THREAD: usize = 1000;
            let forest = AtomicForest::new();
            let ids: Vec<Vec<u32>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|_| {
                        let forest = &forest;
                        scope.spawn(move || {
                            (0..PER_THREAD)
                                .map(|_| forest.make_set())
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut all: Vec<u32> = ids.into_iter().flatten().collect();
            all.sort_unstable();
            let expected: Vec<u32> = (0..(THREADS * PER_THREAD) as u32).collect();
            assert_eq!(all, expected);
            assert_eq!(forest.set_count(), THREADS * PER_THREAD);
            assert!(forest.is_root((THREADS * PER_THREAD) as u32 - 1));
        }
    }
}
