//! Disjoint sets whose roots carry a mergeable payload.

use crate::forest::{ElementId, UnionOutcome};
use crate::packed::PackedForest;

/// A per-set payload that knows how to merge with another payload when two
/// sets are unioned.
///
/// For the contaminated collector the payload is the equilive-set record:
/// dependent frame, member-list head/tail, element count and staticness.
/// When block `P` and block `Q` merge, the paper specifies the merged block
/// depends on the *older* of the two dependent frames — that policy lives in
/// the payload's `merge`.
pub trait MergePayload: Sized {
    /// Merges `absorbed` into `self`.
    ///
    /// `self` is the payload of the surviving root; after the call the
    /// absorbed root's payload is dropped.
    fn merge(&mut self, absorbed: Self);
}

/// A disjoint-set forest whose roots each carry a payload of type `T`.
///
/// The forest underneath is the packed single-word-per-element
/// representation of §3.5 ([`PackedForest`]); the behavioural model it is
/// verified against is the plain [`DisjointSets`](crate::DisjointSets).
///
/// # Example
///
/// ```
/// use cg_unionfind::{MergePayload, TaggedSets};
///
/// /// Equilive-style payload: smallest frame number wins, sizes add.
/// #[derive(Debug, PartialEq)]
/// struct Block { dependent_frame: u64, size: u64 }
///
/// impl MergePayload for Block {
///     fn merge(&mut self, other: Self) {
///         self.dependent_frame = self.dependent_frame.min(other.dependent_frame);
///         self.size += other.size;
///     }
/// }
///
/// let mut sets = TaggedSets::new();
/// let a = sets.insert(Block { dependent_frame: 3, size: 1 });
/// let b = sets.insert(Block { dependent_frame: 5, size: 1 });
/// sets.union(a, b);
/// let merged = sets.payload(a).unwrap();
/// assert_eq!(merged.dependent_frame, 3);
/// assert_eq!(merged.size, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaggedSets<T> {
    forest: PackedForest,
    /// Indexed by element id; `Some` only at set roots.
    payloads: Vec<Option<T>>,
}

impl<T: MergePayload> TaggedSets<T> {
    /// Creates an empty tagged forest.
    pub fn new() -> Self {
        Self {
            forest: PackedForest::new(),
            payloads: Vec::new(),
        }
    }

    /// Creates an empty tagged forest with room for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            forest: PackedForest::with_capacity(capacity),
            payloads: Vec::with_capacity(capacity),
        }
    }

    /// Number of elements ever inserted.
    pub fn len(&self) -> usize {
        self.forest.len()
    }

    /// Whether no elements have been inserted.
    pub fn is_empty(&self) -> bool {
        self.forest.is_empty()
    }

    /// Number of distinct sets.
    pub fn set_count(&self) -> usize {
        self.forest.set_count()
    }

    /// Whether `id` names an element.
    pub fn contains(&self, id: ElementId) -> bool {
        self.forest.contains(id)
    }

    /// Inserts a new singleton set carrying `payload`, returning its id.
    pub fn insert(&mut self, payload: T) -> ElementId {
        let id = self.forest.make_set();
        debug_assert_eq!(id as usize, self.payloads.len());
        self.payloads.push(Some(payload));
        id
    }

    /// Finds the representative of `id`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never inserted.
    pub fn find(&mut self, id: ElementId) -> ElementId {
        self.forest.find(id)
    }

    /// Whether two elements are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either element was never inserted.
    pub fn same_set(&mut self, a: ElementId, b: ElementId) -> bool {
        self.forest.same_set(a, b)
    }

    /// Unions the sets of `a` and `b`, merging the absorbed root's payload
    /// into the surviving root's payload.
    ///
    /// # Panics
    ///
    /// Panics if either element was never inserted.
    pub fn union(&mut self, a: ElementId, b: ElementId) -> UnionOutcome {
        let outcome = self.forest.union(a, b);
        self.merge_payloads(outcome);
        outcome
    }

    /// Unions two elements already known to be distinct current roots,
    /// skipping the finds.  The collector's store barrier resolves both
    /// operands' roots exactly once per event and then merges through this.
    ///
    /// # Panics
    ///
    /// Debug-asserts (via the forest) that `ra` and `rb` are distinct
    /// roots; panics if either carries no payload.
    pub fn union_roots(&mut self, ra: ElementId, rb: ElementId) -> UnionOutcome {
        let outcome = self.forest.union_roots(ra, rb);
        self.merge_payloads(outcome);
        outcome
    }

    fn merge_payloads(&mut self, outcome: UnionOutcome) {
        if let Some(absorbed) = outcome.absorbed {
            let taken = self.payloads[absorbed as usize]
                .take()
                .expect("absorbed root must carry a payload");
            let winner = self.payloads[outcome.root as usize]
                .as_mut()
                .expect("surviving root must carry a payload");
            winner.merge(taken);
        }
    }

    /// Shared access to the payload of `id`'s set.
    ///
    /// Returns `None` only if `id` was never inserted.
    pub fn payload(&mut self, id: ElementId) -> Option<&T> {
        if !self.forest.contains(id) {
            return None;
        }
        let root = self.forest.find(id);
        self.payloads[root as usize].as_ref()
    }

    /// Mutable access to the payload of `id`'s set.
    ///
    /// Returns `None` only if `id` was never inserted.
    pub fn payload_mut(&mut self, id: ElementId) -> Option<&mut T> {
        if !self.forest.contains(id) {
            return None;
        }
        let root = self.forest.find(id);
        self.payloads[root as usize].as_mut()
    }

    /// Read-only payload access without path compression; `id` must be a
    /// current root for this to return `Some`.
    pub fn payload_of_root(&self, root: ElementId) -> Option<&T> {
        self.payloads.get(root as usize).and_then(|p| p.as_ref())
    }

    /// Mutable payload access without a find; `root` must be a current root
    /// for this to return `Some`.
    pub fn payload_mut_of_root(&mut self, root: ElementId) -> Option<&mut T> {
        self.payloads
            .get_mut(root as usize)
            .and_then(|p| p.as_mut())
    }

    /// Replaces the payload of the set containing `id`, returning the old
    /// payload.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never inserted.
    pub fn replace_payload(&mut self, id: ElementId, payload: T) -> T {
        let root = self.forest.find(id);
        self.payloads[root as usize]
            .replace(payload)
            .expect("root must carry a payload")
    }

    /// Iterates over `(root, payload)` pairs for every current set.
    pub fn iter_sets(&self) -> impl Iterator<Item = (ElementId, &T)> + '_ {
        self.payloads
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i as ElementId, p)))
    }

    /// Access to the underlying packed forest (e.g. for rank statistics).
    pub fn forest(&self) -> &PackedForest {
        &self.forest
    }

    /// Dissolves every set: each element becomes a singleton again, with a
    /// payload produced by `fresh` from its element id.
    ///
    /// This is the wholesale-reset entry point used by §3.6: the traditional
    /// collector's mark phase rebuilds the equilive relation from scratch.
    pub fn reset_all_with(&mut self, mut fresh: impl FnMut(ElementId) -> T) {
        self.forest.reset_all();
        for (i, slot) in self.payloads.iter_mut().enumerate() {
            *slot = Some(fresh(i as ElementId));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Block {
        frame: u64,
        size: u64,
    }

    impl MergePayload for Block {
        fn merge(&mut self, other: Self) {
            self.frame = self.frame.min(other.frame);
            self.size += other.size;
        }
    }

    fn block(frame: u64) -> Block {
        Block { frame, size: 1 }
    }

    #[test]
    fn insert_creates_singletons_with_payload() {
        let mut sets: TaggedSets<Block> = TaggedSets::new();
        let a = sets.insert(block(7));
        assert_eq!(sets.len(), 1);
        assert_eq!(sets.set_count(), 1);
        assert_eq!(sets.payload(a), Some(&block(7)));
    }

    #[test]
    fn union_merges_payload_towards_older_frame() {
        let mut sets: TaggedSets<Block> = TaggedSets::new();
        let a = sets.insert(block(3));
        let b = sets.insert(block(5));
        let c = sets.insert(block(1));
        sets.union(a, b);
        assert_eq!(sets.payload(b).unwrap().frame, 3);
        assert_eq!(sets.payload(b).unwrap().size, 2);
        sets.union(b, c);
        assert_eq!(sets.payload(a).unwrap().frame, 1);
        assert_eq!(sets.payload(a).unwrap().size, 3);
        assert_eq!(sets.set_count(), 1);
    }

    #[test]
    fn union_same_set_does_not_touch_payload() {
        let mut sets: TaggedSets<Block> = TaggedSets::new();
        let a = sets.insert(block(2));
        let b = sets.insert(block(4));
        sets.union(a, b);
        let before = sets.payload(a).cloned();
        let out = sets.union(a, b);
        assert!(!out.merged());
        assert_eq!(sets.payload(a).cloned(), before);
    }

    #[test]
    fn payload_mut_updates_through_any_member() {
        let mut sets: TaggedSets<Block> = TaggedSets::new();
        let a = sets.insert(block(9));
        let b = sets.insert(block(8));
        sets.union(a, b);
        sets.payload_mut(a).unwrap().frame = 0;
        assert_eq!(sets.payload(b).unwrap().frame, 0);
    }

    #[test]
    fn payload_of_unknown_element_is_none() {
        let mut sets: TaggedSets<Block> = TaggedSets::new();
        assert!(sets.payload(0).is_none());
        assert!(sets.payload_mut(3).is_none());
    }

    #[test]
    fn replace_payload_returns_old() {
        let mut sets: TaggedSets<Block> = TaggedSets::new();
        let a = sets.insert(block(5));
        let old = sets.replace_payload(a, block(1));
        assert_eq!(old, block(5));
        assert_eq!(sets.payload(a).unwrap().frame, 1);
    }

    #[test]
    fn iter_sets_yields_only_roots() {
        let mut sets: TaggedSets<Block> = TaggedSets::new();
        let a = sets.insert(block(1));
        let b = sets.insert(block(2));
        let _c = sets.insert(block(3));
        sets.union(a, b);
        let roots: Vec<_> = sets.iter_sets().collect();
        assert_eq!(roots.len(), 2);
        let total: u64 = roots.iter().map(|(_, p)| p.size).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn reset_all_with_restores_singletons() {
        let mut sets: TaggedSets<Block> = TaggedSets::new();
        for i in 0..4 {
            sets.insert(block(i));
        }
        sets.union(0, 1);
        sets.union(2, 3);
        sets.reset_all_with(|id| Block {
            frame: 100 + id as u64,
            size: 1,
        });
        assert_eq!(sets.set_count(), 4);
        for i in 0..4u32 {
            assert_eq!(sets.payload(i).unwrap().frame, 100 + i as u64);
            assert_eq!(sets.payload(i).unwrap().size, 1);
        }
    }

    #[test]
    fn payload_of_root_is_read_only_view() {
        let mut sets: TaggedSets<Block> = TaggedSets::new();
        let a = sets.insert(block(1));
        let b = sets.insert(block(2));
        let out = sets.union(a, b);
        assert!(sets.payload_of_root(out.root).is_some());
        assert!(sets.payload_of_root(out.absorbed.unwrap()).is_none());
        assert!(sets.payload_of_root(99).is_none());
    }

    mod properties {
        use super::*;
        use cg_testutil::TestRng;

        /// The sum of set sizes always equals the number of elements, and
        /// each set's frame is the minimum frame of its members.
        #[test]
        fn sizes_and_min_frames_are_preserved() {
            for seed in 0..64u64 {
                let mut rng = TestRng::new(seed);
                let n = rng.gen_range(1, 48);
                let frames: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 32) as u64).collect();
                let ops: Vec<(usize, usize)> = (0..rng.gen_range(0, 128))
                    .map(|_| (rng.gen_range(0, n), rng.gen_range(0, n)))
                    .collect();
                let mut sets: TaggedSets<Block> = TaggedSets::new();
                for &f in &frames {
                    sets.insert(Block { frame: f, size: 1 });
                }
                for (a, b) in ops {
                    sets.union(a as ElementId, b as ElementId);
                }
                let total: u64 = sets.iter_sets().map(|(_, p)| p.size).sum();
                assert_eq!(total, n as u64, "seed {seed}");
                // Recompute expected min frame per partition and compare.
                let mut forest = sets.clone_forest_for_test();
                for id in 0..n as ElementId {
                    let root = forest.find(id);
                    let expected_min = (0..n as ElementId)
                        .filter(|&j| forest.find(j) == root)
                        .map(|j| frames[j as usize])
                        .min()
                        .unwrap();
                    assert_eq!(sets.payload(id).unwrap().frame, expected_min, "seed {seed}");
                }
            }
        }
    }

    impl<T: MergePayload + Clone> TaggedSets<T> {
        /// Test helper: clone of the underlying forest for independent finds.
        fn clone_forest_for_test(&self) -> PackedForest {
            self.forest.clone()
        }
    }
}
