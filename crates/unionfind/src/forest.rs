//! The plain disjoint-set forest: union by rank, iterative path compression.

/// Identifier of an element in a [`DisjointSets`] forest.
///
/// Elements are allocated densely starting at zero by
/// [`DisjointSets::make_set`]; the contaminated collector uses the heap
/// handle index as the element id so no extra mapping is needed.
pub type ElementId = u32;

/// Result of a [`DisjointSets::union`] operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnionOutcome {
    /// The representative (root) of the combined set after the union.
    pub root: ElementId,
    /// The previous root that was absorbed, if the two elements were in
    /// different sets; `None` if they were already in the same set.
    pub absorbed: Option<ElementId>,
}

impl UnionOutcome {
    /// Whether the union actually merged two distinct sets.
    pub fn merged(&self) -> bool {
        self.absorbed.is_some()
    }
}

/// A disjoint-set forest with union by rank and path compression.
///
/// This is the structure the paper embeds in each object handle: one parent
/// pointer plus a small integer rank (§3.1.1).  The paper notes the rank
/// never exceeded ten on SPECjvm98, which lets the production implementation
/// squeeze the rank into the low bits of the parent pointer (§3.5); here rank
/// is stored separately but [`DisjointSets::max_rank`] exposes the bound so
/// the packed-handle accounting in `cg-heap` can rely on it.
///
/// # Example
///
/// ```
/// use cg_unionfind::DisjointSets;
///
/// let mut sets = DisjointSets::with_capacity(8);
/// let ids: Vec<_> = (0..8).map(|_| sets.make_set()).collect();
/// for pair in ids.chunks(2) {
///     sets.union(pair[0], pair[1]);
/// }
/// assert_eq!(sets.set_count(), 4);
/// assert!(sets.max_rank() <= 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DisjointSets {
    parent: Vec<ElementId>,
    rank: Vec<u8>,
    set_count: usize,
    /// High-water mark of any root's rank, maintained incrementally on
    /// `union` (rank only ever grows there) instead of by an O(n) root scan.
    max_rank: u8,
}

impl DisjointSets {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty forest with room for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            parent: Vec::with_capacity(capacity),
            rank: Vec::with_capacity(capacity),
            set_count: 0,
            max_rank: 0,
        }
    }

    /// Number of elements ever created.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no elements have been created.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct sets currently in the forest.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Whether `id` names an element of this forest.
    pub fn contains(&self, id: ElementId) -> bool {
        (id as usize) < self.parent.len()
    }

    /// Creates a new singleton set and returns its element id.
    ///
    /// Ids are assigned densely: the first call returns 0, the next 1, and
    /// so on.
    pub fn make_set(&mut self) -> ElementId {
        let id = self.parent.len() as ElementId;
        self.parent.push(id);
        self.rank.push(0);
        self.set_count += 1;
        id
    }

    /// Ensures elements `0..=id` all exist, creating singletons as needed.
    ///
    /// The contaminated collector indexes elements by heap handle, and
    /// handles may be minted by the heap without the collector seeing an
    /// allocation event (e.g. VM-internal objects), so it must be able to
    /// materialise an element lazily.
    pub fn ensure(&mut self, id: ElementId) {
        while self.parent.len() <= id as usize {
            self.make_set();
        }
    }

    /// Finds the representative of the set containing `id`, compressing the
    /// path along the way.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never created.
    pub fn find(&mut self, id: ElementId) -> ElementId {
        assert!(self.contains(id), "element {id} does not exist");
        // First pass: locate the root.
        let mut root = id;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Second pass: point every node on the path directly at the root.
        let mut cur = id;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Finds the representative without compressing paths (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never created.
    pub fn find_immutable(&self, id: ElementId) -> ElementId {
        assert!(self.contains(id), "element {id} does not exist");
        let mut root = id;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root
    }

    /// Whether two elements are currently in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either element was never created.
    pub fn same_set(&mut self, a: ElementId, b: ElementId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Unions the sets containing `a` and `b` using union by rank.
    ///
    /// Returns the surviving root and, when a merge happened, the root that
    /// was absorbed — callers carrying per-set payloads use the absorbed root
    /// to move its payload onto the winner.
    ///
    /// # Panics
    ///
    /// Panics if either element was never created.
    pub fn union(&mut self, a: ElementId, b: ElementId) -> UnionOutcome {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return UnionOutcome {
                root: ra,
                absorbed: None,
            };
        }
        let (winner, loser) = match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Equal => {
                self.rank[ra as usize] += 1;
                self.max_rank = self.max_rank.max(self.rank[ra as usize]);
                (ra, rb)
            }
        };
        self.parent[loser as usize] = winner;
        self.set_count -= 1;
        UnionOutcome {
            root: winner,
            absorbed: Some(loser),
        }
    }

    /// The current rank of the set rooted at `id`'s representative.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never created.
    pub fn rank_of(&mut self, id: ElementId) -> u8 {
        let root = self.find(id);
        self.rank[root as usize]
    }

    /// The largest rank any root has ever reached (O(1)).
    ///
    /// The paper observes this stays small (≤ 10 on SPECjvm98), justifying
    /// the packed-handle representation of §3.5 (see
    /// [`PackedForest`](crate::PackedForest)).  Maintained incrementally as
    /// a high-water mark: unions can only grow it, `reset_all` clears it,
    /// and [`DisjointSets::detach_into_singleton`] never lowers it.
    pub fn max_rank(&self) -> u8 {
        self.max_rank
    }

    /// Iterates over the current set representatives.
    ///
    /// Cold path only: this scans every element.  Nothing on the
    /// per-event hot path enumerates roots.
    pub fn roots(&self) -> impl Iterator<Item = ElementId> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter(|(i, &p)| p as usize == *i)
            .map(|(i, _)| i as ElementId)
    }

    /// Detaches `id` into a fresh singleton set of rank zero.
    ///
    /// Used by the resetting pass (§3.6): during a traditional collection the
    /// contaminated collector dissolves its equilive sets and rebuilds them
    /// from the live object graph.  Note that resetting an interior element
    /// leaves the rest of its former set intact (they keep their old root).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never created, or if other elements still point at
    /// `id` as their parent (i.e. `id` is a non-singleton root); callers must
    /// reset whole partitions via [`DisjointSets::reset_all`] or only detach
    /// leaves they know are safe.
    pub fn detach_into_singleton(&mut self, id: ElementId) {
        assert!(self.contains(id), "element {id} does not exist");
        let has_children = self
            .parent
            .iter()
            .enumerate()
            .any(|(i, &p)| p == id && i as ElementId != id);
        assert!(
            !has_children,
            "cannot detach element {id}: other elements still point at it"
        );
        let was_root = self.parent[id as usize] == id;
        self.parent[id as usize] = id;
        self.rank[id as usize] = 0;
        if !was_root {
            self.set_count += 1;
        }
    }

    /// Resets every element into its own singleton set.
    pub fn reset_all(&mut self) {
        for i in 0..self.parent.len() {
            self.parent[i] = i as ElementId;
            self.rank[i] = 0;
        }
        self.set_count = self.parent.len();
        self.max_rank = 0;
    }

    /// Groups all elements by their representative, returning
    /// `(root, members)` pairs.  Cold path only (tests and statistics):
    /// allocates and walks the whole forest; never call this per event.
    pub fn partitions(&mut self) -> Vec<(ElementId, Vec<ElementId>)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<ElementId, Vec<ElementId>> = BTreeMap::new();
        for id in 0..self.parent.len() as ElementId {
            let root = self.find(id);
            map.entry(root).or_default().push(id);
        }
        map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_forest_is_empty() {
        let sets = DisjointSets::new();
        assert!(sets.is_empty());
        assert_eq!(sets.len(), 0);
        assert_eq!(sets.set_count(), 0);
        assert_eq!(sets.max_rank(), 0);
    }

    #[test]
    fn make_set_assigns_dense_ids() {
        let mut sets = DisjointSets::new();
        assert_eq!(sets.make_set(), 0);
        assert_eq!(sets.make_set(), 1);
        assert_eq!(sets.make_set(), 2);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets.set_count(), 3);
    }

    #[test]
    fn find_of_singleton_is_itself() {
        let mut sets = DisjointSets::new();
        let a = sets.make_set();
        assert_eq!(sets.find(a), a);
        assert_eq!(sets.find_immutable(a), a);
    }

    #[test]
    fn union_merges_and_reports_absorbed_root() {
        let mut sets = DisjointSets::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let out = sets.union(a, b);
        assert!(out.merged());
        assert!(out.root == a || out.root == b);
        assert_eq!(out.absorbed, Some(if out.root == a { b } else { a }));
        assert!(sets.same_set(a, b));
        assert_eq!(sets.set_count(), 1);
    }

    #[test]
    fn union_of_same_set_is_noop() {
        let mut sets = DisjointSets::new();
        let a = sets.make_set();
        let b = sets.make_set();
        sets.union(a, b);
        let out = sets.union(a, b);
        assert!(!out.merged());
        assert_eq!(out.absorbed, None);
        assert_eq!(sets.set_count(), 1);
    }

    #[test]
    fn union_by_rank_prefers_higher_rank_root() {
        let mut sets = DisjointSets::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let c = sets.make_set();
        // a-b gives the winner rank 1.
        let first = sets.union(a, b);
        // Unioning with singleton c keeps the rank-1 root as winner.
        let second = sets.union(c, first.root);
        assert_eq!(second.root, first.root);
        assert_eq!(second.absorbed, Some(c));
    }

    #[test]
    fn ensure_materialises_elements() {
        let mut sets = DisjointSets::new();
        sets.ensure(4);
        assert_eq!(sets.len(), 5);
        assert_eq!(sets.set_count(), 5);
        assert!(sets.contains(4));
        assert!(!sets.contains(5));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn find_of_unknown_element_panics() {
        let mut sets = DisjointSets::new();
        sets.find(0);
    }

    #[test]
    fn path_compression_flattens() {
        let mut sets = DisjointSets::new();
        let ids: Vec<_> = (0..16).map(|_| sets.make_set()).collect();
        // Build a chain via repeated unions.
        for w in ids.windows(2) {
            sets.union(w[0], w[1]);
        }
        let root = sets.find(ids[0]);
        // After find, every element should point directly at the root.
        for &id in &ids {
            assert_eq!(sets.find(id), root);
            assert_eq!(sets.parent[id as usize], root);
        }
    }

    #[test]
    fn rank_bound_is_logarithmic() {
        let mut sets = DisjointSets::new();
        let n = 1024;
        let ids: Vec<_> = (0..n).map(|_| sets.make_set()).collect();
        // Pairwise tournament union maximises rank growth.
        let mut layer = ids;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(sets.union(pair[0], pair[1]).root);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        assert_eq!(sets.set_count(), 1);
        assert!(
            sets.max_rank() as u32 <= 10,
            "rank {} too high",
            sets.max_rank()
        );
    }

    #[test]
    fn roots_enumerates_representatives() {
        let mut sets = DisjointSets::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let c = sets.make_set();
        sets.union(a, b);
        let roots: Vec<_> = sets.roots().collect();
        assert_eq!(roots.len(), 2);
        assert!(roots.contains(&c));
    }

    #[test]
    fn detach_leaf_into_singleton() {
        let mut sets = DisjointSets::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let out = sets.union(a, b);
        let leaf = out.absorbed.unwrap();
        sets.detach_into_singleton(leaf);
        assert!(!sets.same_set(a, b));
        assert_eq!(sets.set_count(), 2);
    }

    #[test]
    #[should_panic(expected = "still point at it")]
    fn detach_root_with_children_panics() {
        let mut sets = DisjointSets::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let out = sets.union(a, b);
        sets.detach_into_singleton(out.root);
    }

    #[test]
    fn reset_all_restores_singletons() {
        let mut sets = DisjointSets::new();
        for _ in 0..8 {
            sets.make_set();
        }
        sets.union(0, 1);
        sets.union(2, 3);
        sets.union(0, 2);
        sets.reset_all();
        assert_eq!(sets.set_count(), 8);
        for i in 0..8 {
            assert_eq!(sets.find(i), i);
        }
        assert_eq!(sets.max_rank(), 0);
    }

    #[test]
    fn partitions_reflect_unions() {
        let mut sets = DisjointSets::new();
        for _ in 0..6 {
            sets.make_set();
        }
        sets.union(0, 1);
        sets.union(1, 2);
        sets.union(4, 5);
        let parts = sets.partitions();
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(|(_, m)| m.len()).collect();
        assert!(sizes.contains(&3));
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
    }

    mod properties {
        use super::*;
        use cg_testutil::TestRng;
        use std::collections::HashMap;

        /// A naive partition model to compare the forest against.
        #[derive(Default)]
        struct Model {
            set_of: Vec<usize>,
            next_set: usize,
        }

        impl Model {
            fn make(&mut self) -> usize {
                let id = self.set_of.len();
                self.set_of.push(self.next_set);
                self.next_set += 1;
                id
            }
            fn union(&mut self, a: usize, b: usize) {
                let (sa, sb) = (self.set_of[a], self.set_of[b]);
                if sa != sb {
                    for s in self.set_of.iter_mut() {
                        if *s == sb {
                            *s = sa;
                        }
                    }
                }
            }
            fn same(&self, a: usize, b: usize) -> bool {
                self.set_of[a] == self.set_of[b]
            }
            fn set_count(&self) -> usize {
                let mut seen: HashMap<usize, ()> = HashMap::new();
                for &s in &self.set_of {
                    seen.insert(s, ());
                }
                seen.len()
            }
        }

        /// Random `(a, b)` union pairs over `n` elements.
        fn random_ops(rng: &mut TestRng, n: usize, max_ops: usize) -> Vec<(usize, usize)> {
            let ops = rng.gen_range(0, max_ops);
            (0..ops)
                .map(|_| (rng.gen_range(0, n), rng.gen_range(0, n)))
                .collect()
        }

        /// The forest's partition always matches a naive model under any
        /// sequence of unions.
        #[test]
        fn matches_naive_model() {
            for seed in 0..64u64 {
                let mut rng = TestRng::new(seed);
                let n = rng.gen_range(1, 64);
                let mut sets = DisjointSets::new();
                let mut model = Model::default();
                for _ in 0..n {
                    sets.make_set();
                    model.make();
                }
                for (a, b) in random_ops(&mut rng, n, 200) {
                    sets.union(a as ElementId, b as ElementId);
                    model.union(a, b);
                }
                assert_eq!(sets.set_count(), model.set_count(), "seed {seed}");
                for a in 0..n {
                    for b in 0..n {
                        assert_eq!(
                            sets.same_set(a as ElementId, b as ElementId),
                            model.same(a, b),
                            "seed {seed}: elements {a}, {b}"
                        );
                    }
                }
            }
        }

        /// Rank of any root never exceeds log2 of the number of elements.
        #[test]
        fn rank_is_bounded() {
            for seed in 0..64u64 {
                let mut rng = TestRng::new(seed);
                let n = rng.gen_range(1, 128);
                let mut sets = DisjointSets::new();
                for _ in 0..n {
                    sets.make_set();
                }
                for (a, b) in random_ops(&mut rng, n, 400) {
                    sets.union(a as ElementId, b as ElementId);
                }
                let bound = (usize::BITS - n.leading_zeros()) as u8;
                assert!(sets.max_rank() <= bound, "seed {seed}");
            }
        }

        /// find is idempotent and stable across repeated calls.
        #[test]
        fn find_is_idempotent() {
            for seed in 0..64u64 {
                let mut rng = TestRng::new(seed);
                let n = rng.gen_range(1, 64);
                let mut sets = DisjointSets::new();
                for _ in 0..n {
                    sets.make_set();
                }
                for (a, b) in random_ops(&mut rng, n, 100) {
                    sets.union(a as ElementId, b as ElementId);
                }
                for id in 0..n as ElementId {
                    let r1 = sets.find(id);
                    let r2 = sets.find(id);
                    assert_eq!(r1, r2, "seed {seed}");
                    assert_eq!(sets.find(r1), r1, "seed {seed}");
                    assert_eq!(sets.find_immutable(id), r1, "seed {seed}");
                }
            }
        }

        /// set_count plus the number of successful merges equals the
        /// number of elements.
        #[test]
        fn set_count_accounting() {
            for seed in 0..64u64 {
                let mut rng = TestRng::new(seed);
                let n = rng.gen_range(1, 64);
                let mut sets = DisjointSets::new();
                for _ in 0..n {
                    sets.make_set();
                }
                let mut merges = 0usize;
                for (a, b) in random_ops(&mut rng, n, 200) {
                    if sets.union(a as ElementId, b as ElementId).merged() {
                        merges += 1;
                    }
                }
                assert_eq!(sets.set_count() + merges, n, "seed {seed}");
            }
        }
    }
}
