//! Disjoint-set forests (union/find) for the contaminated-GC reproduction.
//!
//! The paper maintains its *equilive* equivalence relation over heap objects
//! with Tarjan's disjoint-set forest using union by rank and path compression
//! (thesis §2.2 and §3.1.1), so that the overhead per reference store is a
//! nearly constant amount of work.  This crate provides that data structure
//! in two flavours:
//!
//! * [`DisjointSets`] — the plain forest over dense `u32` element ids, with
//!   parent and rank stored separately.  Kept as the readable reference
//!   model the packed forest is property-tested against.
//! * [`PackedForest`] — the production forest of §3.5: parent pointer and
//!   rank packed into a single `u32` word per element, incremental
//!   `set_count`/`max_rank`, and `debug_assert`-only existence checks on
//!   the per-store hot path.
//! * [`TaggedSets`] — the packed forest where every set root carries a
//!   payload that is merged (via [`MergePayload`]) whenever two sets are
//!   unioned.  The collector uses the payload to store each equilive set's
//!   dependent frame, its member list and its size.
//! * [`AtomicForest`] — the packed forest with every word in an
//!   `AtomicU32`: lock-free CAS unions and wait-free finds, so the shared
//!   static domain (§3.3) can be driven by many shard threads without a
//!   global lock.
//!
//! # Example
//!
//! ```
//! use cg_unionfind::DisjointSets;
//!
//! let mut sets = DisjointSets::new();
//! let a = sets.make_set();
//! let b = sets.make_set();
//! let c = sets.make_set();
//! sets.union(a, b);
//! assert!(sets.same_set(a, b));
//! assert!(!sets.same_set(a, c));
//! assert_eq!(sets.set_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod forest;
pub mod packed;
pub mod tagged;

pub use atomic::AtomicForest;
pub use forest::{DisjointSets, ElementId, UnionOutcome};
pub use packed::PackedForest;
pub use tagged::{MergePayload, TaggedSets};
