//! The packed disjoint-set forest of §3.5: parent pointer and rank share one
//! machine word per element.
//!
//! The straightforward representation (see [`DisjointSets`](crate::DisjointSets))
//! keeps a parent array and a separate rank array.  The paper observes that
//! union by rank bounds the rank by `log2(n)` — it never exceeded ten on
//! SPECjvm98 — so the production implementation stores the rank in the bits
//! of the parent word itself, halving the per-handle space cost (§3.5,
//! reflected in `HandleRepr::CgPacked`'s accounting) and touching one cache
//! line instead of two on every find.
//!
//! The encoding here uses the top bit of the `u32` word as the root
//! discriminator:
//!
//! * root:     `1 << 31 | rank` — the low bits hold the rank directly;
//! * interior: `parent`         — the element id of the parent (ids are
//!   therefore limited to `2^31 - 1`, far beyond any workload's object
//!   count).
//!
//! This is the hot-path forest: [`find`](PackedForest::find) and
//! [`union`](PackedForest::union) run on every reference store the VM
//! executes, so existence checks are `debug_assert!`s (slice indexing still
//! bounds-checks; the release build simply skips the redundant friendly
//! message) and nothing on the store path allocates or scans.
//! `max_rank` and `set_count` are maintained incrementally instead of by the
//! O(n) root scans the plain forest originally used.

use crate::forest::{ElementId, UnionOutcome};

/// Top bit of a word: set for roots (low bits = rank), clear for interior
/// nodes (low bits = parent id).
const ROOT_BIT: u32 = 1 << 31;

/// A disjoint-set forest storing parent and rank in a single `u32` word per
/// element (§3.5), with union by rank and iterative path compression.
///
/// Drop-in behavioural equivalent of [`DisjointSets`](crate::DisjointSets)
/// — the property tests in this module drive both against random operation
/// sequences and require identical partitions, set counts and outcomes.
///
/// # Example
///
/// ```
/// use cg_unionfind::PackedForest;
///
/// let mut sets = PackedForest::with_capacity(8);
/// let ids: Vec<_> = (0..8).map(|_| sets.make_set()).collect();
/// for pair in ids.chunks(2) {
///     sets.union(pair[0], pair[1]);
/// }
/// assert_eq!(sets.set_count(), 4);
/// assert!(sets.max_rank() <= 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedForest {
    /// One packed word per element: `ROOT_BIT | rank` or a parent id.
    words: Vec<u32>,
    /// Maintained incrementally: one new set per `make_set`, one fewer per
    /// merging `union`, one more per `detach_into_singleton` of a non-root.
    set_count: usize,
    /// High-water mark of any root's rank, maintained on `union` (rank only
    /// ever grows there).  `reset_all` clears it; detaching an element never
    /// lowers it, so this is the bound §3.5's packing argument relies on,
    /// not an exact current maximum.
    max_rank: u8,
}

impl PackedForest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty forest with room for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            words: Vec::with_capacity(capacity),
            set_count: 0,
            max_rank: 0,
        }
    }

    /// Number of elements ever created.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no elements have been created.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of distinct sets currently in the forest (maintained
    /// incrementally; O(1)).
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// The largest rank any root has ever reached (O(1); see the field
    /// documentation for the high-water-mark semantics).
    pub fn max_rank(&self) -> u8 {
        self.max_rank
    }

    /// Whether `id` names an element of this forest.
    pub fn contains(&self, id: ElementId) -> bool {
        (id as usize) < self.words.len()
    }

    #[inline]
    fn is_root_word(word: u32) -> bool {
        word & ROOT_BIT != 0
    }

    /// Creates a new singleton set and returns its element id.
    ///
    /// Ids are assigned densely starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if the forest already holds `2^31 - 1` elements (the packed
    /// word reserves one bit for the root discriminator).
    pub fn make_set(&mut self) -> ElementId {
        let id = self.words.len() as u32;
        assert!(id < ROOT_BIT, "packed forest is limited to 2^31-1 elements");
        self.words.push(ROOT_BIT); // root, rank 0
        self.set_count += 1;
        id
    }

    /// Ensures elements `0..=id` all exist, creating singletons as needed.
    pub fn ensure(&mut self, id: ElementId) {
        while self.words.len() <= id as usize {
            self.make_set();
        }
    }

    /// Finds the representative of the set containing `id`, compressing the
    /// path along the way.
    #[inline]
    pub fn find(&mut self, id: ElementId) -> ElementId {
        debug_assert!(self.contains(id), "element {id} does not exist");
        // First pass: locate the root.
        let mut root = id;
        let mut word = self.words[root as usize];
        while !Self::is_root_word(word) {
            root = word;
            word = self.words[root as usize];
        }
        // Second pass: point every node on the path directly at the root.
        let mut cur = id;
        while cur != root {
            let next = self.words[cur as usize];
            debug_assert!(!Self::is_root_word(next));
            self.words[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Finds the representative without compressing paths (read-only).
    pub fn find_immutable(&self, id: ElementId) -> ElementId {
        debug_assert!(self.contains(id), "element {id} does not exist");
        let mut root = id;
        let mut word = self.words[root as usize];
        while !Self::is_root_word(word) {
            root = word;
            word = self.words[root as usize];
        }
        root
    }

    /// Whether two elements are currently in the same set.
    pub fn same_set(&mut self, a: ElementId, b: ElementId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Unions the sets containing `a` and `b` using union by rank,
    /// returning the surviving root and the absorbed root (if a merge
    /// happened) exactly like
    /// [`DisjointSets::union`](crate::DisjointSets::union).
    pub fn union(&mut self, a: ElementId, b: ElementId) -> UnionOutcome {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return UnionOutcome {
                root: ra,
                absorbed: None,
            };
        }
        self.union_roots(ra, rb)
    }

    /// Unions two elements already known to be distinct roots, skipping the
    /// finds.  The collector's store barrier uses this after it has already
    /// resolved both operands' roots once.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `ra` and `rb` are distinct current roots.
    pub fn union_roots(&mut self, ra: ElementId, rb: ElementId) -> UnionOutcome {
        debug_assert!(ra != rb, "union_roots of the same root");
        let wa = self.words[ra as usize];
        let wb = self.words[rb as usize];
        debug_assert!(Self::is_root_word(wa), "{ra} is not a root");
        debug_assert!(Self::is_root_word(wb), "{rb} is not a root");
        let (winner, loser) = match (wa & !ROOT_BIT).cmp(&(wb & !ROOT_BIT)) {
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Equal => {
                let rank = (wa & !ROOT_BIT) + 1;
                self.words[ra as usize] = ROOT_BIT | rank;
                self.max_rank = self.max_rank.max(rank as u8);
                (ra, rb)
            }
        };
        self.words[loser as usize] = winner;
        self.set_count -= 1;
        UnionOutcome {
            root: winner,
            absorbed: Some(loser),
        }
    }

    /// The current rank of the set rooted at `id`'s representative.
    pub fn rank_of(&mut self, id: ElementId) -> u8 {
        let root = self.find(id);
        (self.words[root as usize] & !ROOT_BIT) as u8
    }

    /// Iterates over the current set representatives.
    ///
    /// Cold path only: this scans every element.  The hot path never
    /// enumerates roots — the collector keeps its own per-frame root lists.
    pub fn roots(&self) -> impl Iterator<Item = ElementId> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| Self::is_root_word(w))
            .map(|(i, _)| i as ElementId)
    }

    /// Detaches `id` into a fresh singleton set of rank zero (the §3.6
    /// resetting pass).
    ///
    /// The seed implementation verified on every call — with an O(n) scan —
    /// that no other element still points at `id`; that scan is now a debug
    /// assertion, so release builds pay nothing and debug builds (and the
    /// test suite) still catch misuse.
    pub fn detach_into_singleton(&mut self, id: ElementId) {
        debug_assert!(self.contains(id), "element {id} does not exist");
        debug_assert!(
            !self
                .words
                .iter()
                .enumerate()
                .any(|(i, &w)| !Self::is_root_word(w) && w == id && i as ElementId != id),
            "cannot detach element {id}: other elements still point at it"
        );
        let was_root = Self::is_root_word(self.words[id as usize]);
        self.words[id as usize] = ROOT_BIT;
        if !was_root {
            self.set_count += 1;
        }
    }

    /// Resets every element into its own singleton set.
    pub fn reset_all(&mut self) {
        for word in &mut self.words {
            *word = ROOT_BIT;
        }
        self.set_count = self.words.len();
        self.max_rank = 0;
    }

    /// Groups all elements by representative as `(root, members)` pairs.
    ///
    /// Cold path only (tests and statistics): allocates and walks the whole
    /// forest.
    pub fn partitions(&mut self) -> Vec<(ElementId, Vec<ElementId>)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<ElementId, Vec<ElementId>> = BTreeMap::new();
        for id in 0..self.words.len() as ElementId {
            let root = self.find(id);
            map.entry(root).or_default().push(id);
        }
        map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::DisjointSets;

    #[test]
    fn new_forest_is_empty() {
        let sets = PackedForest::new();
        assert!(sets.is_empty());
        assert_eq!(sets.len(), 0);
        assert_eq!(sets.set_count(), 0);
        assert_eq!(sets.max_rank(), 0);
    }

    #[test]
    fn make_set_assigns_dense_ids() {
        let mut sets = PackedForest::new();
        assert_eq!(sets.make_set(), 0);
        assert_eq!(sets.make_set(), 1);
        assert_eq!(sets.make_set(), 2);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets.set_count(), 3);
        assert!(sets.contains(2));
        assert!(!sets.contains(3));
    }

    #[test]
    fn union_merges_and_reports_absorbed_root() {
        let mut sets = PackedForest::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let out = sets.union(a, b);
        assert!(out.merged());
        assert_eq!(out.absorbed, Some(if out.root == a { b } else { a }));
        assert!(sets.same_set(a, b));
        assert_eq!(sets.set_count(), 1);
        assert_eq!(sets.max_rank(), 1);
        // Re-union is a no-op.
        let out = sets.union(a, b);
        assert!(!out.merged());
        assert_eq!(sets.set_count(), 1);
    }

    #[test]
    fn union_by_rank_prefers_higher_rank_root() {
        let mut sets = PackedForest::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let c = sets.make_set();
        let first = sets.union(a, b);
        let second = sets.union(c, first.root);
        assert_eq!(second.root, first.root);
        assert_eq!(second.absorbed, Some(c));
        assert_eq!(sets.rank_of(c), 1);
    }

    #[test]
    fn ensure_materialises_elements() {
        let mut sets = PackedForest::new();
        sets.ensure(4);
        assert_eq!(sets.len(), 5);
        assert_eq!(sets.set_count(), 5);
    }

    #[test]
    fn path_compression_flattens() {
        let mut sets = PackedForest::new();
        let ids: Vec<_> = (0..16).map(|_| sets.make_set()).collect();
        for w in ids.windows(2) {
            sets.union(w[0], w[1]);
        }
        let root = sets.find(ids[0]);
        for &id in &ids {
            assert_eq!(sets.find(id), root);
            assert_eq!(sets.find_immutable(id), root);
            if id != root {
                assert_eq!(sets.words[id as usize], root);
            }
        }
    }

    #[test]
    fn detach_leaf_into_singleton() {
        let mut sets = PackedForest::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let out = sets.union(a, b);
        let leaf = out.absorbed.unwrap();
        sets.detach_into_singleton(leaf);
        assert!(!sets.same_set(a, b));
        assert_eq!(sets.set_count(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "still point at it")]
    fn detach_root_with_children_panics_in_debug() {
        let mut sets = PackedForest::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let out = sets.union(a, b);
        sets.detach_into_singleton(out.root);
    }

    #[test]
    fn reset_all_restores_singletons() {
        let mut sets = PackedForest::new();
        for _ in 0..8 {
            sets.make_set();
        }
        sets.union(0, 1);
        sets.union(2, 3);
        sets.union(0, 2);
        sets.reset_all();
        assert_eq!(sets.set_count(), 8);
        assert_eq!(sets.max_rank(), 0);
        for i in 0..8 {
            assert_eq!(sets.find(i), i);
        }
    }

    #[test]
    fn roots_and_partitions_enumerate_representatives() {
        let mut sets = PackedForest::new();
        let a = sets.make_set();
        let b = sets.make_set();
        let c = sets.make_set();
        sets.union(a, b);
        let roots: Vec<_> = sets.roots().collect();
        assert_eq!(roots.len(), 2);
        assert!(roots.contains(&c));
        let parts = sets.partitions();
        assert_eq!(parts.len(), 2);
        let sizes: Vec<usize> = parts.iter().map(|(_, m)| m.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn rank_bound_is_logarithmic() {
        let mut sets = PackedForest::new();
        let ids: Vec<_> = (0..1024).map(|_| sets.make_set()).collect();
        let mut layer = ids;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(sets.union(pair[0], pair[1]).root);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        assert_eq!(sets.set_count(), 1);
        assert!(sets.max_rank() <= 10, "rank {} too high", sets.max_rank());
    }

    mod properties {
        use super::*;
        use cg_testutil::TestRng;

        /// Random `(a, b)` pairs over `n` elements.
        fn random_ops(rng: &mut TestRng, n: usize, max_ops: usize) -> Vec<(u32, u32)> {
            let ops = rng.gen_range(0, max_ops);
            (0..ops)
                .map(|_| (rng.gen_range(0, n) as u32, rng.gen_range(0, n) as u32))
                .collect()
        }

        /// The packed forest is operation-for-operation identical to the
        /// plain `DisjointSets` under random union/find sequences: same
        /// outcomes, same set counts, same partitions, same max rank.
        #[test]
        fn matches_plain_forest_model() {
            for seed in 0..128u64 {
                let mut rng = TestRng::new(seed);
                let n = rng.gen_range(1, 96);
                let mut packed = PackedForest::new();
                let mut plain = DisjointSets::new();
                for _ in 0..n {
                    packed.make_set();
                    plain.make_set();
                }
                for (a, b) in random_ops(&mut rng, n, 300) {
                    // Interleave finds so path compression diverges if the
                    // representations disagree on roots.
                    assert_eq!(packed.find(a), plain.find(a), "seed {seed}");
                    let po = packed.union(a, b);
                    let fo = plain.union(a, b);
                    assert_eq!(po, fo, "seed {seed}: union({a}, {b})");
                    assert_eq!(packed.set_count(), plain.set_count(), "seed {seed}");
                }
                assert_eq!(packed.max_rank(), plain.max_rank(), "seed {seed}");
                let mut plain_clone = plain.clone();
                assert_eq!(packed.partitions(), plain_clone.partitions(), "seed {seed}");
                for id in 0..n as u32 {
                    assert_eq!(
                        packed.find_immutable(id),
                        plain.find_immutable(id),
                        "seed {seed}"
                    );
                }
            }
        }

        /// Detaching absorbed leaves keeps the two representations in
        /// agreement (both grow their set count the same way).
        #[test]
        fn detach_agrees_with_plain_forest() {
            for seed in 0..64u64 {
                let mut rng = TestRng::new(seed);
                let n = rng.gen_range(2, 48);
                let mut packed = PackedForest::new();
                let mut plain = DisjointSets::new();
                // Set sizes, tracked so the test only detaches absorbed
                // roots that were singletons (roots of larger sets still
                // have children pointing at them and must not be detached).
                let mut sizes = vec![1usize; n];
                for _ in 0..n {
                    packed.make_set();
                    plain.make_set();
                }
                for (a, b) in random_ops(&mut rng, n, 100) {
                    let out = packed.union(a, b);
                    plain.union(a, b);
                    if let Some(leaf) = out.absorbed {
                        let leaf_size = sizes[leaf as usize];
                        sizes[out.root as usize] += leaf_size;
                        if leaf_size == 1 && rng.gen_bool(0.3) {
                            packed.detach_into_singleton(leaf);
                            plain.detach_into_singleton(leaf);
                            sizes[out.root as usize] -= 1;
                            sizes[leaf as usize] = 1;
                        }
                    }
                    assert_eq!(packed.set_count(), plain.set_count(), "seed {seed}");
                }
                for a in 0..n as u32 {
                    for b in 0..n as u32 {
                        assert_eq!(
                            packed.find_immutable(a) == packed.find_immutable(b),
                            plain.find_immutable(a) == plain.find_immutable(b),
                            "seed {seed}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}
