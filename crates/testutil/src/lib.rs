//! Dependency-free deterministic pseudo-randomness for tests.
//!
//! The container this workspace builds in has no network access, so the
//! property-style tests cannot use `proptest`/`rand`.  [`TestRng`] is a small
//! splitmix64 generator that gives those tests reproducible randomness: every
//! test iterates over a fixed range of seeds, so a failure report ("seed 17")
//! is enough to replay the exact case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic splitmix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use cg_testutil::TestRng;
///
/// let mut rng = TestRng::new(42);
/// let a = rng.gen_range(0, 10);
/// assert!(a < 10);
/// let again = TestRng::new(42).gen_range(0, 10);
/// assert_eq!(a, again);
/// ```
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed; equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        Self {
            // Avoid the all-zero fixed point without changing distinct seeds.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed `usize` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range needs a non-empty range, got {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// A float in `[0.0, 1.0)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick needs a non-empty slice");
        &items[self.gen_range(0, items.len())]
    }

    /// An index into `weights`, chosen with probability proportional to the
    /// weight at that index.  Zero-weight entries are never chosen.  This is
    /// the distribution primitive behind the fuzzer's instruction-mix
    /// profiles.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "weighted needs a positive total weight");
        let mut roll = self.next_u64() % total;
        for (index, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return index;
            }
            roll -= w;
        }
        unreachable!("roll is bounded by the total weight")
    }

    /// Derives an independent generator for sub-stream `index`: the same
    /// (seed, index) pair always yields the same child, and distinct indices
    /// yield uncorrelated streams.  The fuzzer uses this to give every
    /// iteration of a run its own reproducible seed.
    pub fn derive(&self, index: u64) -> TestRng {
        let mut mix = TestRng::new(self.state ^ index.rotate_left(32));
        // Burn one output so child 0 does not mirror the parent.
        let _ = mix.next_u64();
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = TestRng::new(7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = TestRng::new(7);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = TestRng::new(8);
                move |_| r.next_u64()
            })
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3, 9);
            assert!((3..9).contains(&v));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = TestRng::new(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn pick_returns_elements_uniformly_enough() {
        let mut rng = TestRng::new(5);
        let items = [1, 2, 3];
        let mut seen = [0u32; 3];
        for _ in 0..3000 {
            seen[*rng.pick(&items) as usize - 1] += 1;
        }
        assert!(seen.iter().all(|&n| n > 700), "{seen:?}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = TestRng::new(6);
        let mut seen = [0u32; 3];
        for _ in 0..10_000 {
            seen[rng.weighted(&[1, 0, 3])] += 1;
        }
        assert_eq!(seen[1], 0, "zero-weight entries are never chosen");
        assert!(seen[2] > 2 * seen[0], "{seen:?}");
        assert!(seen[0] > 1_500, "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn weighted_rejects_zero_total() {
        let _ = TestRng::new(0).weighted(&[0, 0]);
    }

    #[test]
    fn derive_yields_reproducible_uncorrelated_children() {
        let parent = TestRng::new(9);
        let a: Vec<u64> = {
            let mut c = parent.derive(0);
            (0..4).map(|_| c.next_u64()).collect()
        };
        let a_again: Vec<u64> = {
            let mut c = parent.derive(0);
            (0..4).map(|_| c.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut c = parent.derive(1);
            (0..4).map(|_| c.next_u64()).collect()
        };
        assert_eq!(a, a_again);
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = TestRng::new(3);
        let mut items: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        assert_ne!(items, sorted, "a 32-element shuffle should move something");
    }
}
