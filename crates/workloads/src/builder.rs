//! Program construction helpers: a code builder with structured loops and a
//! program builder with forward method declarations.

use cg_vm::{
    ClassDef, ClassId, Cond, Insn, LocalIdx, MethodDef, MethodId, Operand, Program, StaticId,
};

/// Builds a method body, providing structured counted loops so workload
/// generators never have to compute jump offsets by hand.
///
/// # Example
///
/// ```
/// use cg_workloads::CodeBuilder;
/// use cg_vm::{Insn, Operand, ClassId};
///
/// let mut code = CodeBuilder::new();
/// code.counted_loop(1, Operand::Imm(10), |body| {
///     body.push(Insn::New { class: ClassId::new(0), dst: 0 });
/// });
/// code.return_none();
/// let insns = code.into_code();
/// assert!(insns.len() > 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CodeBuilder {
    code: Vec<Insn>,
}

impl CodeBuilder {
    /// Creates an empty body.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one instruction.
    pub fn push(&mut self, insn: Insn) -> &mut Self {
        self.code.push(insn);
        self
    }

    /// Appends several instructions.
    pub fn extend(&mut self, insns: impl IntoIterator<Item = Insn>) -> &mut Self {
        self.code.extend(insns);
        self
    }

    /// The index the next instruction will occupy.
    pub fn pc(&self) -> usize {
        self.code.len()
    }

    /// Emits `counter = 0; while counter < count { body; counter += 1 }`.
    ///
    /// The `counter` local is clobbered.  Loops nest freely because the body
    /// is emitted into the same builder.
    pub fn counted_loop(
        &mut self,
        counter: LocalIdx,
        count: Operand,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.push(Insn::Const {
            dst: counter,
            value: 0,
        });
        let check_pc = self.pc();
        // Placeholder target; patched once the body length is known.
        self.push(Insn::Branch {
            cond: Cond::Ge,
            a: Operand::Local(counter),
            b: count,
            target: usize::MAX,
        });
        body(self);
        self.push(Insn::Arith {
            op: cg_vm::ArithOp::Add,
            dst: counter,
            a: Operand::Local(counter),
            b: Operand::Imm(1),
        });
        self.push(Insn::Jump { target: check_pc });
        let end_pc = self.pc();
        match &mut self.code[check_pc] {
            Insn::Branch { target, .. } => *target = end_pc,
            _ => unreachable!("check_pc indexes the loop branch"),
        }
        self
    }

    /// Emits a busy arithmetic loop of `iterations` iterations, using
    /// `counter` and `scratch` as scratch locals.  Models the computational
    /// kernels of compress/mpegaudio without allocating.
    pub fn compute(&mut self, counter: LocalIdx, scratch: LocalIdx, iterations: u32) -> &mut Self {
        if iterations == 0 {
            return self;
        }
        self.push(Insn::Const {
            dst: scratch,
            value: 0x9E37,
        });
        self.counted_loop(counter, Operand::Imm(iterations as i64), |body| {
            body.push(Insn::Arith {
                op: cg_vm::ArithOp::Mul,
                dst: scratch,
                a: Operand::Local(scratch),
                b: Operand::Imm(31),
            });
            body.push(Insn::Arith {
                op: cg_vm::ArithOp::Xor,
                dst: scratch,
                a: Operand::Local(scratch),
                b: Operand::Imm(0x5DEECE),
            });
        });
        self
    }

    /// Appends `return;`.
    pub fn return_none(&mut self) -> &mut Self {
        self.push(Insn::Return { value: None })
    }

    /// Appends `return local;`.
    pub fn return_value(&mut self, local: LocalIdx) -> &mut Self {
        self.push(Insn::Return { value: Some(local) })
    }

    /// Finishes the body.
    pub fn into_code(self) -> Vec<Insn> {
        self.code
    }
}

/// Builds a [`Program`], allowing methods to be declared before they are
/// defined so mutually recursive call graphs are easy to construct.
///
/// # Example
///
/// ```
/// use cg_workloads::{ProgramBuilder, CodeBuilder};
/// use cg_vm::Insn;
///
/// let mut pb = ProgramBuilder::new("example");
/// let class = pb.class("Node", 2);
/// let helper = pb.declare("helper", 0);
/// pb.define(helper, 1, vec![Insn::New { class, dst: 0 }, Insn::Return { value: None }]);
/// let main = pb.method("main", 0, 1, vec![
///     Insn::Call { method: helper, args: vec![], dst: None },
///     Insn::Return { value: None },
/// ]);
/// pb.set_entry(main);
/// let program = pb.build();
/// assert!(program.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    classes: Vec<ClassDef>,
    methods: Vec<Option<MethodDef>>,
    method_names: Vec<String>,
    method_args: Vec<usize>,
    static_count: usize,
    entry: Option<MethodId>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a named program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            classes: Vec::new(),
            methods: Vec::new(),
            method_names: Vec::new(),
            method_args: Vec::new(),
            static_count: 0,
            entry: None,
        }
    }

    /// Adds a class.
    pub fn class(&mut self, name: &str, field_count: usize) -> ClassId {
        let id = ClassId::new(self.classes.len() as u32);
        self.classes.push(ClassDef::new(name, field_count));
        id
    }

    /// Reserves a static variable slot.
    pub fn static_slot(&mut self) -> StaticId {
        let id = StaticId::new(self.static_count as u32);
        self.static_count += 1;
        id
    }

    /// Declares a method (name and arity) without a body yet.
    pub fn declare(&mut self, name: &str, arg_count: usize) -> MethodId {
        let id = MethodId::new(self.methods.len() as u32);
        self.methods.push(None);
        self.method_names.push(name.to_string());
        self.method_args.push(arg_count);
        id
    }

    /// Defines the body of a previously declared method.
    ///
    /// # Panics
    ///
    /// Panics if the method was already defined or never declared.
    pub fn define(&mut self, id: MethodId, max_locals: usize, code: Vec<Insn>) {
        let slot = self
            .methods
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("method {id} was never declared"));
        assert!(slot.is_none(), "method {id} is already defined");
        *slot = Some(MethodDef::new(
            self.method_names[id.index()].clone(),
            self.method_args[id.index()],
            max_locals,
            code,
        ));
    }

    /// Declares and defines a method in one step.
    pub fn method(
        &mut self,
        name: &str,
        arg_count: usize,
        max_locals: usize,
        code: Vec<Insn>,
    ) -> MethodId {
        let id = self.declare(name, arg_count);
        self.define(id, max_locals, code);
        id
    }

    /// Sets the entry method.
    pub fn set_entry(&mut self, id: MethodId) {
        self.entry = Some(id);
    }

    /// Builds the program.
    ///
    /// # Panics
    ///
    /// Panics if a declared method was never defined or no entry was set.
    pub fn build(self) -> Program {
        let mut program = Program::named(self.name);
        for class in self.classes {
            program.add_class(class);
        }
        for _ in 0..self.static_count {
            program.add_static();
        }
        for (index, method) in self.methods.into_iter().enumerate() {
            let name = &self.method_names[index];
            program.add_method(
                method.unwrap_or_else(|| panic!("method '{name}' was declared but never defined")),
            );
        }
        program.set_entry(self.entry.expect("an entry method must be set"));
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_vm::{NoopCollector, Vm, VmConfig};

    #[test]
    fn counted_loop_executes_body_n_times() {
        let mut pb = ProgramBuilder::new("loop-test");
        let class = pb.class("Obj", 0);
        let mut code = CodeBuilder::new();
        code.counted_loop(1, Operand::Imm(7), |body| {
            body.push(Insn::New { class, dst: 0 });
        });
        code.return_none();
        let main = pb.method("main", 0, 2, code.into_code());
        pb.set_entry(main);
        let program = pb.build();
        assert!(program.validate().is_ok());
        let mut vm = Vm::new(program, VmConfig::small(), NoopCollector::new());
        let outcome = vm.run().unwrap();
        assert_eq!(outcome.stats.objects_allocated, 7);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut pb = ProgramBuilder::new("nested");
        let class = pb.class("Obj", 0);
        let mut code = CodeBuilder::new();
        code.counted_loop(1, Operand::Imm(3), |outer| {
            outer.counted_loop(2, Operand::Imm(4), |inner| {
                inner.push(Insn::New { class, dst: 0 });
            });
        });
        code.return_none();
        let main = pb.method("main", 0, 3, code.into_code());
        pb.set_entry(main);
        let mut vm = Vm::new(pb.build(), VmConfig::small(), NoopCollector::new());
        let outcome = vm.run().unwrap();
        assert_eq!(outcome.stats.objects_allocated, 12);
    }

    #[test]
    fn zero_iteration_loop_skips_body() {
        let mut pb = ProgramBuilder::new("zero");
        let class = pb.class("Obj", 0);
        let mut code = CodeBuilder::new();
        code.counted_loop(1, Operand::Imm(0), |body| {
            body.push(Insn::New { class, dst: 0 });
        });
        code.return_none();
        let main = pb.method("main", 0, 2, code.into_code());
        pb.set_entry(main);
        let mut vm = Vm::new(pb.build(), VmConfig::small(), NoopCollector::new());
        assert_eq!(vm.run().unwrap().stats.objects_allocated, 0);
    }

    #[test]
    fn compute_emits_arithmetic_without_allocation() {
        let mut pb = ProgramBuilder::new("compute");
        let mut code = CodeBuilder::new();
        code.compute(0, 1, 50);
        code.compute(0, 1, 0);
        code.return_none();
        let main = pb.method("main", 0, 2, code.into_code());
        pb.set_entry(main);
        let mut vm = Vm::new(pb.build(), VmConfig::small(), NoopCollector::new());
        let outcome = vm.run().unwrap();
        assert_eq!(outcome.stats.objects_allocated, 0);
        assert!(outcome.stats.instructions > 100);
    }

    #[test]
    fn forward_declared_methods_support_mutual_calls() {
        let mut pb = ProgramBuilder::new("mutual");
        let ping = pb.declare("ping", 1);
        let pong = pb.declare("pong", 1);
        // ping(n): if n <= 0 return; pong(n-1)
        let mut code = CodeBuilder::new();
        code.push(Insn::Branch {
            cond: Cond::Le,
            a: Operand::Local(0),
            b: Operand::Imm(0),
            target: 3,
        });
        code.push(Insn::Arith {
            op: cg_vm::ArithOp::Sub,
            dst: 0,
            a: Operand::Local(0),
            b: Operand::Imm(1),
        });
        code.push(Insn::Call {
            method: pong,
            args: vec![0],
            dst: None,
        });
        code.return_none();
        pb.define(ping, 1, code.into_code());
        let mut code = CodeBuilder::new();
        code.push(Insn::Branch {
            cond: Cond::Le,
            a: Operand::Local(0),
            b: Operand::Imm(0),
            target: 3,
        });
        code.push(Insn::Arith {
            op: cg_vm::ArithOp::Sub,
            dst: 0,
            a: Operand::Local(0),
            b: Operand::Imm(1),
        });
        code.push(Insn::Call {
            method: ping,
            args: vec![0],
            dst: None,
        });
        code.return_none();
        pb.define(pong, 1, code.into_code());
        let main = pb.method(
            "main",
            0,
            1,
            vec![
                Insn::Const { dst: 0, value: 9 },
                Insn::Call {
                    method: ping,
                    args: vec![0],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        );
        pb.set_entry(main);
        let program = pb.build();
        assert!(program.validate().is_ok());
        let mut vm = Vm::new(program, VmConfig::small(), NoopCollector::new());
        let outcome = vm.run().unwrap();
        assert_eq!(outcome.stats.method_calls, 11);
    }

    #[test]
    #[should_panic(expected = "never defined")]
    fn undefined_method_panics_at_build() {
        let mut pb = ProgramBuilder::new("bad");
        let m = pb.declare("ghost", 0);
        let main = pb.method(
            "main",
            0,
            1,
            vec![
                Insn::Call {
                    method: m,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        );
        pb.set_entry(main);
        let _ = pb.build();
    }

    #[test]
    #[should_panic(expected = "already defined")]
    fn double_definition_panics() {
        let mut pb = ProgramBuilder::new("bad");
        let m = pb.declare("m", 0);
        pb.define(m, 1, vec![Insn::Return { value: None }]);
        pb.define(m, 1, vec![Insn::Return { value: None }]);
    }
}
