//! Demographic profiles and the program synthesiser.
//!
//! The paper evaluates the contaminated collector on SPECjvm98.  Those
//! benchmarks are proprietary Java programs, so this reproduction replaces
//! each one with a *synthetic* program whose **object demographics** — how
//! many objects are allocated, how long they live, whether they escape their
//! allocating frame, whether they touch static data, whether several threads
//! share them, and how much non-allocating computation surrounds them — are
//! modelled on the behaviour the paper reports for that benchmark.  The
//! contaminated collector only reacts to those demographic events, so a
//! faithful demographic reproduces the collector's behaviour even though the
//! program logic is different.
//!
//! A [`Profile`] captures the demographic knobs; [`synthesize`] turns a
//! profile into a runnable [`Program`] for the `cg-vm` interpreter.

use cg_vm::{Insn, MethodId, Operand, Program};

use crate::builder::{CodeBuilder, ProgramBuilder};

/// The demographic description of one synthetic workload.
///
/// Per *iteration* the generated program allocates
/// `leaf_temps + chained_temps + static_touching_temps + returned_temps +
/// leaked_per_iteration` objects; on top of that the program allocates
/// `static_setup` long-lived objects at startup, `interned` interned objects,
/// and `shared_objects` objects that are handed to a second thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Benchmark name (matches the SPECjvm98 benchmark it models).
    pub name: String,
    /// One-line description of what is being modelled.
    pub description: String,
    /// Long-lived objects built at startup and reachable from static
    /// variables for the whole run (dictionaries, scene graphs, rule bases).
    pub static_setup: u32,
    /// Objects registered with the interpreter's intern table (§3.2); capped
    /// at 64 by the synthesiser.
    pub interned: u32,
    /// Outer work-loop iterations (this is what the SPEC problem sizes 1, 10
    /// and 100 scale).
    pub iterations: u64,
    /// Per iteration: temporaries that never escape the leaf method — they
    /// die in their birth frame as singleton (exactly collectable) blocks.
    pub leaf_temps: u32,
    /// Per iteration: temporaries linked into a chain before dying — they
    /// die as one multi-object equilive block.
    pub chained_temps: u32,
    /// Per iteration: temporaries that store a reference to a static object.
    /// With the §3.4 optimisation they stay collectable; without it they are
    /// dragged into the static set (the "no opt" column of Figure 4.1).
    pub static_touching_temps: u32,
    /// Per iteration: temporaries returned up `escape_depth` frames before
    /// being dropped (they age `escape_depth` frames before dying,
    /// Figure 4.6).
    pub returned_temps: u32,
    /// How many frames the returned temporaries climb before dying.
    pub escape_depth: u32,
    /// Per iteration: objects linked into a static list — they live until
    /// the program ends.
    pub leaked_per_iteration: u32,
    /// Per iteration: non-allocating arithmetic loop iterations (models
    /// computation-bound benchmarks such as compress and mpegaudio).
    pub compute_per_iteration: u32,
    /// Objects allocated by the main thread and then traversed by a helper
    /// thread; the contaminated collector must treat them as static (§3.3).
    pub shared_objects: u32,
    /// Worker threads that each run an equal share of the iterations (models
    /// mtrt's rendering threads).
    pub worker_threads: u32,
}

impl Profile {
    /// A rough prediction of the number of objects the synthesised program
    /// allocates (used by tests to sanity-check the generator, not by the
    /// experiments, which count real allocations).
    pub fn expected_objects(&self) -> u64 {
        let per_iteration = (self.leaf_temps
            + self.chained_temps
            + self.static_touching_temps
            + self.returned_temps
            + self.leaked_per_iteration) as u64;
        let mut total = self.static_setup as u64
            + 1 // the static table array
            + self.interned.min(64) as u64
            + self.iterations * per_iteration;
        if self.shared_objects > 0 {
            total += self.shared_objects as u64 + 1; // the shared array
        }
        total
    }

    /// The fraction of allocated objects the contaminated collector should
    /// be able to collect with the §3.4 optimisation enabled (a rough
    /// prediction used in tests).
    pub fn expected_collectable_fraction(&self) -> f64 {
        let collectable = (self.leaf_temps
            + self.chained_temps
            + self.static_touching_temps
            + self.returned_temps) as u64
            * self.iterations;
        collectable as f64 / self.expected_objects() as f64
    }
}

/// Locals used by the generated methods (all methods fit in this many).
const LOCALS: usize = 10;

/// Generates a runnable program from a demographic profile.
///
/// The generated program has the following shape (methods elided when their
/// knob is zero):
///
/// ```text
/// main:
///   setup()                      // static_setup chain + table + interned
///   share_batch()                // shared_objects handed to a loader thread
///   spawn worker(n/threads) ...  // worker_threads
///   driver(remaining iterations)
/// driver(n): n times iteration()
/// iteration(): leaf_work(); escape_1(); leak
/// leaf_work(): leaf/chained/static-touching temps + compute loop
/// escape_k(): escape_{k+1}() … escape_depth allocates and returns a chain
/// ```
pub fn synthesize(profile: &Profile) -> Program {
    let mut pb = ProgramBuilder::new(profile.name.clone());
    let node = pb.class("Node", 2);
    let table_class = pb.class("NodeTable", 0);
    let s_head = pb.static_slot(); // head of the static setup chain
    let s_table = pb.static_slot(); // array of setup nodes
    let s_leak = pb.static_slot(); // head of the leak list

    // ------------------------------------------------------------------
    // setup()
    // ------------------------------------------------------------------
    let setup = pb.declare("setup", 0);
    {
        let table_len = (profile.static_setup / 4).clamp(1, 512) as i64;
        let chain_len = profile.static_setup as i64;
        let mut code = CodeBuilder::new();
        // Static chain: locals 0=node, 1=prev, 2=counter.
        code.push(Insn::LoadNull { dst: 1 });
        code.counted_loop(2, Operand::Imm(chain_len), |body| {
            body.push(Insn::New {
                class: node,
                dst: 0,
            });
            body.push(Insn::PutField {
                object: 0,
                field: 0,
                value: 1,
            });
            body.push(Insn::Move { dst: 1, src: 0 });
        });
        code.push(Insn::PutStatic {
            static_id: s_head,
            value: 1,
        });
        // Static table: an array whose elements come from the chain head so
        // worker threads have something indexed to read.
        code.push(Insn::NewArray {
            class: table_class,
            length: Operand::Imm(table_len),
            dst: 3,
        });
        code.counted_loop(2, Operand::Imm(table_len), |body| {
            body.push(Insn::ArrayStore {
                array: 3,
                index: Operand::Local(2),
                value: 1,
            });
        });
        code.push(Insn::PutStatic {
            static_id: s_table,
            value: 3,
        });
        // Interned objects (distinct keys, straight-line).
        for key in 0..profile.interned.min(64) {
            code.push(Insn::New {
                class: node,
                dst: 0,
            });
            code.push(Insn::Intern {
                key,
                src: 0,
                dst: 0,
            });
        }
        code.return_none();
        pb.define(setup, LOCALS, code.into_code());
    }

    // ------------------------------------------------------------------
    // leaf_work()
    // ------------------------------------------------------------------
    let leaf_work = pb.declare("leaf_work", 0);
    {
        let mut code = CodeBuilder::new();
        // Singleton temporaries: locals 0=node, 5=counter.
        if profile.leaf_temps > 0 {
            code.counted_loop(5, Operand::Imm(profile.leaf_temps as i64), |body| {
                body.push(Insn::New {
                    class: node,
                    dst: 0,
                });
            });
        }
        // Chained temporaries: locals 0=node, 1=prev.
        if profile.chained_temps > 0 {
            code.push(Insn::LoadNull { dst: 1 });
            code.counted_loop(5, Operand::Imm(profile.chained_temps as i64), |body| {
                body.push(Insn::New {
                    class: node,
                    dst: 0,
                });
                body.push(Insn::PutField {
                    object: 0,
                    field: 0,
                    value: 1,
                });
                body.push(Insn::Move { dst: 1, src: 0 });
            });
        }
        // Static-touching temporaries: a chain of temporaries each of which
        // also stores a reference to the static chain head (the §3.4
        // scenario: containers of references into long-lived data).  With
        // the optimisation the chain stays collectable; without it the first
        // static reference drags the whole chain into the static set.
        if profile.static_touching_temps > 0 {
            code.push(Insn::GetStatic {
                static_id: s_head,
                dst: 2,
            });
            code.push(Insn::LoadNull { dst: 3 });
            code.counted_loop(
                5,
                Operand::Imm(profile.static_touching_temps as i64),
                |body| {
                    body.push(Insn::New {
                        class: node,
                        dst: 0,
                    });
                    body.push(Insn::PutField {
                        object: 0,
                        field: 1,
                        value: 2,
                    });
                    body.push(Insn::PutField {
                        object: 0,
                        field: 0,
                        value: 3,
                    });
                    body.push(Insn::Move { dst: 3, src: 0 });
                },
            );
        }
        code.compute(5, 6, profile.compute_per_iteration);
        code.return_none();
        pb.define(leaf_work, LOCALS, code.into_code());
    }

    // ------------------------------------------------------------------
    // escape_1 .. escape_depth
    // ------------------------------------------------------------------
    let escape_entry: Option<MethodId> = if profile.returned_temps > 0 && profile.escape_depth > 0 {
        let depth = profile.escape_depth.max(1) as usize;
        let ids: Vec<MethodId> = (0..depth)
            .map(|level| pb.declare(&format!("escape_{}", level + 1), 0))
            .collect();
        for level in 0..depth {
            let mut code = CodeBuilder::new();
            if level + 1 == depth {
                // Deepest level: allocate the escaping chain and return it.
                code.push(Insn::LoadNull { dst: 1 });
                code.counted_loop(5, Operand::Imm(profile.returned_temps as i64), |body| {
                    body.push(Insn::New {
                        class: node,
                        dst: 0,
                    });
                    body.push(Insn::PutField {
                        object: 0,
                        field: 0,
                        value: 1,
                    });
                    body.push(Insn::Move { dst: 1, src: 0 });
                });
                code.return_value(1);
            } else {
                code.push(Insn::Call {
                    method: ids[level + 1],
                    args: vec![],
                    dst: Some(0),
                });
                code.return_value(0);
            }
            pb.define(ids[level], LOCALS, code.into_code());
        }
        Some(ids[0])
    } else {
        None
    };

    // ------------------------------------------------------------------
    // iteration()
    // ------------------------------------------------------------------
    let iteration = pb.declare("iteration", 0);
    {
        let mut code = CodeBuilder::new();
        code.push(Insn::Call {
            method: leaf_work,
            args: vec![],
            dst: None,
        });
        if let Some(escape) = escape_entry {
            code.push(Insn::Call {
                method: escape,
                args: vec![],
                dst: Some(0),
            });
            code.push(Insn::LoadNull { dst: 0 });
        }
        if profile.leaked_per_iteration > 0 {
            code.counted_loop(
                5,
                Operand::Imm(profile.leaked_per_iteration as i64),
                |body| {
                    body.push(Insn::New {
                        class: node,
                        dst: 0,
                    });
                    body.push(Insn::GetStatic {
                        static_id: s_leak,
                        dst: 1,
                    });
                    body.push(Insn::PutField {
                        object: 0,
                        field: 0,
                        value: 1,
                    });
                    body.push(Insn::PutStatic {
                        static_id: s_leak,
                        value: 0,
                    });
                },
            );
        }
        code.return_none();
        pb.define(iteration, LOCALS, code.into_code());
    }

    // ------------------------------------------------------------------
    // driver(n)
    // ------------------------------------------------------------------
    let driver = pb.declare("driver", 1);
    {
        let mut code = CodeBuilder::new();
        code.counted_loop(5, Operand::Local(0), |body| {
            body.push(Insn::Call {
                method: iteration,
                args: vec![],
                dst: None,
            });
        });
        code.return_none();
        pb.define(driver, LOCALS, code.into_code());
    }

    // ------------------------------------------------------------------
    // shared batch + loader thread (thread-shared objects, §3.3)
    // ------------------------------------------------------------------
    let share_batch: Option<MethodId> = if profile.shared_objects > 0 {
        let loader = pb.declare("loader", 1);
        {
            // loader(array): touch every element.
            let mut code = CodeBuilder::new();
            code.counted_loop(2, Operand::Imm(profile.shared_objects as i64), |body| {
                body.push(Insn::ArrayLoad {
                    array: 0,
                    index: Operand::Local(2),
                    dst: 1,
                });
                body.push(Insn::GetField {
                    object: 1,
                    field: 0,
                    dst: 3,
                });
            });
            code.return_none();
            pb.define(loader, LOCALS, code.into_code());
        }
        let share = pb.declare("share_batch", 0);
        {
            let mut code = CodeBuilder::new();
            code.push(Insn::NewArray {
                class: table_class,
                length: Operand::Imm(profile.shared_objects as i64),
                dst: 0,
            });
            code.counted_loop(2, Operand::Imm(profile.shared_objects as i64), |body| {
                body.push(Insn::New {
                    class: node,
                    dst: 1,
                });
                body.push(Insn::ArrayStore {
                    array: 0,
                    index: Operand::Local(2),
                    value: 1,
                });
            });
            code.push(Insn::SpawnThread {
                method: loader,
                args: vec![0],
            });
            code.return_none();
            pb.define(share, LOCALS, code.into_code());
        }
        Some(share)
    } else {
        None
    };

    // ------------------------------------------------------------------
    // worker(n) threads
    // ------------------------------------------------------------------
    let worker: Option<MethodId> = if profile.worker_threads > 0 {
        let worker = pb.declare("worker", 1);
        let mut code = CodeBuilder::new();
        // Read a few scene objects from the static table, then do our share
        // of the work.
        code.push(Insn::GetStatic {
            static_id: s_table,
            dst: 1,
        });
        code.push(Insn::ArrayLoad {
            array: 1,
            index: Operand::Imm(0),
            dst: 2,
        });
        code.push(Insn::Call {
            method: driver,
            args: vec![0],
            dst: None,
        });
        code.return_none();
        pb.define(worker, LOCALS, code.into_code());
        Some(worker)
    } else {
        None
    };

    // ------------------------------------------------------------------
    // main()
    // ------------------------------------------------------------------
    {
        let mut code = CodeBuilder::new();
        code.push(Insn::Call {
            method: setup,
            args: vec![],
            dst: None,
        });
        if let Some(share) = share_batch {
            code.push(Insn::Call {
                method: share,
                args: vec![],
                dst: None,
            });
        }
        let mut main_iterations = profile.iterations;
        if let Some(worker) = worker {
            let threads = profile.worker_threads as u64;
            let per_thread = profile.iterations / (threads + 1);
            for _ in 0..threads {
                code.push(Insn::Const {
                    dst: 0,
                    value: per_thread as i64,
                });
                code.push(Insn::SpawnThread {
                    method: worker,
                    args: vec![0],
                });
            }
            main_iterations = profile.iterations - per_thread * threads;
        }
        code.push(Insn::Const {
            dst: 0,
            value: main_iterations as i64,
        });
        code.push(Insn::Call {
            method: driver,
            args: vec![0],
            dst: None,
        });
        code.return_none();
        let main = pb.method("main", 0, LOCALS, code.into_code());
        pb.set_entry(main);
    }

    let program = pb.build();
    debug_assert!(
        program.validate().is_ok(),
        "synthesised program must validate"
    );
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_core::ContaminatedGc;
    use cg_vm::{NoopCollector, Vm, VmConfig};

    fn tiny_profile() -> Profile {
        Profile {
            name: "tiny".to_string(),
            description: "test profile".to_string(),
            static_setup: 20,
            interned: 3,
            iterations: 10,
            leaf_temps: 2,
            chained_temps: 3,
            static_touching_temps: 1,
            returned_temps: 2,
            escape_depth: 2,
            leaked_per_iteration: 1,
            compute_per_iteration: 5,
            shared_objects: 0,
            worker_threads: 0,
        }
    }

    #[test]
    fn synthesized_program_validates_and_runs() {
        let profile = tiny_profile();
        let program = synthesize(&profile);
        assert!(program.validate().is_ok());
        let mut vm = Vm::new(program, VmConfig::small(), NoopCollector::new());
        let outcome = vm.run().expect("program runs");
        let allocated = outcome.stats.objects_allocated + outcome.stats.arrays_allocated;
        assert_eq!(allocated, profile.expected_objects());
    }

    #[test]
    fn collectable_fraction_matches_prediction_roughly() {
        let profile = tiny_profile();
        let program = synthesize(&profile);
        let mut vm = Vm::new(program, VmConfig::small(), ContaminatedGc::new());
        vm.run().expect("program runs");
        let stats = vm.collector().stats();
        let measured = stats.collectable_percent() / 100.0;
        let predicted = profile.expected_collectable_fraction();
        assert!(
            (measured - predicted).abs() < 0.15,
            "measured {measured:.2} vs predicted {predicted:.2}"
        );
        // Age histogram must show the escape depth.
        assert!(
            stats
                .age_at_death
                .bucket_count(profile.escape_depth as usize)
                > 0
        );
        // Chained temporaries produce multi-object blocks.
        assert!(stats.block_sizes.bucket_count(2) + stats.block_sizes.bucket_count(3) > 0);
    }

    #[test]
    fn shared_objects_become_thread_shared() {
        let mut profile = tiny_profile();
        profile.shared_objects = 15;
        let program = synthesize(&profile);
        let mut vm = Vm::new(program, VmConfig::small(), ContaminatedGc::new());
        vm.run().expect("program runs");
        let mut cg = vm.collector().clone();
        let breakdown = cg.breakdown();
        assert!(
            breakdown.thread_shared >= 15,
            "thread shared = {}",
            breakdown.thread_shared
        );
    }

    #[test]
    fn worker_threads_split_the_iterations() {
        let mut profile = tiny_profile();
        profile.worker_threads = 2;
        profile.iterations = 30;
        let program = synthesize(&profile);
        let mut vm = Vm::new(program, VmConfig::small(), ContaminatedGc::new());
        let outcome = vm.run().expect("program runs");
        assert_eq!(outcome.stats.threads_spawned, 2);
        // All iterations still happen (10 per worker + 10 on main).
        let allocated = outcome.stats.objects_allocated + outcome.stats.arrays_allocated;
        assert_eq!(allocated, profile.expected_objects());
    }

    #[test]
    fn leaked_objects_stay_live() {
        let mut profile = tiny_profile();
        profile.leaked_per_iteration = 2;
        profile.iterations = 20;
        let program = synthesize(&profile);
        let mut vm = Vm::new(program, VmConfig::small(), ContaminatedGc::new());
        vm.run().expect("program runs");
        // static chain + table + interned + leaked objects are still live.
        assert!(vm.heap().live_count() >= 20 + 1 + 3 + 40);
    }
}
