//! Synthetic SPECjvm98-like workloads for the contaminated-GC reproduction.
//!
//! The paper evaluates its collector on the eight SPECjvm98 benchmarks at
//! problem sizes 1, 10 and 100.  SPECjvm98 is proprietary Java code that
//! needs a real JVM, so this crate replaces each benchmark with a synthetic
//! program — built from a documented **demographic profile** — that
//! reproduces the allocation behaviour the collector reacts to: how many
//! objects are created, how long they live, whether they escape their frame,
//! whether they reference static data, whether threads share them, and how
//! much computation surrounds the allocation.  See
//! [`benchmarks`] for the per-benchmark modelling notes and
//! [`profile::synthesize`] for the generator.
//!
//! # Example
//!
//! ```
//! use cg_workloads::{Size, Workload};
//! use cg_core::ContaminatedGc;
//! use cg_vm::{Vm, VmConfig};
//!
//! let workload = Workload::by_name("db").unwrap();
//! let program = workload.program(Size::S1);
//! let mut vm = Vm::new(program, VmConfig::default(), ContaminatedGc::new());
//! vm.run()?;
//! let stats = vm.collector().stats();
//! assert!(stats.objects_created > 1_000);
//! // At size 1 most of db's objects are the long-lived records.
//! assert!(stats.collectable_percent() < 60.0);
//! # Ok::<(), cg_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod builder;
pub mod profile;

pub use builder::{CodeBuilder, ProgramBuilder};
pub use profile::{synthesize, Profile};

use cg_vm::Program;

/// SPEC problem size.
///
/// The paper runs every benchmark at sizes 1 ("small"), 10 ("medium") and
/// 100 ("large"); the collectable percentages improve markedly with size
/// because the dynamically allocated population grows while the static
/// setup does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Size {
    /// SPEC size 1 (small).
    S1,
    /// SPEC size 10 (medium).
    S10,
    /// SPEC size 100 (large).
    S100,
}

impl Size {
    /// All sizes, smallest first.
    pub const ALL: [Size; 3] = [Size::S1, Size::S10, Size::S100];

    /// The numeric SPEC size (1, 10 or 100).
    pub fn spec_number(self) -> u32 {
        match self {
            Size::S1 => 1,
            Size::S10 => 10,
            Size::S100 => 100,
        }
    }

    /// Parses `"1"`, `"10"` or `"100"`.
    pub fn parse(s: &str) -> Option<Size> {
        match s.trim() {
            "1" => Some(Size::S1),
            "10" => Some(Size::S10),
            "100" => Some(Size::S100),
            _ => None,
        }
    }
}

impl std::fmt::Display for Size {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.spec_number())
    }
}

/// A named synthetic benchmark.
///
/// `Workload` is a thin handle: it resolves the benchmark's demographic
/// profile for a problem size and synthesises the runnable program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    name: &'static str,
}

impl Workload {
    /// All eight workloads in the paper's order.
    pub fn all() -> Vec<Workload> {
        benchmarks::BENCHMARK_NAMES
            .iter()
            .map(|name| Workload { name })
            .collect()
    }

    /// Looks a workload up by its SPEC benchmark name.
    pub fn by_name(name: &str) -> Option<Workload> {
        benchmarks::BENCHMARK_NAMES
            .iter()
            .find(|&&n| n == name)
            .map(|name| Workload { name })
    }

    /// Parses a `name[/size]` spec (`"javac"`, `"javac/10"`) — the notation
    /// trace names, the `cgt` CLI and the golden corpus use.  The size
    /// defaults to 1.
    pub fn parse_spec(spec: &str) -> Option<(Workload, Size)> {
        let (name, size) = match spec.split_once('/') {
            Some((name, size)) => (name, Size::parse(size)?),
            None => (spec, Size::S1),
        };
        Self::by_name(name).map(|w| (w, size))
    }

    /// The benchmark name (`"compress"`, `"jess"`, ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The demographic profile at the given size.
    pub fn profile(&self, size: Size) -> Profile {
        benchmarks::profile_of(self.name, size)
    }

    /// Synthesises the runnable program at the given size.
    pub fn program(&self, size: Size) -> Program {
        synthesize(&self.profile(size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_parsing_and_display() {
        assert_eq!(Size::parse("1"), Some(Size::S1));
        assert_eq!(Size::parse(" 10 "), Some(Size::S10));
        assert_eq!(Size::parse("100"), Some(Size::S100));
        assert_eq!(Size::parse("42"), None);
        assert_eq!(Size::S10.to_string(), "10");
        assert_eq!(Size::ALL.len(), 3);
        assert!(Size::S1 < Size::S100);
    }

    #[test]
    fn workload_registry_is_complete() {
        let all = Workload::all();
        assert_eq!(all.len(), 8);
        assert!(Workload::by_name("raytrace").is_some());
        assert!(Workload::by_name("doom").is_none());
        for w in all {
            let program = w.program(Size::S1);
            assert!(program.validate().is_ok(), "{} must validate", w.name());
            assert_eq!(program.name(), w.name());
        }
    }

    #[test]
    fn specs_parse_name_and_size() {
        let (w, size) = Workload::parse_spec("javac/10").unwrap();
        assert_eq!(w.name(), "javac");
        assert_eq!(size, Size::S10);
        let (w, size) = Workload::parse_spec("db").unwrap();
        assert_eq!(w.name(), "db");
        assert_eq!(size, Size::S1);
        assert!(Workload::parse_spec("doom/1").is_none());
        assert!(Workload::parse_spec("javac/7").is_none());
    }

    #[test]
    fn profiles_are_consistent_with_programs() {
        let w = Workload::by_name("jess").unwrap();
        assert_eq!(w.profile(Size::S1).name, "jess");
        assert!(w.profile(Size::S10).iterations > w.profile(Size::S1).iterations);
    }
}
