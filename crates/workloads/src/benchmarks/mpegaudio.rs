//! `mpegaudio` — MPEG-3 audio decoding (SPECjvm98 _222_mpegaudio).
//!
//! Like `compress`, this benchmark is computation-bound: the paper reports
//! only 7 550 objects at size 1 (7 582 at size 100) of which just 6–7% are
//! collectable, with most of the heap taken up by long-lived filter-bank and
//! decoding tables.
//!
//! The model: static decoding tables, a handful of per-frame buffer
//! temporaries, and a heavy arithmetic kernel standing in for the subband
//! synthesis filter.

use crate::profile::Profile;
use crate::Size;

/// Demographic profile of `mpegaudio` at the given size.
pub fn profile(size: Size) -> Profile {
    let (iterations, compute) = match size {
        Size::S1 => (33, 15_000),
        Size::S10 => (40, 110_000),
        Size::S100 => (55, 280_000),
    };
    Profile {
        name: "mpegaudio".to_string(),
        description: "MPEG-3 decoder: static filter tables, per-frame buffers, compute-bound"
            .to_string(),
        static_setup: 1_750,
        interned: 4,
        iterations,
        leaf_temps: 2,
        chained_temps: 0,
        static_touching_temps: 1,
        returned_temps: 1,
        escape_depth: 1,
        leaked_per_iteration: 0,
        compute_per_iteration: compute,
        shared_objects: 0,
        worker_threads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn very_low_collectable_fraction() {
        let p = profile(Size::S1);
        let frac = p.expected_collectable_fraction();
        assert!((0.03..0.15).contains(&frac), "collectable fraction {frac}");
        // Object population is essentially flat across sizes.
        assert!(profile(Size::S100).expected_objects() < 2 * p.expected_objects());
    }
}
