//! `mtrt` — the multi-threaded ray tracer (SPECjvm98 _227_mtrt).
//!
//! The paper notes that `mtrt` is the same ray tracer as `raytrace` run with
//! two rendering threads, and that its results are nearly identical: 98%
//! collectable, with only a tiny fraction (about 1% of the static set) of
//! objects forced static by thread sharing, because the threads share the
//! scene but allocate their working temporaries privately.
//!
//! The model: the `raytrace` demographic plus two worker threads that split
//! the per-pixel iterations and read the shared static scene table.

use crate::profile::Profile;
use crate::Size;

/// Demographic profile of `mtrt` at the given size.
pub fn profile(size: Size) -> Profile {
    let mut p = super::raytrace::profile(size);
    p.name = "mtrt".to_string();
    p.description =
        "Multi-threaded ray tracer: raytrace demographic split across two rendering threads"
            .to_string();
    p.worker_threads = 2;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_raytrace_with_threads() {
        let mtrt = profile(Size::S1);
        let rt = super::super::raytrace::profile(Size::S1);
        assert_eq!(mtrt.worker_threads, 2);
        assert_eq!(mtrt.iterations, rt.iterations);
        assert_eq!(mtrt.expected_objects(), rt.expected_objects());
        assert!(mtrt.expected_collectable_fraction() > 0.95);
    }
}
