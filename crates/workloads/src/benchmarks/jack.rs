//! `jack` — a parser-generator (SPECjvm98 _228_jack, a PCCTS tool).
//!
//! The paper's characterisation: the largest object population of the suite
//! (393 742 at size 1), mostly token and node temporaries allocated while
//! repeatedly parsing its input.  89% are collectable with the §3.4
//! optimisation, 69% without it (tokens reference the static grammar), about
//! 30% of collectable objects are in singleton blocks, and almost everything
//! dies within one or two frames of its birth (Figure 4.6: 63 230 objects at
//! distance 0 and 263 574 at distance 1).
//!
//! The model: a static grammar built at setup, then per-token iterations
//! that allocate singleton lexer temporaries, chained parse-node temporaries,
//! grammar-referencing temporaries, and a token returned one frame up to the
//! parser loop.

use crate::profile::Profile;
use crate::Size;

/// Demographic profile of `jack` at the given size.
///
/// At the large size jack also *retains* a substantial structure: the paper's
/// Appendix A.4 reports its static population growing from ~44k objects at
/// size 1 to ~631k at size 100, which is what makes the traditional
/// collector's repeated marking expensive there (and CG's avoidance of it
/// pay off, Figure 4.10).  `leaked_per_iteration` models that growth.
pub fn profile(size: Size) -> Profile {
    let (iterations, leaked_per_iteration) = match size {
        Size::S1 => (5_100, 0),
        Size::S10 => (40_000, 1),
        Size::S100 => (110_000, 4),
    };
    Profile {
        name: "jack".to_string(),
        description:
            "Parser generator: static grammar, short-lived token and parse-node temporaries"
                .to_string(),
        static_setup: 11_000,
        interned: 24,
        iterations,
        leaf_temps: 5,
        chained_temps: 7,
        static_touching_temps: 4,
        returned_temps: 1,
        escape_depth: 1,
        leaked_per_iteration,
        compute_per_iteration: 15,
        shared_objects: 0,
        worker_threads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_collectable_share_with_opt_sensitivity() {
        let p = profile(Size::S1);
        let frac = p.expected_collectable_fraction();
        assert!((0.8..0.95).contains(&frac), "collectable fraction {frac}");
        // Singleton lexer temporaries give jack its ~30% exact share.
        let per_iter = p.leaf_temps + p.chained_temps + p.static_touching_temps + p.returned_temps;
        let exact_share = p.leaf_temps as f64 / per_iter as f64;
        assert!((0.2..0.4).contains(&exact_share));
        // Objects die at distance 0 or 1: shallow escape depth.
        assert!(p.escape_depth <= 1);
    }
}
