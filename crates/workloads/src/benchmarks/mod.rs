//! One module per SPECjvm98 benchmark modelled by this reproduction.
//!
//! Each module documents the demographic the paper reports for that
//! benchmark (collectable percentage with and without the §3.4 optimisation,
//! static and thread-shared shares, block sizes, ages at death) and defines a
//! [`Profile`] per problem size that reproduces it.
//!
//! The object counts are scaled down by a constant factor (roughly 4× for
//! size 1) relative to the paper so the whole suite runs in seconds rather
//! than hours; every experiment reports percentages and ratios, which are
//! preserved.  The `iterations` knob is what the SPEC sizes 1 → 10 → 100
//! scale, exactly as the real benchmarks' problem sizes do: the static setup
//! stays roughly constant while the dynamically allocated population grows,
//! which is why the paper's collectable percentages improve with size
//! (Figures 4.2–4.4 and 4.9).

pub mod compress;
pub mod db;
pub mod jack;
pub mod javac;
pub mod jess;
pub mod mpegaudio;
pub mod mtrt;
pub mod raytrace;

use crate::profile::Profile;
use crate::Size;

/// Names of the eight modelled benchmarks, in the order the paper lists them.
pub const BENCHMARK_NAMES: [&str; 8] = [
    "compress",
    "jess",
    "raytrace",
    "db",
    "javac",
    "mpegaudio",
    "mtrt",
    "jack",
];

/// Returns the profile of the named benchmark at the given size.
///
/// # Panics
///
/// Panics if `name` is not one of [`BENCHMARK_NAMES`].
pub fn profile_of(name: &str, size: Size) -> Profile {
    match name {
        "compress" => compress::profile(size),
        "jess" => jess::profile(size),
        "raytrace" => raytrace::profile(size),
        "db" => db::profile(size),
        "javac" => javac::profile(size),
        "mpegaudio" => mpegaudio::profile(size),
        "mtrt" => mtrt::profile(size),
        "jack" => jack::profile(size),
        other => panic!("unknown benchmark '{other}'"),
    }
}

/// Profiles of all eight benchmarks at the given size.
pub fn all_profiles(size: Size) -> Vec<Profile> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| profile_of(name, size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_a_profile_for_every_size() {
        for name in BENCHMARK_NAMES {
            for size in [Size::S1, Size::S10, Size::S100] {
                let profile = profile_of(name, size);
                assert_eq!(profile.name, name);
                assert!(profile.iterations > 0, "{name} at {size:?} has no work");
                assert!(profile.expected_objects() > 0);
            }
        }
        assert_eq!(all_profiles(Size::S1).len(), 8);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = profile_of("quake", Size::S1);
    }

    #[test]
    fn larger_sizes_allocate_more_dynamic_objects() {
        for name in BENCHMARK_NAMES {
            let s1 = profile_of(name, Size::S1).expected_objects();
            let s10 = profile_of(name, Size::S10).expected_objects();
            let s100 = profile_of(name, Size::S100).expected_objects();
            assert!(s10 >= s1, "{name}: size 10 should not shrink");
            assert!(s100 >= s10, "{name}: size 100 should not shrink");
        }
    }

    #[test]
    fn allocation_heavy_benchmarks_grow_much_faster_than_computational_ones() {
        // The paper: jess/raytrace/db/javac/jack grow by orders of magnitude
        // from size 1 to 100; compress and mpegaudio barely grow.
        let growth = |name: &str| {
            profile_of(name, Size::S100).expected_objects() as f64
                / profile_of(name, Size::S1).expected_objects() as f64
        };
        assert!(growth("jess") > 10.0);
        assert!(growth("jack") > 10.0);
        assert!(growth("db") > 10.0);
        assert!(growth("compress") < 3.0);
        assert!(growth("mpegaudio") < 3.0);
    }
}
