//! `javac` — the JDK 1.1 Java compiler (SPECjvm98 _213_javac).
//!
//! The paper singles `javac` out for its thread behaviour: at size 1 over
//! half of all objects (14 255 of 26 111, Appendix A.2) are forced into the
//! static set because they are touched by more than one thread — the paper
//! attributes this to class loading — leaving only about 24% collectable.
//! The §3.4 optimisation barely moves the number (23% → 24%).  At larger
//! sizes the per-method compilation temporaries dominate and the collectable
//! share climbs to 91–99% (Figure 4.9), with the thread-shared population
//! growing more slowly.
//!
//! The model: a static symbol-table core, a large batch of source/AST objects
//! allocated by the main thread and then traversed by a second (class-loader)
//! thread — which makes them thread-shared — plus per-method compilation
//! temporaries that die with their frames.

use crate::profile::Profile;
use crate::Size;

/// Demographic profile of `javac` at the given size.
pub fn profile(size: Size) -> Profile {
    let (iterations, shared) = match size {
        Size::S1 => (160, 3_550),
        Size::S10 => (2_800, 23_000),
        Size::S100 => (95_000, 500_000),
    };
    Profile {
        name: "javac".to_string(),
        description:
            "Java compiler: AST shared with a class-loader thread, per-method compile temporaries"
                .to_string(),
        static_setup: 1_250,
        interned: 32,
        iterations,
        leaf_temps: 3,
        chained_temps: 4,
        static_touching_temps: 2,
        returned_temps: 1,
        escape_depth: 1,
        leaked_per_iteration: 0,
        compute_per_iteration: 50,
        shared_objects: shared,
        worker_threads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_dominated_by_thread_shared_objects() {
        let p = profile(Size::S1);
        // More than half of all objects are in the shared batch.
        assert!(p.shared_objects as u64 * 2 > p.expected_objects());
        assert!((0.15..0.35).contains(&p.expected_collectable_fraction()));
        // Large runs: compilation temporaries dominate (Appendix A.4 reports
        // 3.8M popped vs 2.0M thread-shared, i.e. roughly 65% collectable).
        let p100 = profile(Size::S100);
        assert!(p100.expected_collectable_fraction() > 0.55);
        assert!(p100.shared_objects > p.shared_objects);
    }
}
