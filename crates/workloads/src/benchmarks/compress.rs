//! `compress` — modified Lempel-Ziv compression (SPECjvm98 _201_compress).
//!
//! The paper's characterisation: very few objects (5 123 at size 1, still
//! only 6 959 at size 100), almost all of them long-lived tables allocated at
//! start-up, with the run time dominated by computation rather than
//! allocation.  Only 9–11% of objects are collectable by CG (Figure 4.1) —
//! but, as the paper notes, an exact collector would not do much better,
//! because the objects genuinely live for the whole run.
//!
//! The model: a large static dictionary built during setup, a small number of
//! per-iteration I/O buffer temporaries, and a heavy arithmetic kernel per
//! iteration standing in for the compression inner loop.

use crate::profile::Profile;
use crate::Size;

/// Demographic profile of `compress` at the given size.
pub fn profile(size: Size) -> Profile {
    // Problem size barely changes the object population (the input just gets
    // longer); it mostly adds computation.
    let (iterations, compute) = match size {
        Size::S1 => (34, 20_000),
        Size::S10 => (42, 120_000),
        Size::S100 => (60, 300_000),
    };
    Profile {
        name: "compress".to_string(),
        description:
            "Modified Lempel-Ziv: static dictionary, few short-lived buffers, compute-bound"
                .to_string(),
        static_setup: 1_100,
        interned: 8,
        iterations,
        leaf_temps: 2,
        chained_temps: 0,
        static_touching_temps: 1,
        returned_temps: 1,
        escape_depth: 1,
        leaked_per_iteration: 0,
        compute_per_iteration: compute,
        shared_objects: 0,
        worker_threads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mostly_static_and_compute_bound() {
        let p = profile(Size::S1);
        // Around 10% of objects are dynamic, matching Figure 4.1's 11%.
        let frac = p.expected_collectable_fraction();
        assert!((0.05..0.20).contains(&frac), "collectable fraction {frac}");
        assert!(p.compute_per_iteration >= 10_000);
        // Size 100 adds computation, not objects.
        let p100 = profile(Size::S100);
        assert!(p100.compute_per_iteration > p.compute_per_iteration);
        assert!(p100.expected_objects() < 2 * p.expected_objects());
    }
}
