//! `raytrace` — single-threaded ray tracer (SPECjvm98 _205_raytrace).
//!
//! The paper's characterisation: an enormous number of short-lived objects
//! (276 960 at size 1, 6.3 million at size 100) — intersection records,
//! vectors, colour temporaries — allocated deep in the per-pixel recursion
//! and dead shortly after.  98% of them are collectable by CG, about 15% in
//! singleton (exact) blocks, and more than half die more than five frames
//! away from their birth frame (Figure 4.6), because results propagate up
//! the shading recursion before being dropped.
//!
//! The model: a small static scene graph, then per-pixel iterations that
//! allocate a few non-escaping temporaries, a chain of intersection records,
//! and a chain of shading results returned up a six-deep call chain.

use crate::profile::Profile;
use crate::Size;

/// Demographic profile of `raytrace` at the given size.
pub fn profile(size: Size) -> Profile {
    let iterations = match size {
        Size::S1 => 5_650,
        Size::S10 => 45_000,
        Size::S100 => 130_000,
    };
    Profile {
        name: "raytrace".to_string(),
        description: "Ray tracer: static scene, per-pixel temporaries returned up a deep recursion"
            .to_string(),
        static_setup: 1_100,
        interned: 2,
        iterations,
        leaf_temps: 1,
        chained_temps: 5,
        static_touching_temps: 1,
        returned_temps: 5,
        escape_depth: 6,
        leaked_per_iteration: 0,
        compute_per_iteration: 30,
        shared_objects: 0,
        worker_threads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overwhelmingly_collectable() {
        let p = profile(Size::S1);
        assert!(p.expected_collectable_fraction() > 0.95);
        // Deep escape chain feeds the ">5 frames" bucket of Figure 4.6.
        assert!(p.escape_depth >= 6);
        // Size 100 grows the population by more than an order of magnitude.
        assert!(profile(Size::S100).expected_objects() > 10 * p.expected_objects());
    }
}
