//! `db` — an in-memory database manager (SPECjvm98 _209_db).
//!
//! The paper's characterisation at size 1: a modest object population
//! (7 608) dominated by the database records themselves, which are loaded at
//! startup and stay live; only 36% of objects are collectable with the §3.4
//! optimisation and barely 18% without it, because the query temporaries are
//! full of references to the long-lived records.  Almost none of the
//! collectable blocks are singletons (queries build result chains).  At
//! size 100 the queries dominate and 99% of objects become collectable with
//! essentially 0% exact.
//!
//! The model: a static record store built at setup, then per-query result
//! chains whose entries also reference the static records (so the no-opt
//! configuration drags them into the static set).

use crate::profile::Profile;
use crate::Size;

/// Demographic profile of `db` at the given size.
pub fn profile(size: Size) -> Profile {
    let iterations = match size {
        Size::S1 => 115,
        Size::S10 => 6_000,
        Size::S100 => 130_000,
    };
    Profile {
        name: "db".to_string(),
        description:
            "Database manager: static record store, per-query result chains referencing records"
                .to_string(),
        static_setup: 1_200,
        interned: 6,
        iterations,
        leaf_temps: 0,
        chained_temps: 3,
        static_touching_temps: 3,
        returned_temps: 0,
        escape_depth: 0,
        leaked_per_iteration: 0,
        compute_per_iteration: 60,
        shared_objects: 0,
        worker_threads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_mostly_static_large_run_is_mostly_collectable() {
        let s1 = profile(Size::S1);
        assert!((0.25..0.45).contains(&s1.expected_collectable_fraction()));
        // Half the collectable objects reference static records: the no-opt
        // configuration loses them (Figure 4.1's 36% vs 18%).
        assert_eq!(s1.static_touching_temps, s1.chained_temps);
        // No singleton temporaries: ~0% exact, as the paper reports.
        assert_eq!(s1.leaf_temps, 0);
        let s100 = profile(Size::S100);
        assert!(s100.expected_collectable_fraction() > 0.95);
    }
}
