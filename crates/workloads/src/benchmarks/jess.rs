//! `jess` — an expert-system shell (SPECjvm98 _202_jess).
//!
//! The paper's characterisation at size 1: 45 867 objects, 61% collectable
//! with the §3.4 optimisation but only 35% without it (the working-memory
//! facts reference the static rule network), a static rule base of roughly
//! 18 000 objects, and only about 7% of collectable objects in singleton
//! blocks (facts are chained into activation records).
//!
//! The model: a large static rule network built at setup, then per-activation
//! iterations allocating chains of fact/binding temporaries, most of which
//! also reference the rule network, plus a couple of objects returned one or
//! two frames up (partial matches handed back to the engine).

use crate::profile::Profile;
use crate::Size;

/// Demographic profile of `jess` at the given size.
///
/// At the larger sizes jess also grows its retained rule/fact network (the
/// paper's static population grows from ~18k objects at size 1 to ~78k at
/// size 100, Appendix A.4); `leaked_per_iteration` models that retention so
/// the traditional collector has a growing live set to mark on the large
/// runs.
pub fn profile(size: Size) -> Profile {
    let (iterations, leaked_per_iteration) = match size {
        Size::S1 => (500, 0),
        Size::S10 => (4_000, 1),
        Size::S100 => (45_000, 2),
    };
    Profile {
        name: "jess".to_string(),
        description:
            "Expert system: static rule network, chained working-memory facts referencing rules"
                .to_string(),
        static_setup: 4_450,
        interned: 16,
        iterations,
        leaf_temps: 1,
        chained_temps: 5,
        static_touching_temps: 6,
        returned_temps: 2,
        escape_depth: 2,
        leaked_per_iteration,
        compute_per_iteration: 40,
        shared_objects: 0,
        worker_threads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimisation_sensitive_demographic() {
        let p = profile(Size::S1);
        let frac = p.expected_collectable_fraction();
        assert!((0.5..0.7).contains(&frac), "collectable fraction {frac}");
        // Nearly half the per-iteration temporaries reference static rules:
        // that is what the 61% → 35% no-opt drop of Figure 4.1 comes from.
        let per_iter = p.leaf_temps + p.chained_temps + p.static_touching_temps + p.returned_temps;
        assert!(p.static_touching_temps * 3 >= per_iter);
        assert!(profile(Size::S100).expected_objects() > 20 * p.expected_objects());
    }
}
