//! Stress tests for the concurrent static domain.
//!
//! Strategy: generate a seeded schedule of domain operations (inserts with
//! member registration, unions, thread-shared notes, non-static absorbs,
//! read probes), split it across N OS threads hammering one
//! `DomainImpl::Atomic` domain, then apply the *same op multiset*
//! sequentially to the retained `DomainImpl::Mutex` reference model and
//! require identical final state.
//!
//! Which schedules admit exact equality is itself part of the §3.3
//! order-independence argument (see `static_domain.rs`'s module docs):
//!
//! * unions and absorbs are lattice *joins* — they commute, so any schedule
//!   built only from inserts, unions, absorbs and reads is fully
//!   order-independent and must match the sequential model exactly
//!   (schedules A and B);
//! * `note_thread_shared` is a *conditional* upgrade (it must not overwrite
//!   a definite `StaticReference`), so it is order-independent only when it
//!   cannot race a join on the same class — exercised per-node in schedule
//!   C;
//! * with everything mixed (schedule D) the final reason of a class depends
//!   on the interleaving, but the partition, the promotion/member counts
//!   and the reason *lattice bounds* do not — those are asserted instead.

use std::sync::{Barrier, OnceLock};

use cg_core::{merge_reasons, DomainImpl, StaticDomain, StaticNodeId, StaticReason};
use cg_testutil::TestRng;
use cg_vm::Handle;

const THREADS: usize = 4;

#[derive(Clone, Copy, Debug)]
enum Op {
    Union(usize, usize),
    NoteThreadShared(usize),
    Absorb(usize),
    /// `same_block` + `reason` + `node_of` probes, results discarded: reads
    /// must be safe to race with every mutation.
    Read(usize, usize),
}

struct Schedule {
    /// Insert reasons per thread; logical id `t * per_thread + i`.
    inserts: Vec<Vec<StaticReason>>,
    /// Mutation/read ops per thread, over logical ids.
    ops: Vec<Vec<Op>>,
}

impl Schedule {
    fn total(&self) -> usize {
        self.inserts.iter().map(Vec::len).sum()
    }
}

/// Generates a schedule from op-class toggles.  Every thread gets the same
/// number of inserts so logical ids are dense.
fn generate(
    seed: u64,
    reason_pool: &[StaticReason],
    unions: bool,
    note_ts: bool,
    absorb: bool,
) -> Schedule {
    let mut rng = TestRng::new(seed);
    let per_thread = rng.gen_range(24, 48);
    let total = THREADS * per_thread;
    let inserts = (0..THREADS)
        .map(|_| {
            (0..per_thread)
                .map(|_| reason_pool[rng.gen_range(0, reason_pool.len())])
                .collect()
        })
        .collect();
    let ops = (0..THREADS)
        .map(|_| {
            let count = rng.gen_range(150, 300);
            (0..count)
                .filter_map(|_| {
                    let a = rng.gen_range(0, total);
                    let b = rng.gen_range(0, total);
                    match rng.gen_range(0, 10) {
                        0..=4 if unions => Some(Op::Union(a, b)),
                        5..=6 if note_ts => Some(Op::NoteThreadShared(a)),
                        7 if absorb => Some(Op::Absorb(a)),
                        8..=9 => Some(Op::Read(a, b)),
                        _ => None,
                    }
                })
                .collect()
        })
        .collect();
    Schedule { inserts, ops }
}

fn handle_of(logical: usize) -> Handle {
    Handle::from_index(logical as u32)
}

fn apply_op(op: &Op, domain: &StaticDomain, nodes: &[StaticNodeId]) {
    match *op {
        Op::Union(a, b) => {
            domain.union(nodes[a], nodes[b]);
        }
        Op::NoteThreadShared(a) => domain.note_thread_shared(nodes[a]),
        Op::Absorb(a) => domain.absorb_nonstatic(nodes[a]),
        Op::Read(a, b) => {
            let _ = domain.same_block(nodes[a], nodes[b]);
            let _ = domain.reason(nodes[a]);
            let _ = domain.node_of(handle_of(b));
        }
    }
}

/// Runs the schedule concurrently: each thread performs its own inserts,
/// all threads rendezvous at a barrier, then each thread fires its op list
/// against the shared domain.
fn run_concurrent(schedule: &Schedule, which: DomainImpl) -> (StaticDomain, Vec<StaticNodeId>) {
    let domain = StaticDomain::with_impl(which);
    let per_thread = schedule.inserts[0].len();
    let total = schedule.total();
    let slots: Vec<OnceLock<StaticNodeId>> = (0..total).map(|_| OnceLock::new()).collect();
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let domain = &domain;
            let slots = &slots;
            let barrier = &barrier;
            let schedule = &schedule;
            scope.spawn(move || {
                for (i, &reason) in schedule.inserts[t].iter().enumerate() {
                    let logical = t * per_thread + i;
                    let node = domain.insert(reason);
                    domain.register_members(&[handle_of(logical)], node);
                    slots[logical].set(node).expect("logical id set once");
                }
                barrier.wait();
                let nodes: Vec<StaticNodeId> = slots.iter().map(|s| *s.wait()).collect();
                for op in &schedule.ops[t] {
                    apply_op(op, domain, &nodes);
                }
            });
        }
    });
    let nodes = slots.into_iter().map(|s| s.into_inner().unwrap()).collect();
    (domain, nodes)
}

/// Applies the same op multiset sequentially (inserts in logical order,
/// then thread 0's ops, thread 1's, ...) to the reference model.
fn run_sequential(schedule: &Schedule, which: DomainImpl) -> (StaticDomain, Vec<StaticNodeId>) {
    let domain = StaticDomain::with_impl(which);
    let per_thread = schedule.inserts[0].len();
    let mut nodes = vec![0; schedule.total()];
    for (t, reasons) in schedule.inserts.iter().enumerate() {
        for (i, &reason) in reasons.iter().enumerate() {
            let logical = t * per_thread + i;
            let node = domain.insert(reason);
            domain.register_members(&[handle_of(logical)], node);
            nodes[logical] = node;
        }
    }
    for ops in &schedule.ops {
        for op in ops {
            apply_op(op, &domain, &nodes);
        }
    }
    (domain, nodes)
}

/// Final-state equality over logical ids: counts, reasons, the partition
/// (as the `same_block` relation) and member resolution.
fn assert_equal_state(
    label: &str,
    left: &(StaticDomain, Vec<StaticNodeId>),
    right: &(StaticDomain, Vec<StaticNodeId>),
    total: usize,
) {
    let (ld, ln) = left;
    let (rd, rn) = right;
    assert_eq!(ld.promotions(), rd.promotions(), "{label}: promotions");
    assert_eq!(ld.block_count(), rd.block_count(), "{label}: block count");
    assert_eq!(
        ld.member_count(),
        rd.member_count(),
        "{label}: member count"
    );
    for i in 0..total {
        assert_eq!(
            ld.reason(ln[i]),
            rd.reason(rn[i]),
            "{label}: reason of logical {i}"
        );
        assert!(ld.node_of(handle_of(i)).is_some(), "{label}: member {i}");
        assert!(rd.node_of(handle_of(i)).is_some(), "{label}: member {i}");
    }
    for i in 0..total {
        for j in (i + 1)..total {
            let l = ld.same_block(ln[i], ln[j]);
            let r = rd.same_block(rn[i], rn[j]);
            assert_eq!(l, r, "{label}: partition disagrees on ({i}, {j})");
            // Member resolution must induce the same equivalence.
            let lm = ld.node_of(handle_of(i)) == ld.node_of(handle_of(j));
            assert_eq!(
                lm, l,
                "{label}: node_of disagrees with same_block on ({i}, {j})"
            );
        }
    }
}

fn exact_equality_schedule(label: &str, seed: u64, schedule: &Schedule) {
    let concurrent = run_concurrent(schedule, DomainImpl::Atomic);
    let reference = run_sequential(schedule, DomainImpl::Mutex);
    assert_equal_state(
        &format!("{label}/seed {seed}"),
        &concurrent,
        &reference,
        schedule.total(),
    );
}

/// Schedule A: definite insert reasons only (`StaticReference` /
/// `ThreadShared`), everything else enabled.  Notes and absorbs are
/// deterministic no-ops on definite reasons and unions are joins, so the
/// whole schedule is order-independent: concurrent atomic must equal
/// sequential mutex exactly.
#[test]
fn union_heavy_definite_reasons_match_sequential_model() {
    for seed in 0..6 {
        let schedule = generate(
            0xA100 + seed,
            &[StaticReason::StaticReference, StaticReason::ThreadShared],
            true,
            true,
            true,
        );
        exact_equality_schedule("A", seed, &schedule);
    }
}

/// Schedule B: indefinite (`NotStatic`) inserts in the mix, unions and
/// absorbs but no thread-shared notes — all mutations are joins, so the
/// result is order-independent.
#[test]
fn join_only_schedules_match_sequential_model() {
    for seed in 0..6 {
        let schedule = generate(
            0xB200 + seed,
            &[
                StaticReason::NotStatic,
                StaticReason::StaticReference,
                StaticReason::ThreadShared,
            ],
            true,
            false,
            true,
        );
        exact_equality_schedule("B", seed, &schedule);
    }
}

/// Schedule C: indefinite inserts and thread-shared notes but no unions or
/// absorbs — every class is a singleton, so the conditional `NotStatic ->
/// ThreadShared` upgrade is per-node deterministic (and idempotent under
/// racing duplicate notes).
#[test]
fn thread_shared_notes_match_sequential_model() {
    for seed in 0..6 {
        let schedule = generate(
            0xC300 + seed,
            &[StaticReason::NotStatic, StaticReason::StaticReference],
            false,
            true,
            false,
        );
        exact_equality_schedule("C", seed, &schedule);
    }
}

/// Schedule D: everything enabled, including the races whose reason
/// outcome is genuinely interleaving-dependent (a conditional note against
/// a concurrent join).  The partition, the counters and the reason
/// *bounds* are still order-independent and are asserted against the
/// sequential model.
#[test]
fn mixed_schedules_preserve_order_independent_invariants() {
    for seed in 0..6 {
        let schedule = generate(
            0xD400 + seed,
            &[
                StaticReason::NotStatic,
                StaticReason::StaticReference,
                StaticReason::ThreadShared,
            ],
            true,
            true,
            true,
        );
        let total = schedule.total();
        let (cd, cn) = run_concurrent(&schedule, DomainImpl::Atomic);
        let (sd, sn) = run_sequential(&schedule, DomainImpl::Mutex);
        assert_eq!(cd.promotions(), sd.promotions(), "seed {seed}");
        assert_eq!(cd.block_count(), sd.block_count(), "seed {seed}");
        assert_eq!(cd.member_count(), sd.member_count(), "seed {seed}");
        for i in 0..total {
            for j in (i + 1)..total {
                assert_eq!(
                    cd.same_block(cn[i], cn[j]),
                    sd.same_block(sn[i], sn[j]),
                    "seed {seed}: partition disagrees on ({i}, {j})"
                );
            }
        }
        // Reason bounds per final class: at least the join of the members'
        // insert reasons; at most that join joined with what the targeted
        // ops could have added.
        let mut lower = vec![StaticReason::NotStatic; total];
        let mut upper = vec![StaticReason::NotStatic; total];
        let class_of: Vec<usize> = (0..total)
            .map(|i| (0..total).find(|&j| cd.same_block(cn[i], cn[j])).unwrap())
            .collect();
        let flat: Vec<StaticReason> = schedule.inserts.iter().flatten().copied().collect();
        for i in 0..total {
            let c = class_of[i];
            lower[c] = merge_reasons(lower[c], flat[i]);
            upper[c] = merge_reasons(upper[c], flat[i]);
        }
        for ops in &schedule.ops {
            for op in ops {
                match *op {
                    Op::NoteThreadShared(a) => {
                        let c = class_of[a];
                        upper[c] = merge_reasons(upper[c], StaticReason::ThreadShared);
                    }
                    Op::Absorb(a) => {
                        let c = class_of[a];
                        upper[c] = merge_reasons(upper[c], StaticReason::StaticReference);
                    }
                    _ => {}
                }
            }
        }
        for i in 0..total {
            let c = class_of[i];
            let got = cd.reason(cn[i]);
            assert!(
                lower[c] <= got && got <= upper[c],
                "seed {seed}: class of {i} has reason {got:?} outside [{:?}, {:?}]",
                lower[c],
                upper[c]
            );
        }
    }
}

/// The order-independence argument requires `merge_reasons` to be a
/// commutative, associative, idempotent join with `ThreadShared` on top —
/// checked exhaustively over the 3-element lattice.
#[test]
fn merge_reasons_is_a_semilattice_join() {
    use StaticReason::*;
    let all = [NotStatic, StaticReference, ThreadShared];
    for a in all {
        assert_eq!(merge_reasons(a, a), a, "idempotent at {a:?}");
        assert_eq!(merge_reasons(a, ThreadShared), ThreadShared, "top absorbs");
        assert_eq!(merge_reasons(a, NotStatic), a, "bottom is neutral");
        for b in all {
            assert_eq!(
                merge_reasons(a, b),
                merge_reasons(b, a),
                "commutative at ({a:?}, {b:?})"
            );
            for c in all {
                assert_eq!(
                    merge_reasons(merge_reasons(a, b), c),
                    merge_reasons(a, merge_reasons(b, c)),
                    "associative at ({a:?}, {b:?}, {c:?})"
                );
            }
        }
    }
}
