//! Contaminated garbage collection.
//!
//! This crate is the reproduction of the collector described in
//! *Contaminated Garbage Collection* (Cannarozzi, Plezbert & Cytron,
//! PLDI 2000; thesis report WUCSE-2003-40).  The idea:
//!
//! > Each object X is dynamically associated with a stack frame M, such that
//! > X is collectable when M pops.
//!
//! Objects are grouped into **equilive blocks** — an equivalence relation
//! maintained with union/find (union by rank, path compression).  The rules:
//!
//! * A new object forms a singleton block dependent on the allocating frame.
//! * When object `a` is made to reference object `b` (a `putfield` or array
//!   store), `a` and `b` *contaminate* each other: their blocks merge and the
//!   merged block depends on the **older** of the two dependent frames.
//!   Contamination is symmetric and can never be undone, which is where the
//!   approach is conservative.
//! * Returning an object (`areturn`) moves its block to the caller's frame
//!   if the caller is older.
//! * Storing an object into a static variable — or any interpreter-generated
//!   static reference such as `String.intern`, class loading or JNI pinning —
//!   makes its block *static* ("frame 0"), never collected by CG.
//! * Objects accessed by more than one thread are treated as static (§3.3).
//! * When a frame pops, every block dependent on it is dead: the objects are
//!   freed with no marking phase at all, or pushed onto a recycle list that
//!   later allocations are served from (§3.7).
//!
//! Two refinements from the thesis are also implemented: the **static
//! optimisation** of §3.4 (referencing an already-static object does not
//! contaminate the referencer) and **resetting** of §3.6 (when a traditional
//! mark-sweep collection runs anyway, rebuild the equilive relation from the
//! live object graph, undoing accumulated conservatism).
//!
//! The main types:
//!
//! * [`ContaminatedGc`] — the collector, a [`cg_vm::Collector`] implementation
//!   (the 1-shard instantiation of the sharded code path).
//! * [`CollectorShard`] / [`StaticDomain`] — one thread's share of the
//!   collector state, and the §3.3 static set shared by all shards.
//! * [`ShardedGc`] — the N-shard collector, routing a live VM's events
//!   across per-thread shards.
//! * [`CgConfig`] — static optimisation / recycling / verification knobs
//!   (`verify_tainted` defaults on only under `debug_assertions`).
//! * [`HybridCollector`] — contaminated GC plus a mark-sweep backstop with
//!   optional structure resetting.
//! * [`EquiliveSets`], [`FrameKey`], [`BlockInfo`] — the underlying relation.
//! * [`CgStats`], [`ObjectBreakdown`] — the measurements every experiment in
//!   Chapter 4 reads off.
//!
//! # Example
//!
//! ```
//! use cg_core::{CgConfig, ContaminatedGc};
//! use cg_vm::{Program, ClassDef, MethodDef, Insn, Vm, VmConfig};
//!
//! // A helper that allocates a temporary object which never escapes.
//! let mut program = Program::new();
//! let class = program.add_class(ClassDef::new("Temp", 1));
//! let helper = program.add_method(MethodDef::new("helper", 0, 1, vec![
//!     Insn::New { class, dst: 0 },
//!     Insn::Return { value: None },
//! ]));
//! let main = program.add_method(MethodDef::new("main", 0, 1, vec![
//!     Insn::Call { method: helper, args: vec![], dst: None },
//!     Insn::Call { method: helper, args: vec![], dst: None },
//!     Insn::Return { value: None },
//! ]));
//! program.set_entry(main);
//!
//! let collector = ContaminatedGc::with_config(CgConfig::preferred());
//! let mut vm = Vm::new(program, VmConfig::default(), collector);
//! vm.run()?;
//!
//! let stats = vm.collector().stats();
//! assert_eq!(stats.objects_created, 2);
//! assert_eq!(stats.objects_collected, 2);       // both died at frame pops
//! assert_eq!(stats.objects_collected_exactly, 2); // in singleton blocks
//! # Ok::<(), cg_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod collector;
pub mod equilive;
pub mod frame_index;
pub mod hybrid;
pub mod recycle;
pub mod shard;
pub mod sharded;
pub mod static_domain;
pub mod stats;

pub use bitset::HandleBitSet;
pub use collector::{CgConfig, ContaminatedGc, FaultInjection};
pub use equilive::{BlockInfo, EquiliveSets, FrameKey, StaticReason};
pub use frame_index::FrameBlockIndex;
pub use hybrid::{HybridCollector, HybridConfig};
pub use recycle::{RecycleBins, RecyclePolicy};
pub use shard::{aggregate_shards, aggregate_stats, CollectorShard, StoreOperand};
pub use sharded::{ShardConfigError, ShardedGc};
pub use static_domain::{merge_reasons, DomainImpl, StaticDomain, StaticNodeId};
pub use stats::{CgStats, ObjectBreakdown};
