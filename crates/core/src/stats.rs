//! Statistics collected by the contaminated collector.
//!
//! Every experiment in Chapter 4 of the thesis reads off one of these
//! counters or histograms; the field documentation notes which figure each
//! one feeds.

use cg_stats::Histogram;

/// Final disposition of every object the program created, mirroring the
//  popped / static / thread breakdown of Appendix A.2–A.4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectBreakdown {
    /// Objects collected by the contaminated collector when their dependent
    /// frame popped ("popped" in Appendix A).
    pub popped: u64,
    /// Objects still held by static references when the program ended
    /// ("static" in Appendix A).
    pub static_objects: u64,
    /// Objects demoted to the static set because more than one thread
    /// accessed them ("thread" in Appendix A).
    pub thread_shared: u64,
}

impl ObjectBreakdown {
    /// Total number of objects across all dispositions.
    pub fn total(&self) -> u64 {
        self.popped + self.static_objects + self.thread_shared
    }
}

/// Counters and distributions maintained by [`ContaminatedGc`](crate::ContaminatedGc).
///
/// `CgStats` compares by value (all counters and both histograms), which is
/// what the trace-equivalence tests rely on: a replayed run must reproduce a
/// live run's statistics *exactly*, not approximately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgStats {
    /// Objects (instances + arrays) the program created (Figures 4.1, 4.9).
    pub objects_created: u64,
    /// Objects collected at frame pops — the "collectable" numerator of
    /// Figures 4.1 and 4.9.
    pub objects_collected: u64,
    /// Objects collected in singleton blocks — the "exactly collectable"
    /// column of Figures 4.5 and 4.9.
    pub objects_collected_exactly: u64,
    /// Objects demoted to the static set because a second thread touched
    /// them (Figures 4.2–4.4, A.1).
    pub objects_thread_shared: u64,
    /// Objects recycled through the §3.7 recycle list (Figure 4.13).
    pub objects_recycled: u64,
    /// Reference-store (contamination) events processed.
    pub contaminations: u64,
    /// Union operations actually performed (two distinct blocks merged).
    pub unions: u64,
    /// Contaminations skipped by the §3.4 static optimisation.
    pub static_opt_skips: u64,
    /// `areturn` events that re-targeted a block to the caller's frame.
    pub returns_retargeted: u64,
    /// Blocks freed at frame pops, by size (Figure 4.5: 1,2,3,4,5,6–10,>10).
    pub block_sizes: Histogram,
    /// Frame distance between an object's birth and the frame whose pop
    /// collected it (Figure 4.6: 0,1,2,3,4,5,>5).
    pub age_at_death: Histogram,
    /// Objects that a traditional collection found unreachable while the
    /// contaminated collector still considered them live (Figure 4.11,
    /// "collected by MSA").
    pub reset_collected_by_msa: u64,
    /// Objects whose dependent frame improved (moved younger) during a §3.6
    /// resetting pass (Figure 4.11, "less live").
    pub reset_less_live: u64,
    /// Resetting passes performed.
    pub resets: u64,
    /// First-fit probes of the recycle list (cost accounting for §4.8).
    pub recycle_probes: u64,
}

impl Default for CgStats {
    fn default() -> Self {
        Self {
            objects_created: 0,
            objects_collected: 0,
            objects_collected_exactly: 0,
            objects_thread_shared: 0,
            objects_recycled: 0,
            contaminations: 0,
            unions: 0,
            static_opt_skips: 0,
            returns_retargeted: 0,
            block_sizes: Histogram::new("equilive-block-size", &[1, 2, 3, 4, 5, 10]),
            age_at_death: Histogram::new("age-at-death-frames", &[0, 1, 2, 3, 4, 5]),
            reset_collected_by_msa: 0,
            reset_less_live: 0,
            resets: 0,
            recycle_probes: 0,
        }
    }
}

impl CgStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Percentage of created objects collected by the contaminated collector
    /// (the headline number of Figures 4.1 and 4.9).
    pub fn collectable_percent(&self) -> f64 {
        cg_stats::percent(self.objects_collected, self.objects_created)
    }

    /// Percentage of created objects collected in singleton (exact) blocks
    /// (Figure 4.9, "Exactly Collectable").
    pub fn exactly_collectable_percent(&self) -> f64 {
        cg_stats::percent(self.objects_collected_exactly, self.objects_created)
    }

    /// Percentage of freed blocks that were singletons (Figure 4.5,
    /// "percent exact").
    pub fn exact_block_percent(&self) -> f64 {
        if self.block_sizes.total() == 0 {
            0.0
        } else {
            self.block_sizes.bucket_percent(0)
        }
    }

    /// Percentage of created objects recycled (Figure 4.13).
    pub fn recycled_percent(&self) -> f64 {
        cg_stats::percent(self.objects_recycled, self.objects_created)
    }

    /// Adds another collector's statistics into this one: counters add and
    /// histograms merge bucket-wise.
    ///
    /// This is how a sharded evaluation aggregates per-shard statistics into
    /// the totals a single-threaded run reports.  Every counter is either
    /// per-event (counted by exactly one shard) or per-block (blocks are
    /// owned by exactly one shard), so the sum over shards is exact, not
    /// approximate.
    pub fn merge_from(&mut self, other: &CgStats) {
        self.objects_created += other.objects_created;
        self.objects_collected += other.objects_collected;
        self.objects_collected_exactly += other.objects_collected_exactly;
        self.objects_thread_shared += other.objects_thread_shared;
        self.objects_recycled += other.objects_recycled;
        self.contaminations += other.contaminations;
        self.unions += other.unions;
        self.static_opt_skips += other.static_opt_skips;
        self.returns_retargeted += other.returns_retargeted;
        self.block_sizes.merge(&other.block_sizes);
        self.age_at_death.merge(&other.age_at_death);
        self.reset_collected_by_msa += other.reset_collected_by_msa;
        self.reset_less_live += other.reset_less_live;
        self.resets += other.resets;
        self.recycle_probes += other.recycle_probes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = ObjectBreakdown {
            popped: 10,
            static_objects: 5,
            thread_shared: 2,
        };
        assert_eq!(b.total(), 17);
        assert_eq!(ObjectBreakdown::default().total(), 0);
    }

    #[test]
    fn percentages_follow_counts() {
        let mut s = CgStats::new();
        s.objects_created = 200;
        s.objects_collected = 120;
        s.objects_collected_exactly = 50;
        s.objects_recycled = 20;
        assert!((s.collectable_percent() - 60.0).abs() < 1e-9);
        assert!((s.exactly_collectable_percent() - 25.0).abs() < 1e-9);
        assert!((s.recycled_percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_percentages_are_zero() {
        let s = CgStats::new();
        assert_eq!(s.collectable_percent(), 0.0);
        assert_eq!(s.exactly_collectable_percent(), 0.0);
        assert_eq!(s.exact_block_percent(), 0.0);
        assert_eq!(s.recycled_percent(), 0.0);
    }

    #[test]
    fn exact_block_percent_uses_histogram() {
        let mut s = CgStats::new();
        s.block_sizes.record(1);
        s.block_sizes.record(1);
        s.block_sizes.record(3);
        s.block_sizes.record(12);
        assert!((s.exact_block_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn histograms_have_paper_buckets() {
        let s = CgStats::new();
        assert_eq!(s.block_sizes.bounds(), &[1, 2, 3, 4, 5, 10]);
        assert_eq!(s.age_at_death.bounds(), &[0, 1, 2, 3, 4, 5]);
    }
}
