//! The §3.7 recycle list, with a pluggable search policy.
//!
//! When recycling is enabled, dead (but still allocated) objects wait to be
//! handed back to the allocator instead of being freed.  The paper's
//! implementation keeps them in collection order and first-fit-scans the
//! whole list on every allocation — that behaviour is preserved as
//! [`RecyclePolicy::FirstFit`], because the §4.8 experiment measures exactly
//! that scan (`CgStats::recycle_probes`) against the heap allocator's
//! search.  [`RecyclePolicy::SegregatedBins`] is the optimised alternative:
//! corpses are binned by the power-of-two size class of their slot count, so
//! a request probes only bins whose objects could possibly fit.

use cg_vm::Handle;

/// How [`RecycleBins::take`] searches for a reusable dead object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecyclePolicy {
    /// The paper-faithful search: scan the whole list in collection order,
    /// reuse the first corpse that fits (§3.7).  O(list) probes per miss.
    #[default]
    FirstFit,
    /// Size-segregated bins keyed by slot-count class.  O(classes) bin
    /// probes; within the starting class a corpse may still be too small
    /// and is skipped, every higher class is guaranteed large enough.
    SegregatedBins,
}

/// Size class of a slot count: its bit length, so class `c` holds counts in
/// `[2^(c-1), 2^c)` (and class 0 holds exactly zero-slot objects).
fn class_of(slot_count: usize) -> usize {
    (usize::BITS - slot_count.leading_zeros()) as usize
}

/// Dead objects awaiting reuse, searchable under either [`RecyclePolicy`].
#[derive(Debug, Clone, Default)]
pub struct RecycleBins {
    policy: RecyclePolicy,
    /// FirstFit: every corpse in collection order.
    list: Vec<Handle>,
    /// SegregatedBins: corpses by slot-count class.
    bins: Vec<Vec<Handle>>,
    len: usize,
}

impl RecycleBins {
    /// Creates an empty recycle structure for `policy`.
    pub fn new(policy: RecyclePolicy) -> Self {
        Self {
            policy,
            list: Vec::new(),
            bins: Vec::new(),
            len: 0,
        }
    }

    /// The search policy.
    pub fn policy(&self) -> RecyclePolicy {
        self.policy
    }

    /// Number of corpses currently waiting.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds a corpse with `slot_count` reusable slots.
    pub fn push(&mut self, handle: Handle, slot_count: usize) {
        match self.policy {
            RecyclePolicy::FirstFit => self.list.push(handle),
            RecyclePolicy::SegregatedBins => {
                let class = class_of(slot_count);
                if self.bins.len() <= class {
                    self.bins.resize_with(class + 1, Vec::new);
                }
                self.bins[class].push(handle);
            }
        }
        self.len += 1;
    }

    /// Searches for a corpse that `try_claim` accepts (the closure checks
    /// the fit against the heap and reinitialises the object; returning
    /// `true` claims it).  Each examined corpse increments `probes` — that
    /// counter is the §4.8 cost accounting.
    pub fn take(
        &mut self,
        field_count: usize,
        probes: &mut u64,
        mut try_claim: impl FnMut(Handle) -> bool,
    ) -> Option<Handle> {
        match self.policy {
            RecyclePolicy::FirstFit => {
                for i in 0..self.list.len() {
                    *probes += 1;
                    let handle = self.list[i];
                    if try_claim(handle) {
                        // Preserve collection order, exactly like the
                        // paper's list (§3.7).
                        self.list.remove(i);
                        self.len -= 1;
                        return Some(handle);
                    }
                }
                None
            }
            RecyclePolicy::SegregatedBins => {
                for class in class_of(field_count)..self.bins.len() {
                    let mut i = 0;
                    while i < self.bins[class].len() {
                        *probes += 1;
                        let handle = self.bins[class][i];
                        if try_claim(handle) {
                            self.bins[class].swap_remove(i);
                            self.len -= 1;
                            return Some(handle);
                        }
                        // Too small (possible only in the starting class)
                        // or rejected by the heap: keep it for other
                        // requests.
                        i += 1;
                    }
                }
                None
            }
        }
    }

    /// Keeps only the corpses `keep` accepts (used when a traditional
    /// collection sweeps objects out from under the recycle list).
    pub fn retain(&mut self, mut keep: impl FnMut(Handle) -> bool) {
        match self.policy {
            RecyclePolicy::FirstFit => {
                self.list.retain(|&h| keep(h));
                self.len = self.list.len();
            }
            RecyclePolicy::SegregatedBins => {
                let mut len = 0;
                for bin in &mut self.bins {
                    bin.retain(|&h| keep(h));
                    len += bin.len();
                }
                self.len = len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> Handle {
        Handle::from_index(i)
    }

    #[test]
    fn first_fit_scans_in_collection_order() {
        let mut bins = RecycleBins::new(RecyclePolicy::FirstFit);
        bins.push(h(1), 1);
        bins.push(h(2), 4);
        bins.push(h(3), 4);
        assert_eq!(bins.len(), 3);
        let mut probes = 0;
        // Claim the first corpse with at least 4 slots: h(2), after probing
        // h(1) first.
        let sizes = [0usize, 1, 4, 4];
        let taken = bins.take(4, &mut probes, |handle| sizes[handle.index_usize()] >= 4);
        assert_eq!(taken, Some(h(2)));
        assert_eq!(probes, 2);
        assert_eq!(bins.len(), 2);
        // Order is preserved for the remaining corpses.
        let taken = bins.take(0, &mut probes, |_| true);
        assert_eq!(taken, Some(h(1)));
    }

    #[test]
    fn segregated_skips_too_small_classes() {
        let mut bins = RecycleBins::new(RecyclePolicy::SegregatedBins);
        for i in 0..100 {
            bins.push(h(i), 1);
        }
        bins.push(h(100), 8);
        let mut probes = 0;
        let taken = bins.take(8, &mut probes, |_| true);
        assert_eq!(taken, Some(h(100)));
        // The hundred one-slot corpses live in a class below the request's
        // and are never probed.
        assert_eq!(probes, 1);
        assert_eq!(bins.len(), 100);
    }

    #[test]
    fn segregated_checks_fit_within_starting_class() {
        let mut bins = RecycleBins::new(RecyclePolicy::SegregatedBins);
        // Slot counts 4 and 7 share a class; a request for 6 must skip the
        // 4-slot corpse.
        bins.push(h(0), 4);
        bins.push(h(1), 7);
        let sizes = [4usize, 7];
        let mut probes = 0;
        let taken = bins.take(6, &mut probes, |handle| sizes[handle.index_usize()] >= 6);
        assert_eq!(taken, Some(h(1)));
        assert_eq!(bins.len(), 1);
    }

    #[test]
    fn take_from_empty_returns_none() {
        for policy in [RecyclePolicy::FirstFit, RecyclePolicy::SegregatedBins] {
            let mut bins = RecycleBins::new(policy);
            assert!(bins.is_empty());
            let mut probes = 0;
            assert_eq!(bins.take(2, &mut probes, |_| true), None);
            assert_eq!(probes, 0);
        }
    }

    #[test]
    fn retain_drops_swept_corpses() {
        for policy in [RecyclePolicy::FirstFit, RecyclePolicy::SegregatedBins] {
            let mut bins = RecycleBins::new(policy);
            for i in 0..10 {
                bins.push(h(i), (i as usize) % 5);
            }
            bins.retain(|handle| handle.index_usize() % 2 == 0);
            assert_eq!(bins.len(), 5, "{policy:?}");
            let mut probes = 0;
            while bins.take(0, &mut probes, |_| true).is_some() {}
            assert!(bins.is_empty());
        }
    }
}
