//! One thread's share of the contaminated collector.
//!
//! A [`CollectorShard`] owns everything the collector keeps per thread: the
//! equilive forest ([`EquiliveSets`]), the dense per-frame block index, the
//! tainted bitset, the recycle bins and the statistics.  The only state a
//! shard shares with other shards is the [`StaticDomain`] — the §3.3 static
//! set — which every event handler receives by reference.
//!
//! The single-threaded [`ContaminatedGc`](crate::ContaminatedGc) is the
//! 1-shard instantiation of exactly this code path: it owns one shard plus a
//! private domain and forwards every collector hook.  A parallel trace
//! evaluation instantiates N shards (one per OS thread), shares one domain
//! between them, and drives each shard from its partitioned sub-stream.
//!
//! # The cross-shard rule
//!
//! A shard never unions blocks across shard boundaries.  A store whose
//! operands live in different shards *escalates* both operands to the static
//! domain (per §3.3 — the store proves the object is reachable from a
//! foreign thread) and unions their domain nodes there.  In streams recorded
//! from the VM the escalation has always already happened — every
//! cross-thread `ObjectAccess` precedes the store that uses the object, so a
//! foreign operand is static by the time the store arrives — which is what
//! makes the sharded evaluation's aggregated statistics byte-identical to a
//! single-threaded replay.

use cg_unionfind::ElementId;
use cg_vm::{ClassId, CollectOutcome, FrameInfo, Handle, Heap, RootSet, ThreadId};

use crate::bitset::HandleBitSet;
use crate::collector::CgConfig;
use crate::equilive::{EquiliveSets, FrameKey, StaticReason};
use crate::recycle::RecycleBins;
use crate::static_domain::{StaticDomain, StaticNodeId};
use crate::stats::{CgStats, ObjectBreakdown};

/// Per-object bookkeeping (one entry per live object incarnation).
#[derive(Debug, Clone, Copy)]
struct ObjData {
    /// The object's element in the shard's equilive forest.
    elem: ElementId,
    /// Stack depth of the frame the object was allocated in (Figure 4.6).
    birth_depth: usize,
    /// The thread that allocated the object (§3.3).
    alloc_thread: ThreadId,
    /// Whether the collector has declared the object dead.
    dead: bool,
}

/// A store operand as seen by the processing shard: either an object this
/// shard owns, or a block that already lives in the shared static domain
/// (the only way a foreign object can legally appear in a store, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOperand {
    /// An object owned by (or conservatively registered with) this shard.
    Owned(Handle),
    /// A static block, typically owned by another shard.
    Static(StaticNodeId),
}

/// A resolved operand: a root in this shard's forest or a domain node.
#[derive(Debug, Clone, Copy)]
enum Resolved {
    Local(ElementId),
    Foreign(StaticNodeId),
}

/// One shard of the contaminated collector: a complete per-thread collector
/// state sharing only the [`StaticDomain`] with its siblings.
#[derive(Debug, Clone)]
pub struct CollectorShard {
    config: CgConfig,
    sets: EquiliveSets,
    /// Indexed by handle index; `Some` only for objects this shard owns.
    objects: Vec<Option<ObjData>>,
    frame_index: crate::frame_index::FrameBlockIndex,
    recycle: RecycleBins,
    tainted: HandleBitSet,
    stats: CgStats,
    /// How to treat a handle with no local bookkeeping: register it
    /// conservatively (the single-shard collector's behaviour) or treat it
    /// as foreign and resolve it through the static domain (sharded replay).
    strict_foreign: bool,
}

impl CollectorShard {
    /// Creates a shard with the single-shard collector's conservative
    /// treatment of unknown handles.
    pub fn new(config: CgConfig) -> Self {
        Self::with_strictness(config, false)
    }

    /// Creates a shard for a multi-shard evaluation: a handle this shard
    /// does not own is *foreign* and must already be static (§3.3).
    pub fn for_shard(config: CgConfig) -> Self {
        Self::with_strictness(config, true)
    }

    fn with_strictness(config: CgConfig, strict_foreign: bool) -> Self {
        Self {
            config,
            sets: EquiliveSets::new(),
            objects: Vec::new(),
            frame_index: crate::frame_index::FrameBlockIndex::new(),
            recycle: RecycleBins::new(config.recycle_policy),
            tainted: HandleBitSet::new(),
            stats: CgStats::new(),
            strict_foreign,
        }
    }

    /// The shard's configuration.
    pub fn config(&self) -> &CgConfig {
        &self.config
    }

    /// The statistics this shard has accumulated.
    pub fn stats(&self) -> &CgStats {
        &self.stats
    }

    /// Mutable statistics access (the program-end accounting writes the
    /// thread-shared total back).
    pub fn stats_mut(&mut self) -> &mut CgStats {
        &mut self.stats
    }

    /// The shard's equilive relation (for inspection in tests).
    pub fn sets(&self) -> &EquiliveSets {
        &self.sets
    }

    /// Whether this shard owns bookkeeping for `handle`.
    pub fn owns(&self, handle: Handle) -> bool {
        self.data(handle).is_some()
    }

    /// Drops this shard's bookkeeping for a stale incarnation of `handle`
    /// whose ownership moved to another shard (a conservatively registered
    /// handle later allocated by a different thread).  Mirrors the 1-shard
    /// collector, where the re-registration simply overwrites the slot.
    pub fn forget(&mut self, handle: Handle) {
        if let Some(slot) = self.objects.get_mut(handle.index_usize()) {
            *slot = None;
        }
    }

    /// Number of dead objects awaiting reuse on this shard's recycle list.
    pub fn recycle_list_len(&self) -> usize {
        self.recycle.len()
    }

    /// Whether the shard believes `handle` is dead.
    pub fn is_tainted(&self, handle: Handle) -> bool {
        self.tainted.contains(handle)
    }

    // ------------------------------------------------------------------
    // internal helpers
    // ------------------------------------------------------------------

    fn ensure_slot(&mut self, handle: Handle) {
        if self.objects.len() <= handle.index_usize() {
            self.objects.resize(handle.index_usize() + 1, None);
        }
    }

    fn attach(&mut self, root: ElementId, key: FrameKey) {
        self.frame_index.attach(root, key);
    }

    /// Registers a (possibly recycled) object as a fresh singleton block
    /// dependent on the allocating frame.
    fn register(&mut self, handle: Handle, frame: &FrameInfo, domain: &StaticDomain) -> ElementId {
        self.ensure_slot(handle);
        let key = FrameKey::frame(frame);
        let elem = self.sets.insert(handle, key);
        if key.is_static() {
            // Conservative registration against the static pseudo-frame
            // (an unseen handle reaching `on_static_store`): the block is
            // static with no definite reason yet.
            let node = domain.insert(StaticReason::NotStatic);
            self.sets.block_mut_of_root(elem).static_node = Some(node);
            domain.register_members(&[handle], node);
        }
        self.attach(elem, key);
        self.objects[handle.index_usize()] = Some(ObjData {
            elem,
            birth_depth: frame.depth,
            alloc_thread: frame.thread,
            dead: false,
        });
        self.stats.objects_created += 1;
        elem
    }

    fn data(&self, handle: Handle) -> Option<&ObjData> {
        self.objects
            .get(handle.index_usize())
            .and_then(Option::as_ref)
    }

    /// The element of a live object, registering it conservatively against
    /// the given frame if the collector has somehow never seen it.
    fn elem_of(&mut self, handle: Handle, frame: &FrameInfo, domain: &StaticDomain) -> ElementId {
        match self.data(handle) {
            Some(data) if !data.dead => data.elem,
            Some(_) => {
                // A dead object is being used again: this can only happen if
                // the collector's deadness conclusion was wrong.
                if self.config.verify_tainted {
                    panic!("contaminated GC soundness violation: {handle} was declared dead but is still in use");
                }
                self.register(handle, frame, domain)
            }
            None => self.register(handle, frame, domain),
        }
    }

    /// Resolves a store operand: a root in this shard's forest, or — for a
    /// handle this shard does not own in strict mode — the static-domain
    /// block the §3.3 invariant guarantees it belongs to.
    fn resolve_operand(
        &mut self,
        handle: Handle,
        frame: &FrameInfo,
        domain: &StaticDomain,
    ) -> Resolved {
        if self.strict_foreign && !self.owns(handle) {
            let node = domain.node_of(handle).unwrap_or_else(|| {
                panic!(
                    "foreign store operand {handle} is not in the static domain: \
                     the stream violates the §3.3 pre-escalation invariant \
                     (every cross-thread ObjectAccess precedes the store using the object)"
                )
            });
            return Resolved::Foreign(node);
        }
        let elem = self.elem_of(handle, frame, domain);
        Resolved::Local(self.sets.find(elem))
    }

    /// Escalates the block rooted at `root` into the static domain,
    /// returning its node.  On an already-static block this only records the
    /// §3.3 upgrade (thread sharing refines an indefinite reason).
    fn escalate_root(
        &mut self,
        root: ElementId,
        reason: StaticReason,
        domain: &StaticDomain,
    ) -> StaticNodeId {
        if let Some(node) = self.sets.block_of_root(root).static_node {
            if reason == StaticReason::ThreadShared {
                domain.note_thread_shared(node);
            }
            return node;
        }
        self.frame_index.detach(root);
        let node = domain.insert(reason);
        let block = self.sets.block_mut_of_root(root);
        block.key = FrameKey::Static;
        block.static_node = Some(node);
        domain.register_members(&block.members, node);
        self.attach(root, FrameKey::Static);
        node
    }

    /// Escalates `handle`'s block per §3.3 (it is being handed across a
    /// shard boundary) and returns the domain node.  Used by the sequential
    /// sharded collector to pre-escalate a foreign store operand.
    pub fn escalate_for_sharing(
        &mut self,
        handle: Handle,
        frame: &FrameInfo,
        domain: &StaticDomain,
    ) -> StaticNodeId {
        let elem = self.elem_of(handle, frame, domain);
        let root = self.sets.find(elem);
        self.escalate_root(root, StaticReason::ThreadShared, domain)
    }

    /// Unions the blocks of two elements (the contamination step), keeping
    /// the per-frame index consistent.  Static×static pairs union in the
    /// domain instead of the shard forest.
    fn contaminate(&mut self, a: ElementId, b: ElementId, domain: &StaticDomain) {
        let ra = self.sets.find(a);
        let rb = self.sets.find(b);
        if ra == rb {
            return;
        }
        let an = self.sets.block_of_root(ra).static_node;
        let bn = self.sets.block_of_root(rb).static_node;
        if let (Some(x), Some(y)) = (an, bn) {
            if domain.union(x, y) {
                self.stats.unions += 1;
            }
            return;
        }
        self.contaminate_roots(ra, rb, domain);
    }

    /// The contamination step for two distinct roots of which at most one is
    /// static: a shard-forest union, with the merged block escalated when it
    /// lands on the static pseudo-frame.
    fn contaminate_roots(&mut self, ra: ElementId, rb: ElementId, domain: &StaticDomain) {
        self.frame_index.detach(ra);
        self.frame_index.detach(rb);
        // If exactly one side is static, the other side's members become
        // static with the merge and must be resolvable by foreign shards.
        // The merged member list is the winner's with the absorbed side
        // appended, so the newly static members survive as a contiguous
        // slice of it — no clone on this path.
        let a_static = self.sets.block_of_root(ra).static_node.is_some();
        let b_static = self.sets.block_of_root(rb).static_node.is_some();
        let a_len = self.sets.block_of_root(ra).members.len();
        let b_len = self.sets.block_of_root(rb).members.len();
        let root = self.sets.union_roots(ra, rb);
        let merged_key = self.sets.block_of_root(root).key;
        if merged_key.is_static() {
            match self.sets.block_of_root(root).static_node {
                Some(node) => {
                    if a_static != b_static {
                        let (winner_len, winner_was_static) = if root == ra {
                            (a_len, a_static)
                        } else {
                            (b_len, b_static)
                        };
                        let merged = self.sets.block_of_root(root);
                        let newly_static = if winner_was_static {
                            // The absorbed (non-static) side was appended.
                            &merged.members[winner_len..]
                        } else {
                            // The winner was the non-static side.
                            &merged.members[..winner_len]
                        };
                        domain.register_members(newly_static, node);
                        domain.absorb_nonstatic(node);
                    }
                }
                None => {
                    // Both sides were frame-dependent but on incomparable
                    // (different-thread) frames: the merged block is static
                    // (§3.3) and escalates as a whole.
                    let node = domain.insert(StaticReason::StaticReference);
                    let block = self.sets.block_mut_of_root(root);
                    block.static_node = Some(node);
                    domain.register_members(&block.members, node);
                }
            }
        }
        self.attach(root, merged_key);
        self.stats.unions += 1;
    }

    // ------------------------------------------------------------------
    // event handlers (the Collector hooks, with the domain made explicit)
    // ------------------------------------------------------------------

    /// A new object was allocated in `frame`.
    pub fn on_allocate(&mut self, handle: Handle, frame: &FrameInfo, domain: &StaticDomain) {
        self.register(handle, frame, domain);
    }

    /// The contamination event: `source` now references `target`.
    pub fn on_reference_store(
        &mut self,
        source: Handle,
        target: Handle,
        frame: &FrameInfo,
        domain: &StaticDomain,
    ) {
        self.stats.contaminations += 1;
        if self.config.fault == crate::collector::FaultInjection::SkipContamination {
            return;
        }
        if !self.strict_foreign {
            // The single-shard hot path: both operands are local by
            // construction.  Resolve each operand's root exactly once and
            // compare before touching any block payload — stores within an
            // already-merged block read nothing else.
            let source_elem = self.elem_of(source, frame, domain);
            let target_elem = self.elem_of(target, frame, domain);
            let source_root = self.sets.find(source_elem);
            let target_root = self.sets.find(target_elem);
            self.store_local_roots(source_root, target_root, domain);
            return;
        }
        let s = self.resolve_operand(source, frame, domain);
        let t = self.resolve_operand(target, frame, domain);
        self.store_resolved(s, t, domain);
    }

    /// The contamination event with pre-classified operands (the sequential
    /// sharded collector resolves foreign operands through their owning
    /// shards and passes the domain nodes here).
    pub fn on_reference_store_between(
        &mut self,
        source: StoreOperand,
        target: StoreOperand,
        frame: &FrameInfo,
        domain: &StaticDomain,
    ) {
        self.stats.contaminations += 1;
        if self.config.fault == crate::collector::FaultInjection::SkipContamination {
            return;
        }
        let s = match source {
            StoreOperand::Owned(h) => self.resolve_operand(h, frame, domain),
            StoreOperand::Static(n) => Resolved::Foreign(n),
        };
        let t = match target {
            StoreOperand::Owned(h) => self.resolve_operand(h, frame, domain),
            StoreOperand::Static(n) => Resolved::Foreign(n),
        };
        self.store_resolved(s, t, domain);
    }

    /// The store barrier for two locally-resolved roots.
    fn store_local_roots(&mut self, sr: ElementId, tr: ElementId, domain: &StaticDomain) {
        if sr == tr {
            // Already equilive: nothing can change.
            return;
        }
        let sn = self.sets.block_of_root(sr).static_node;
        let tn = self.sets.block_of_root(tr).static_node;
        if let (Some(a), Some(b)) = (sn, tn) {
            // Two static blocks: their identity lives in the domain.
            if domain.union(a, b) {
                self.stats.unions += 1;
            }
            return;
        }
        if self.config.static_opt && tn.is_some() && sn.is_none() {
            // §3.4: referencing an already-static object cannot make it any
            // more live; the referencer stays collectable.
            self.stats.static_opt_skips += 1;
            return;
        }
        self.contaminate_roots(sr, tr, domain);
    }

    /// The store barrier for operands that may be foreign static blocks.
    fn store_resolved(&mut self, s: Resolved, t: Resolved, domain: &StaticDomain) {
        match (s, t) {
            (Resolved::Local(sr), Resolved::Local(tr)) => {
                self.store_local_roots(sr, tr, domain);
            }
            (Resolved::Foreign(a), Resolved::Foreign(b)) => {
                if domain.union(a, b) {
                    self.stats.unions += 1;
                }
            }
            (Resolved::Local(root), Resolved::Foreign(t_node)) => {
                // The target is a foreign static block.
                if let Some(n) = self.sets.block_of_root(root).static_node {
                    if domain.union(n, t_node) {
                        self.stats.unions += 1;
                    }
                    return;
                }
                if self.config.static_opt {
                    self.stats.static_opt_skips += 1;
                    return;
                }
                let n = self.escalate_root(root, StaticReason::StaticReference, domain);
                if domain.union(n, t_node) {
                    self.stats.unions += 1;
                }
            }
            (Resolved::Foreign(s_node), Resolved::Local(root)) => {
                // A foreign static block now references a local object: the
                // local block is dragged into the static set.
                if let Some(n) = self.sets.block_of_root(root).static_node {
                    if domain.union(s_node, n) {
                        self.stats.unions += 1;
                    }
                    return;
                }
                let n = self.escalate_root(root, StaticReason::StaticReference, domain);
                if domain.union(s_node, n) {
                    self.stats.unions += 1;
                }
            }
        }
    }

    /// A static variable (or interpreter-internal static reference) now
    /// references `target`.
    pub fn on_static_store(&mut self, target: Handle, domain: &StaticDomain) {
        let elem = self.elem_of(target, &FrameInfo::static_frame(), domain);
        let root = self.sets.find(elem);
        self.escalate_root(root, StaticReason::StaticReference, domain);
    }

    /// The `areturn` event: `value` now belongs to `caller`.
    ///
    /// A value owned by another shard is provably a no-op: its dependent
    /// frame belongs to a different thread (or is static), and frames of
    /// different threads are never comparable, so the retarget condition
    /// cannot hold.  In strict mode the shard therefore skips it outright.
    pub fn on_return_value(
        &mut self,
        value: Handle,
        caller: &FrameInfo,
        _callee: &FrameInfo,
        domain: &StaticDomain,
    ) {
        if self.strict_foreign && !self.owns(value) {
            return;
        }
        let elem = self.elem_of(value, caller, domain);
        let root = self.sets.find(elem);
        let current = self.sets.block_of_root(root).key;
        let caller_key = FrameKey::frame(caller);
        // Adjust only if the caller's frame outlives the current dependent
        // frame (§3.1.3, areturn).
        if caller_key.strictly_older_than(current) {
            if caller_key.is_static() {
                // Returning into the static pseudo-frame (interpreter
                // internals); conservative, like a static reference with no
                // definite reason.
                self.escalate_root(root, StaticReason::NotStatic, domain);
            } else {
                self.frame_index.detach(root);
                self.sets.block_mut_of_root(root).key = caller_key;
                self.attach(root, caller_key);
            }
            self.stats.returns_retargeted += 1;
        }
    }

    /// `frame` was popped: every block dependent on it is dead (§2.2).
    pub fn on_frame_pop(&mut self, frame: &FrameInfo, heap: &mut Heap) -> CollectOutcome {
        let mut freed_objects = 0u64;
        let mut freed_bytes = 0u64;
        // Frames pop LIFO, so the bucket at this frame's depth holds exactly
        // this frame's blocks; draining it is pop-after-pop, no hash lookup
        // and no member-list clone.
        while let Some(root) = self.frame_index.pop_frame_block(frame.thread, frame.depth) {
            debug_assert_eq!(self.sets.block_of_root(root).key.frame_id(), Some(frame.id));
            // The block is dying with its frame: move the member list out
            // instead of cloning it.  A recycled member re-registers as a
            // fresh incarnation with a fresh element, so the emptied list is
            // never observed again.
            let members = std::mem::take(&mut self.sets.block_mut_of_root(root).members);
            let block_size = members.len();
            self.stats.block_sizes.record(block_size as u64);
            for handle in members {
                let data = self.objects[handle.index_usize()]
                    .as_mut()
                    .expect("block members are registered objects");
                if data.dead {
                    continue;
                }
                data.dead = true;
                self.tainted.insert(handle);
                self.stats.objects_collected += 1;
                if block_size == 1 {
                    self.stats.objects_collected_exactly += 1;
                }
                let age = data.birth_depth.saturating_sub(frame.depth);
                self.stats.age_at_death.record(age as u64);

                let slot_count = match heap.get(handle) {
                    Ok(object) if !object.is_array() => Some(object.slot_count()),
                    _ => None,
                };
                match slot_count {
                    Some(slots) if self.config.recycling => {
                        // Defer the free: the object waits on the recycle
                        // list and is handed back to the allocator later
                        // (§3.7).
                        self.recycle.push(handle, slots);
                    }
                    _ => {
                        let bytes = heap
                            .free(handle)
                            .expect("collected object must still be live");
                        freed_bytes += bytes as u64;
                        freed_objects += 1;
                    }
                }
            }
        }
        CollectOutcome {
            freed_objects,
            freed_bytes,
            marked_objects: 0,
        }
    }

    /// `thread` touched `handle` (§3.3 cross-thread detection).  Routed to
    /// the shard that owns `handle`.
    pub fn on_object_access(&mut self, handle: Handle, thread: ThreadId, domain: &StaticDomain) {
        let Some(data) = self.data(handle).copied() else {
            return;
        };
        if data.dead {
            if self.config.verify_tainted {
                panic!("contaminated GC soundness violation: dead object {handle} accessed by {thread}");
            }
            return;
        }
        if data.alloc_thread != thread {
            // The object is shared between threads; its whole block must be
            // treated as live for the program's duration (§3.3).
            let root = self.sets.find(data.elem);
            self.escalate_root(root, StaticReason::ThreadShared, domain);
        }
    }

    /// Offers a recycled corpse for an allocation (§3.7), searching this
    /// shard's bins only.
    pub fn try_recycled_alloc(
        &mut self,
        class: ClassId,
        field_count: usize,
        heap: &mut Heap,
    ) -> Option<Handle> {
        if !self.config.recycling {
            return None;
        }
        // Search the recycle structure (§3.7) under the configured policy;
        // every examined corpse is charged to `recycle_probes`.
        let taken = self
            .recycle
            .take(field_count, &mut self.stats.recycle_probes, |handle| {
                let fits = heap
                    .get(handle)
                    .map(|o| !o.is_array() && o.slot_count() >= field_count)
                    .unwrap_or(false);
                fits && heap.reinitialize(handle, class, field_count).is_ok()
            });
        if let Some(handle) = taken {
            self.tainted.remove(handle);
            self.stats.objects_recycled += 1;
            // `on_allocate` follows and re-registers the handle as a new
            // object incarnation.
            return Some(handle);
        }
        None
    }

    /// Adds this shard's live objects to an [`ObjectBreakdown`]: every
    /// static object is classified by its domain reason, everything else
    /// counts as static-by-default (mirroring the single-shard collector's
    /// accounting of objects still live at exit).
    pub fn accumulate_breakdown(&mut self, domain: &StaticDomain, out: &mut ObjectBreakdown) {
        let entries: Vec<ElementId> = self
            .objects
            .iter()
            .filter_map(|d| d.as_ref().filter(|d| !d.dead).map(|d| d.elem))
            .collect();
        for elem in entries {
            let block = self.sets.block(elem);
            match block.static_node {
                Some(node) => match domain.reason(node) {
                    StaticReason::ThreadShared => out.thread_shared += 1,
                    _ => out.static_objects += 1,
                },
                None => out.static_objects += 1,
            }
        }
    }

    // ------------------------------------------------------------------
    // resetting (§3.6) and cooperation with a traditional collector
    // ------------------------------------------------------------------

    /// Drops every object that a traditional collection found unreachable
    /// (`live[handle] == false`) from the shard's structures, counting them
    /// as "collected by MSA" (Figure 4.11).  Also purges them from the
    /// recycle list.
    pub fn purge_unreachable(&mut self, live: &[bool]) {
        for (index, slot) in self.objects.iter_mut().enumerate() {
            if let Some(data) = slot {
                if !data.dead && !live.get(index).copied().unwrap_or(false) {
                    data.dead = true;
                    self.tainted.insert(Handle::from_index(index as u32));
                    self.stats.reset_collected_by_msa += 1;
                }
            }
        }
        self.recycle
            .retain(|h| live.get(h.index_usize()).copied().unwrap_or(false));
    }

    /// Rebuilds the equilive relation from the live object graph during a
    /// traditional collection (§3.6).
    ///
    /// The traversal mirrors the paper's description: static (and
    /// interpreter) roots are considered first, then each stack frame oldest
    /// first; every object is re-associated with the frame that first reaches
    /// it and unioned with the objects it points to.  Objects whose dependent
    /// frame becomes *younger* than before are counted as "less live"
    /// (Figure 4.11).
    ///
    /// Resetting is a single-shard operation (it reads the whole root set);
    /// stale domain nodes from before the reset are simply abandoned — the
    /// member map entries are overwritten as blocks re-escalate.
    pub fn reset_from_roots(
        &mut self,
        roots: &RootSet,
        heap: &Heap,
        live: &[bool],
        domain: &StaticDomain,
    ) {
        use std::collections::HashMap;
        self.stats.resets += 1;

        // Remember each live object's old dependent frame for the
        // less-live accounting.
        let live_entries: Vec<(Handle, ElementId)> = self
            .objects
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| {
                slot.as_ref()
                    .filter(|d| !d.dead)
                    .map(|d| (Handle::from_index(index as u32), d.elem))
            })
            .collect();
        let mut old_keys: HashMap<Handle, FrameKey> = HashMap::new();
        for (handle, elem) in live_entries {
            let key = self.sets.block(elem).key;
            old_keys.insert(handle, key);
        }

        // Objects the mark phase could not reach drop out of our structures.
        self.purge_unreachable(live);

        // Dissolve all per-frame lists; every live object gets a fresh
        // element below.
        self.frame_index.clear();

        // Breadth of reassignment: handle -> new element.
        let mut new_elem: HashMap<Handle, ElementId> = HashMap::new();

        let assign = |cg: &mut Self,
                      new_elem: &mut HashMap<Handle, ElementId>,
                      handle: Handle,
                      key: FrameKey|
         -> ElementId {
            if let Some(&elem) = new_elem.get(&handle) {
                return elem;
            }
            let elem = cg.sets.insert(handle, key);
            if key.is_static() {
                let node = domain.insert(StaticReason::NotStatic);
                cg.sets.block_mut_of_root(elem).static_node = Some(node);
                domain.register_members(&[handle], node);
            }
            cg.attach(elem, key);
            new_elem.insert(handle, elem);
            if let Some(Some(data)) = cg.objects.get_mut(handle.index_usize()) {
                data.elem = elem;
            }
            elem
        };

        // Worklist traversal from a set of roots, assigning `key` to newly
        // reached objects and unioning along every edge.
        let traverse = |cg: &mut Self,
                        new_elem: &mut HashMap<Handle, ElementId>,
                        root: Handle,
                        key: FrameKey| {
            if !heap.is_live(root) {
                return;
            }
            let root_elem = assign(cg, new_elem, root, key);
            let mut worklist = vec![(root, root_elem)];
            while let Some((handle, elem)) = worklist.pop() {
                // The borrowing iterator keeps this traversal from
                // allocating a Vec per visited object.
                for target in heap.references_iter(handle) {
                    if !heap.is_live(target) {
                        continue;
                    }
                    let seen = new_elem.contains_key(&target);
                    let target_elem = assign(cg, new_elem, target, key);
                    cg.contaminate(elem, target_elem, domain);
                    if !seen {
                        worklist.push((target, target_elem));
                    }
                }
            }
        };

        // Statics and interpreter-internal references first: they pin their
        // whole reachable subgraph to the static pseudo-frame.
        for &root in roots.statics.iter().chain(roots.interpreter.iter()) {
            traverse(self, &mut new_elem, root, FrameKey::Static);
        }

        // Then each stack frame, oldest first within each thread (the order
        // `RootSet::frames` is built in).
        for frame_roots in &roots.frames {
            let key = FrameKey::frame(&frame_roots.frame);
            for &root in &frame_roots.refs {
                traverse(self, &mut new_elem, root, key);
            }
        }

        // Count objects whose liveness estimate improved (moved to a younger
        // frame than before).
        for (handle, &elem) in &new_elem {
            if let Some(old_key) = old_keys.get(handle) {
                let new_key = self.sets.block(elem).key;
                if old_key.strictly_older_than(new_key) {
                    self.stats.reset_less_live += 1;
                }
            }
        }
    }
}

/// Aggregates per-shard statistics into the totals a single-threaded run
/// would report: counters add, histograms merge bucket-wise.
///
/// `objects_thread_shared` is overwritten afterwards from the aggregated
/// [`ObjectBreakdown`] by the caller (the single-threaded collector sets it
/// at program end from its own breakdown); [`aggregate_shards`] does both
/// steps at once.
pub fn aggregate_stats<'a>(shards: impl IntoIterator<Item = &'a CgStats>) -> CgStats {
    let mut total = CgStats::new();
    for s in shards {
        total.merge_from(s);
    }
    total
}

/// Aggregates a sharded run's statistics **and** object breakdown exactly
/// the way the single-shard collector reports them at program end: counters
/// add, histograms merge, `popped` is the total collected, live objects are
/// classified by their static-domain reason, and the thread-shared total is
/// written back into the statistics.
///
/// Both the sequential [`ShardedGc`](crate::ShardedGc) and the parallel
/// trace evaluation go through this one function, so the byte-identical
/// equivalence with [`ContaminatedGc`](crate::ContaminatedGc) is pinned in
/// a single place.
pub fn aggregate_shards<'a>(
    shards: impl IntoIterator<Item = &'a mut CollectorShard>,
    domain: &StaticDomain,
) -> (CgStats, ObjectBreakdown) {
    let mut stats = CgStats::new();
    let mut breakdown = ObjectBreakdown::default();
    for shard in shards {
        breakdown.popped += shard.stats().objects_collected;
        shard.accumulate_breakdown(domain, &mut breakdown);
        stats.merge_from(shard.stats());
    }
    stats.objects_thread_shared = breakdown.thread_shared;
    (stats, breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_vm::{FrameId, MethodId};

    fn frame(id: u64, depth: usize, thread: u32) -> FrameInfo {
        FrameInfo {
            id: FrameId::new(id),
            depth,
            thread: ThreadId::new(thread),
            method: MethodId::new(0),
        }
    }

    fn h(i: u32) -> Handle {
        Handle::from_index(i)
    }

    #[test]
    fn static_static_stores_union_in_the_domain_not_the_forest() {
        let domain = StaticDomain::new();
        let mut shard = CollectorShard::new(CgConfig::default());
        let f = frame(1, 1, 0);
        shard.on_allocate(h(0), &f, &domain);
        shard.on_allocate(h(1), &f, &domain);
        shard.on_static_store(h(0), &domain);
        shard.on_static_store(h(1), &domain);
        assert_eq!(domain.block_count(), 2);
        // The store unions their domain nodes, once.
        shard.on_reference_store(h(0), h(1), &f, &domain);
        assert_eq!(shard.stats().unions, 1);
        assert_eq!(domain.block_count(), 1);
        // Repeating it is a no-op for the union count.
        shard.on_reference_store(h(0), h(1), &f, &domain);
        assert_eq!(shard.stats().unions, 1);
        assert_eq!(shard.stats().contaminations, 2);
    }

    #[test]
    fn strict_shard_resolves_foreign_operands_through_the_domain() {
        let domain = StaticDomain::new();
        // Owner shard escalates its object (the §3.3 hand-off).
        let mut owner = CollectorShard::for_shard(CgConfig::default());
        let f0 = frame(1, 1, 0);
        owner.on_allocate(h(0), &f0, &domain);
        owner.on_object_access(h(0), ThreadId::new(1), &domain);
        assert!(domain.node_of(h(0)).is_some());
        // Foreign shard stores the (static) object into its own local one:
        // with the §3.4 optimisation the local object stays collectable.
        let mut other = CollectorShard::for_shard(CgConfig::default());
        let f1 = frame(2, 1, 1);
        other.on_allocate(h(1), &f1, &domain);
        other.on_reference_store(h(1), h(0), &f1, &domain);
        assert_eq!(other.stats().static_opt_skips, 1);
        assert_eq!(other.stats().unions, 0);
        // The reverse store drags the local object into the static set.
        other.on_reference_store(h(0), h(1), &f1, &domain);
        assert_eq!(other.stats().unions, 1);
        assert!(domain.node_of(h(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "pre-escalation invariant")]
    fn strict_shard_rejects_non_static_foreign_operands() {
        let domain = StaticDomain::new();
        let mut shard = CollectorShard::for_shard(CgConfig::default());
        let f = frame(1, 1, 0);
        shard.on_allocate(h(0), &f, &domain);
        // h(9) is unknown to the shard and not in the domain.
        shard.on_reference_store(h(0), h(9), &f, &domain);
    }

    #[test]
    fn cross_thread_frame_merge_escalates_the_merged_block() {
        let domain = StaticDomain::new();
        // One shard hosting two threads (shard_count < thread count): a
        // store between their objects merges to the static pseudo-frame.
        let mut shard = CollectorShard::new(CgConfig::default());
        shard.on_allocate(h(0), &frame(1, 1, 0), &domain);
        shard.on_allocate(h(1), &frame(2, 1, 1), &domain);
        shard.on_reference_store(h(0), h(1), &frame(1, 1, 0), &domain);
        assert_eq!(shard.stats().unions, 1);
        assert_eq!(domain.block_count(), 1);
        assert!(domain.node_of(h(0)).is_some());
        assert!(domain.node_of(h(1)).is_some());
        let mut breakdown = ObjectBreakdown::default();
        shard.accumulate_breakdown(&domain, &mut breakdown);
        assert_eq!(breakdown.static_objects, 2);
    }

    #[test]
    fn aggregate_stats_sums_counters_and_histograms() {
        let mut a = CgStats::new();
        a.objects_created = 3;
        a.block_sizes.record(1);
        let mut b = CgStats::new();
        b.objects_created = 5;
        b.block_sizes.record(1);
        b.block_sizes.record(7);
        let total = aggregate_stats([&a, &b]);
        assert_eq!(total.objects_created, 8);
        assert_eq!(total.block_sizes.total(), 3);
        assert_eq!(total.block_sizes.bucket_count(0), 2);
    }
}
