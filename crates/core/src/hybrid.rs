//! The hybrid collector: contaminated GC working in concert with a
//! traditional mark-sweep collector.
//!
//! §3.6 of the thesis argues that when the traditional collector runs anyway,
//! it can *reset* the contaminated collector's structures: the mark phase
//! rediscovers exactly which frame each object is really reachable from,
//! undoing the conservatism the equilive relation accumulated.  §4.7
//! evaluates this by forcing a traditional collection every 100 000 VM
//! instructions and counting how much the reset improves things.

use cg_baseline::{trace_live, MarkSweepStats};
use cg_vm::{ClassId, CollectOutcome, Collector, FrameInfo, Handle, Heap, RootSet, ThreadId};

use crate::collector::{CgConfig, ContaminatedGc};

/// Configuration of the [`HybridCollector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridConfig {
    /// Configuration of the embedded contaminated collector.
    pub cg: CgConfig,
    /// Whether a traditional collection also resets the CG structures
    /// (§3.6).  When false the traditional collector still informs CG of the
    /// objects it sweeps (so CG never frees them twice) but the equilive
    /// relation keeps its accumulated conservatism.
    pub reset_on_collect: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            cg: CgConfig::default(),
            reset_on_collect: true,
        }
    }
}

/// Contaminated GC plus a mark-sweep backstop.
///
/// All incremental work (frame pops, contamination tracking, recycling) is
/// delegated to the embedded [`ContaminatedGc`]; full collections run a mark
/// phase, optionally reset the CG structures from the marking (§3.6), and
/// sweep whatever is unreachable.
///
/// # Example
///
/// ```
/// use cg_core::{HybridCollector, HybridConfig};
/// use cg_vm::{Program, ClassDef, MethodDef, Insn, Vm, VmConfig};
///
/// let mut program = Program::new();
/// let class = program.add_class(ClassDef::new("Obj", 1));
/// let main = program.add_method(MethodDef::new("main", 0, 1, vec![
///     Insn::New { class, dst: 0 },
///     Insn::Return { value: None },
/// ]));
/// program.set_entry(main);
///
/// // Force a traditional collection every 1000 instructions, as in §4.7.
/// let config = VmConfig::default().with_gc_every(1000);
/// let mut vm = Vm::new(program, config, HybridCollector::new(HybridConfig::default()));
/// vm.run()?;
/// # Ok::<(), cg_vm::VmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridCollector {
    cg: ContaminatedGc,
    config: HybridConfig,
    msa_stats: MarkSweepStats,
}

impl HybridCollector {
    /// Creates a hybrid collector.
    pub fn new(config: HybridConfig) -> Self {
        Self {
            cg: ContaminatedGc::with_config(config.cg),
            config,
            msa_stats: MarkSweepStats::default(),
        }
    }

    /// The embedded contaminated collector (for its statistics).
    pub fn cg(&self) -> &ContaminatedGc {
        &self.cg
    }

    /// Mutable access to the embedded contaminated collector.
    pub fn cg_mut(&mut self) -> &mut ContaminatedGc {
        &mut self.cg
    }

    /// Statistics of the traditional (mark-sweep) side.
    pub fn msa_stats(&self) -> &MarkSweepStats {
        &self.msa_stats
    }

    /// The hybrid configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }
}

impl Default for HybridCollector {
    fn default() -> Self {
        Self::new(HybridConfig::default())
    }
}

impl Collector for HybridCollector {
    fn name(&self) -> &str {
        if self.config.reset_on_collect {
            "cg+msa+reset"
        } else {
            "cg+msa"
        }
    }

    fn on_allocate(&mut self, handle: Handle, frame: &FrameInfo, heap: &Heap) {
        self.cg.on_allocate(handle, frame, heap);
    }

    fn on_reference_store(
        &mut self,
        source: Handle,
        target: Handle,
        frame: &FrameInfo,
        heap: &Heap,
    ) {
        self.cg.on_reference_store(source, target, frame, heap);
    }

    fn on_static_store(&mut self, target: Handle, heap: &Heap) {
        self.cg.on_static_store(target, heap);
    }

    fn on_return_value(&mut self, value: Handle, caller: &FrameInfo, callee: &FrameInfo) {
        self.cg.on_return_value(value, caller, callee);
    }

    fn on_frame_push(&mut self, frame: &FrameInfo) {
        self.cg.on_frame_push(frame);
    }

    fn on_frame_pop(&mut self, frame: &FrameInfo, heap: &mut Heap) -> CollectOutcome {
        self.cg.on_frame_pop(frame, heap)
    }

    fn on_object_access(&mut self, handle: Handle, thread: ThreadId, heap: &Heap) {
        self.cg.on_object_access(handle, thread, heap);
    }

    fn try_recycled_alloc(
        &mut self,
        class: ClassId,
        field_count: usize,
        frame: &FrameInfo,
        heap: &mut Heap,
    ) -> Option<Handle> {
        self.cg.try_recycled_alloc(class, field_count, frame, heap)
    }

    fn collect(&mut self, roots: &RootSet, heap: &mut Heap) -> CollectOutcome {
        // Mark.
        let live = trace_live(roots, heap);
        let marked = live.iter().filter(|&&m| m).count() as u64;

        // Reset or at least purge the contaminated collector's structures so
        // it never tries to free an object the sweep already reclaimed.
        if self.config.reset_on_collect {
            self.cg.reset_from_roots(roots, heap, &live);
        } else {
            self.cg.purge_unreachable(&live);
        }

        // Sweep.
        let victims: Vec<Handle> = heap
            .live_handles()
            .filter(|h| !live[h.index_usize()])
            .collect();
        let freed_objects = victims.len() as u64;
        let mut freed_bytes = 0u64;
        for victim in victims {
            freed_bytes += heap.free(victim).expect("victim was live") as u64;
        }

        self.msa_stats.cycles += 1;
        self.msa_stats.objects_marked += marked;
        self.msa_stats.objects_swept += freed_objects;
        self.msa_stats.bytes_swept += freed_bytes;
        self.msa_stats.peak_marked_in_cycle = self.msa_stats.peak_marked_in_cycle.max(marked);

        CollectOutcome {
            freed_objects,
            freed_bytes,
            marked_objects: marked,
        }
    }

    fn on_program_end(&mut self, roots: &RootSet, heap: &mut Heap) {
        self.cg.on_program_end(roots, heap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_vm::{ClassDef, Cond, Insn, MethodDef, Operand, Program, Vm, VmConfig};

    /// A program whose helper churns through `n` temporary objects while a
    /// long-lived static structure persists.
    fn churn_program(n: i64) -> Program {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Temp", 1));
        let s = p.add_static();
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            3,
            vec![
                Insn::Const { dst: 1, value: 0 },
                Insn::Branch {
                    cond: Cond::Ge,
                    a: Operand::Local(1),
                    b: Operand::Imm(n),
                    target: 5,
                },
                Insn::New { class: c, dst: 0 },
                Insn::Arith {
                    op: cg_vm::ArithOp::Add,
                    dst: 1,
                    a: Operand::Local(1),
                    b: Operand::Imm(1),
                },
                Insn::Jump { target: 1 },
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::PutStatic {
                    static_id: s,
                    value: 0,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        p
    }

    #[test]
    fn hybrid_names_reflect_reset_mode() {
        assert_eq!(
            HybridCollector::new(HybridConfig::default()).name(),
            "cg+msa+reset"
        );
        let no_reset = HybridConfig {
            reset_on_collect: false,
            ..HybridConfig::default()
        };
        assert_eq!(HybridCollector::new(no_reset).name(), "cg+msa");
    }

    #[test]
    fn periodic_collections_run_and_program_survives() {
        let config = VmConfig::small().with_gc_every(50);
        let mut vm = Vm::new(churn_program(200), config, HybridCollector::default());
        vm.run().expect("hybrid keeps the program alive");
        let hybrid = vm.collector();
        assert!(hybrid.msa_stats().cycles > 0);
        assert!(hybrid.cg().stats().resets > 0);
        // CG still collects the temporaries at the frame pop; the static
        // object survives.
        assert_eq!(vm.heap().live_count(), 1);
    }

    #[test]
    fn reset_mode_vs_purge_mode_both_remain_sound() {
        for reset in [true, false] {
            let config = VmConfig::small().with_gc_every(37);
            let hybrid = HybridCollector::new(HybridConfig {
                reset_on_collect: reset,
                ..HybridConfig::default()
            });
            let mut vm = Vm::new(churn_program(150), config, hybrid);
            vm.run().unwrap_or_else(|e| panic!("reset={reset}: {e}"));
            assert_eq!(vm.heap().live_count(), 1, "reset={reset}");
        }
    }

    #[test]
    fn hybrid_under_memory_pressure_sweeps_unreachable_objects() {
        // A tight heap forces allocation-failure collections; CG alone would
        // not reclaim objects that escape into a long-lived structure that
        // later becomes garbage, but the MSA backstop does.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Node", 1));
        let s = p.add_static();
        // main repeatedly overwrites the static with a freshly built pair;
        // the old pair becomes unreachable garbage that only MSA can find
        // (it is in the static set as far as CG is concerned).
        let code = vec![
            Insn::Const { dst: 2, value: 0 },
            Insn::Branch {
                cond: Cond::Ge,
                a: Operand::Local(2),
                b: Operand::Imm(300),
                target: 8,
            },
            Insn::New { class: c, dst: 0 },
            Insn::New { class: c, dst: 1 },
            Insn::PutField {
                object: 0,
                field: 0,
                value: 1,
            },
            Insn::PutStatic {
                static_id: s,
                value: 0,
            },
            Insn::Arith {
                op: cg_vm::ArithOp::Add,
                dst: 2,
                a: Operand::Local(2),
                b: Operand::Imm(1),
            },
            Insn::Jump { target: 1 },
            Insn::Return { value: None },
        ];
        let main = p.add_method(MethodDef::new("main", 0, 3, code));
        p.set_entry(main);

        let mut config = VmConfig::small();
        config.heap = cg_heap::HeapConfig::tight(2048);
        config.heap.handle_space_bytes = 1 << 22;
        let mut vm = Vm::new(p, config, HybridCollector::default());
        let outcome = vm.run().expect("hybrid survives memory pressure");
        assert_eq!(outcome.stats.objects_allocated, 600);
        let hybrid = vm.collector();
        assert!(hybrid.msa_stats().cycles > 0);
        assert!(hybrid.msa_stats().objects_swept > 100);
        assert!(hybrid.cg().stats().reset_collected_by_msa > 0);
        // Only the pairs allocated since the last collection remain live —
        // far fewer than the 600 the program created.
        assert!(
            vm.heap().live_count() < 200,
            "live = {}",
            vm.heap().live_count()
        );
        // And of those, only the final pair is actually reachable.
        let live = cg_baseline::trace_live(&vm.build_roots(), vm.heap());
        assert_eq!(live.iter().filter(|&&m| m).count(), 2);
    }

    #[test]
    fn reset_improves_liveness_information() {
        // Build the paper's "static finger" pathology: a static object
        // touches a fresh object and then points away, every iteration.
        // Without resetting, every touched object stays static; a reset
        // discovers they are plain garbage.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Node", 1));
        let s = p.add_static();
        let code = vec![
            Insn::New { class: c, dst: 0 },
            Insn::PutStatic {
                static_id: s,
                value: 0,
            },
            Insn::Const { dst: 2, value: 0 },
            Insn::Branch {
                cond: Cond::Ge,
                a: Operand::Local(2),
                b: Operand::Imm(100),
                target: 11,
            },
            Insn::New { class: c, dst: 1 },
            Insn::GetStatic {
                static_id: s,
                dst: 0,
            },
            Insn::PutField {
                object: 0,
                field: 0,
                value: 1,
            },
            Insn::LoadNull { dst: 3 },
            Insn::PutField {
                object: 0,
                field: 0,
                value: 3,
            },
            Insn::Arith {
                op: cg_vm::ArithOp::Add,
                dst: 2,
                a: Operand::Local(2),
                b: Operand::Imm(1),
            },
            Insn::Jump { target: 3 },
            Insn::Return { value: None },
        ];
        let main = p.add_method(MethodDef::new("main", 0, 4, code));
        p.set_entry(main);

        let config = VmConfig::small().with_gc_every(100);
        let mut vm = Vm::new(p, config, HybridCollector::default());
        vm.run().expect("program runs");
        let hybrid = vm.collector();
        // The periodic traditional collections caught the statically
        // "contaminated" garbage and reset structures.
        assert!(hybrid.cg().stats().resets > 0);
        assert!(hybrid.msa_stats().objects_swept > 50);
        assert!(hybrid.cg().stats().reset_collected_by_msa > 50);
        // Everything allocated before the last traditional collection has
        // been reclaimed; only the static root plus the handful of nodes
        // allocated since then remain.
        assert!(
            vm.heap().live_count() <= 20,
            "live = {}",
            vm.heap().live_count()
        );
        let live = cg_baseline::trace_live(&vm.build_roots(), vm.heap());
        assert_eq!(live.iter().filter(|&&m| m).count(), 1);
    }
}
