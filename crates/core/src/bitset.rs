//! A dense bitset keyed by handle index.
//!
//! The collector's "tainted" list (§3.1.4) — objects declared dead — is
//! consulted on the soundness-verification path and updated on every
//! frame-pop collection and every recycled allocation.  The seed kept it in
//! a `HashSet<Handle>`; handle indices are dense (the heap mints them
//! sequentially), so one bit per handle is both smaller and branch-free to
//! probe.

use cg_vm::Handle;

const BITS: usize = u64::BITS as usize;

/// A growable bitset over dense handle indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HandleBitSet {
    words: Vec<u64>,
    len: usize,
}

impl HandleBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of handles currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `handle` is in the set.
    #[inline]
    pub fn contains(&self, handle: Handle) -> bool {
        let index = handle.index_usize();
        self.words
            .get(index / BITS)
            .is_some_and(|w| w & (1 << (index % BITS)) != 0)
    }

    /// Inserts `handle`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, handle: Handle) -> bool {
        let index = handle.index_usize();
        let word = index / BITS;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1 << (index % BITS);
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `handle`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, handle: Handle) -> bool {
        let index = handle.index_usize();
        let Some(word) = self.words.get_mut(index / BITS) else {
            return false;
        };
        let mask = 1 << (index % BITS);
        let present = *word & mask != 0;
        *word &= !mask;
        self.len -= present as usize;
        present
    }

    /// Removes every handle from the set.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> Handle {
        Handle::from_index(i)
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut set = HandleBitSet::new();
        assert!(set.is_empty());
        assert!(!set.contains(h(5)));
        assert!(set.insert(h(5)));
        assert!(!set.insert(h(5)));
        assert!(set.contains(h(5)));
        assert_eq!(set.len(), 1);
        assert!(set.remove(h(5)));
        assert!(!set.remove(h(5)));
        assert!(!set.contains(h(5)));
        assert!(set.is_empty());
    }

    #[test]
    fn grows_across_word_boundaries() {
        let mut set = HandleBitSet::new();
        for i in [0u32, 63, 64, 65, 127, 128, 1000] {
            assert!(set.insert(h(i)));
        }
        assert_eq!(set.len(), 7);
        for i in [0u32, 63, 64, 65, 127, 128, 1000] {
            assert!(set.contains(h(i)));
        }
        assert!(!set.contains(h(999)));
        assert!(!set.contains(h(1001)));
        assert!(!set.contains(h(100_000)));
    }

    #[test]
    fn remove_beyond_capacity_is_noop() {
        let mut set = HandleBitSet::new();
        assert!(!set.remove(h(1 << 20)));
        set.insert(h(3));
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(h(3)));
    }

    mod properties {
        use super::*;
        use cg_testutil::TestRng;
        use std::collections::HashSet;

        /// The bitset behaves exactly like a `HashSet<Handle>` under random
        /// insert/remove/query sequences (the representation it replaced).
        #[test]
        fn matches_hash_set_model() {
            for seed in 0..32u64 {
                let mut rng = TestRng::new(seed);
                let mut set = HandleBitSet::new();
                let mut model: HashSet<u32> = HashSet::new();
                for _ in 0..rng.gen_range(10, 400) {
                    let index = rng.gen_range(0, 300) as u32;
                    match rng.gen_range(0, 3) {
                        0 => assert_eq!(set.insert(h(index)), model.insert(index)),
                        1 => assert_eq!(set.remove(h(index)), model.remove(&index)),
                        _ => assert_eq!(set.contains(h(index)), model.contains(&index)),
                    }
                    assert_eq!(set.len(), model.len(), "seed {seed}");
                }
            }
        }
    }
}
