//! The equilive relation: which frame each block of objects depends on.
//!
//! The paper's central data structure is an equivalence relation over heap
//! objects — the *equilive* relation — maintained with union/find.  Every
//! block (equivalence class) carries a *dependent frame*: the oldest frame
//! that can still reach any of its members.  When that frame pops, every
//! member is dead (§2.2).

use cg_unionfind::{ElementId, MergePayload, TaggedSets};
use cg_vm::{FrameId, FrameInfo, Handle, ThreadId};

use crate::static_domain::StaticNodeId;

/// The frame a block depends on.
///
/// `Static` is the paper's "frame 0": the conceptual oldest frame holding all
/// static references, only popped when the program finishes.  Blocks that are
/// `Static` are never collected by the contaminated collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKey {
    /// Depends on the static pseudo-frame (never collected).
    Static,
    /// Depends on a real stack frame.
    Frame {
        /// The frame's unique identity.
        id: FrameId,
        /// The frame's depth within its thread (smaller = older).
        depth: usize,
        /// The thread owning the frame.
        thread: ThreadId,
    },
}

impl FrameKey {
    /// Builds the key for a concrete frame.
    pub fn frame(info: &FrameInfo) -> Self {
        if info.id.is_static() {
            FrameKey::Static
        } else {
            FrameKey::Frame {
                id: info.id,
                depth: info.depth,
                thread: info.thread,
            }
        }
    }

    /// Whether this is the static pseudo-frame.
    pub fn is_static(self) -> bool {
        matches!(self, FrameKey::Static)
    }

    /// The frame id, if this names a real frame.
    pub fn frame_id(self) -> Option<FrameId> {
        match self {
            FrameKey::Static => None,
            FrameKey::Frame { id, .. } => Some(id),
        }
    }

    /// The depth, if this names a real frame.
    pub fn depth(self) -> Option<usize> {
        match self {
            FrameKey::Static => None,
            FrameKey::Frame { depth, .. } => Some(depth),
        }
    }

    /// Combines two dependent frames into the dependent frame of a merged
    /// block: the *older* of the two (§2.2, "the new block is dependent on
    /// the older of the existing blocks' dependent frames").
    ///
    /// Frames of different threads are not comparable; since an object shared
    /// between threads must be treated as static anyway (§3.3), the merge of
    /// incomparable frames is conservatively `Static`.
    pub fn older(self, other: FrameKey) -> FrameKey {
        match (self, other) {
            (FrameKey::Static, _) | (_, FrameKey::Static) => FrameKey::Static,
            (
                FrameKey::Frame {
                    id: ia,
                    depth: da,
                    thread: ta,
                },
                FrameKey::Frame {
                    id: ib,
                    depth: db,
                    thread: tb,
                },
            ) => {
                if ta != tb {
                    FrameKey::Static
                } else if da <= db {
                    FrameKey::Frame {
                        id: ia,
                        depth: da,
                        thread: ta,
                    }
                } else {
                    FrameKey::Frame {
                        id: ib,
                        depth: db,
                        thread: tb,
                    }
                }
            }
        }
    }

    /// Whether `self` is strictly older (will pop strictly later) than
    /// `other`.  Static is older than everything but itself; frames of
    /// different threads are treated as not older (the caller must demote to
    /// static instead).
    pub fn strictly_older_than(self, other: FrameKey) -> bool {
        match (self, other) {
            (FrameKey::Static, FrameKey::Static) => false,
            (FrameKey::Static, _) => true,
            (_, FrameKey::Static) => false,
            (
                FrameKey::Frame {
                    depth: da,
                    thread: ta,
                    ..
                },
                FrameKey::Frame {
                    depth: db,
                    thread: tb,
                    ..
                },
            ) => ta == tb && da < db,
        }
    }
}

/// Why a block was (or was not) demoted to the static pseudo-frame.  Used to
/// report the static / thread-shared breakdown of Figures 4.2–4.4 and A.1.
///
/// The variants are declared in lattice order — `NotStatic` (no definite
/// reason yet) below `StaticReference` below `ThreadShared` — and the
/// derived `Ord` *is* that lattice: merging the reasons of two blocks takes
/// the maximum (see [`merge_reasons`](crate::static_domain::merge_reasons)),
/// which makes concurrent reason upgrades commute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StaticReason {
    /// The block is not static.
    NotStatic,
    /// A static variable (or interpreter static reference) reaches the block.
    StaticReference,
    /// The block was accessed by more than one thread (§3.3).
    ThreadShared,
}

/// The per-block payload carried on every equilive set root.
///
/// A static block's identity and reason live in the shared
/// [`StaticDomain`](crate::StaticDomain): `static_node` points at the
/// block's domain node, and two static blocks are "the same block" iff their
/// nodes are in the same domain set.  Shards never union static blocks in
/// their own forests — that is what lets the static set be shared across
/// shards while everything else stays shard-private.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockInfo {
    /// The frame this block depends on.
    pub key: FrameKey,
    /// The block's node in the shared static domain; `Some` iff `key` is
    /// [`FrameKey::Static`].
    pub static_node: Option<StaticNodeId>,
    /// Every object in the block.
    pub members: Vec<Handle>,
}

impl BlockInfo {
    /// Creates a singleton block for a freshly allocated object.
    ///
    /// The caller escalates the block into the static domain (assigning
    /// `static_node`) if `key` is already static.
    pub fn singleton(handle: Handle, key: FrameKey) -> Self {
        BlockInfo {
            key,
            static_node: None,
            members: vec![handle],
        }
    }

    /// Number of objects in the block.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the block has no members (never true for blocks created
    /// through the collector, but part of the collection-friendly API).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the block is static (dependent on frame 0).
    pub fn is_static(&self) -> bool {
        self.key.is_static()
    }
}

impl MergePayload for BlockInfo {
    fn merge(&mut self, absorbed: Self) {
        self.key = self.key.older(absorbed.key);
        // At most one side is static: the store barrier routes static×static
        // pairs to the shared domain instead of unioning them in the shard
        // forest.  When the merged key becomes static with no node (one side
        // was static, or the frames were thread-incomparable), the barrier
        // escalates the merged block right after this merge.
        debug_assert!(
            self.static_node.is_none() || absorbed.static_node.is_none(),
            "static blocks merge in the static domain, not the shard forest"
        );
        self.static_node = self.static_node.or(absorbed.static_node);
        let mut absorbed_members = absorbed.members;
        self.members.append(&mut absorbed_members);
    }
}

/// The equilive relation itself: a tagged union/find forest over the
/// program's objects, keyed by an element id per *object incarnation* (a
/// recycled object gets a fresh element).
#[derive(Debug, Clone)]
pub struct EquiliveSets {
    sets: TaggedSets<BlockInfo>,
}

impl Default for EquiliveSets {
    fn default() -> Self {
        Self {
            sets: TaggedSets::new(),
        }
    }
}

impl EquiliveSets {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements (object incarnations) ever inserted.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no elements have been inserted.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Number of distinct blocks.
    pub fn block_count(&self) -> usize {
        self.sets.set_count()
    }

    /// Inserts a fresh singleton block for `handle`, dependent on `key`.
    pub fn insert(&mut self, handle: Handle, key: FrameKey) -> ElementId {
        self.sets.insert(BlockInfo::singleton(handle, key))
    }

    /// The representative element of `elem`'s block.
    pub fn find(&mut self, elem: ElementId) -> ElementId {
        self.sets.find(elem)
    }

    /// Whether two elements are in the same block.
    pub fn same_block(&mut self, a: ElementId, b: ElementId) -> bool {
        self.sets.same_set(a, b)
    }

    /// Unions the blocks of `a` and `b`; the merged block depends on the
    /// older of the two dependent frames.  Returns the representative of the
    /// merged block.
    pub fn union(&mut self, a: ElementId, b: ElementId) -> ElementId {
        self.sets.union(a, b).root
    }

    /// Unions the blocks of two elements already known to be distinct
    /// current roots, skipping the finds (the store barrier resolves each
    /// operand's root exactly once per event).
    pub fn union_roots(&mut self, ra: ElementId, rb: ElementId) -> ElementId {
        self.sets.union_roots(ra, rb).root
    }

    /// The block containing `elem`.
    pub fn block(&mut self, elem: ElementId) -> &BlockInfo {
        self.sets.payload(elem).expect("element exists")
    }

    /// The block whose representative is `root`, without a find.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a current set representative.
    pub fn block_of_root(&self, root: ElementId) -> &BlockInfo {
        self.sets
            .payload_of_root(root)
            .expect("root carries a block")
    }

    /// Mutable access to the block containing `elem`.
    pub fn block_mut(&mut self, elem: ElementId) -> &mut BlockInfo {
        self.sets.payload_mut(elem).expect("element exists")
    }

    /// Mutable access to the block whose representative is `root`, without
    /// a find.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a current set representative.
    pub fn block_mut_of_root(&mut self, root: ElementId) -> &mut BlockInfo {
        self.sets
            .payload_mut_of_root(root)
            .expect("root carries a block")
    }

    /// Iterates over `(root, block)` pairs for every current block, including
    /// blocks whose members are already dead.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (ElementId, &BlockInfo)> + '_ {
        self.sets.iter_sets()
    }

    /// The maximum union-by-rank rank in the underlying forest (the paper
    /// observes this stays small, justifying the packed handle of §3.5).
    pub fn max_rank(&self) -> u8 {
        self.sets.forest().max_rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_vm::MethodId;

    fn frame_key(id: u64, depth: usize) -> FrameKey {
        FrameKey::Frame {
            id: FrameId::new(id),
            depth,
            thread: ThreadId::MAIN,
        }
    }

    fn handle(i: u32) -> Handle {
        Handle::from_index(i)
    }

    #[test]
    fn frame_key_from_frame_info() {
        let info = FrameInfo {
            id: FrameId::new(4),
            depth: 2,
            thread: ThreadId::MAIN,
            method: MethodId::new(0),
        };
        assert_eq!(FrameKey::frame(&info), frame_key(4, 2));
        assert_eq!(
            FrameKey::frame(&FrameInfo::static_frame()),
            FrameKey::Static
        );
        assert!(FrameKey::Static.is_static());
        assert_eq!(FrameKey::Static.frame_id(), None);
        assert_eq!(frame_key(4, 2).frame_id(), Some(FrameId::new(4)));
        assert_eq!(frame_key(4, 2).depth(), Some(2));
    }

    #[test]
    fn older_prefers_smaller_depth() {
        let old = frame_key(1, 1);
        let young = frame_key(9, 5);
        assert_eq!(old.older(young), old);
        assert_eq!(young.older(old), old);
        assert_eq!(old.older(old), old);
    }

    #[test]
    fn older_with_static_is_static() {
        let f = frame_key(2, 3);
        assert_eq!(FrameKey::Static.older(f), FrameKey::Static);
        assert_eq!(f.older(FrameKey::Static), FrameKey::Static);
    }

    #[test]
    fn older_across_threads_is_static() {
        let a = FrameKey::Frame {
            id: FrameId::new(1),
            depth: 1,
            thread: ThreadId::new(0),
        };
        let b = FrameKey::Frame {
            id: FrameId::new(2),
            depth: 2,
            thread: ThreadId::new(1),
        };
        assert_eq!(a.older(b), FrameKey::Static);
    }

    #[test]
    fn strictly_older_ordering() {
        assert!(FrameKey::Static.strictly_older_than(frame_key(1, 1)));
        assert!(!FrameKey::Static.strictly_older_than(FrameKey::Static));
        assert!(frame_key(1, 1).strictly_older_than(frame_key(2, 3)));
        assert!(!frame_key(2, 3).strictly_older_than(frame_key(1, 1)));
        assert!(!frame_key(1, 1).strictly_older_than(FrameKey::Static));
        let other_thread = FrameKey::Frame {
            id: FrameId::new(5),
            depth: 9,
            thread: ThreadId::new(7),
        };
        assert!(!frame_key(1, 1).strictly_older_than(other_thread));
    }

    #[test]
    fn block_merge_takes_older_frame_and_appends_members() {
        let mut a = BlockInfo::singleton(handle(0), frame_key(3, 3));
        let b = BlockInfo::singleton(handle(1), frame_key(2, 2));
        a.merge(b);
        assert_eq!(a.key, frame_key(2, 2));
        assert_eq!(a.members, vec![handle(0), handle(1)]);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(!a.is_static());
    }

    #[test]
    fn block_merge_inherits_the_static_side_node() {
        let mut a = BlockInfo::singleton(handle(0), FrameKey::Static);
        a.static_node = Some(7);
        let b = BlockInfo::singleton(handle(1), frame_key(1, 1));
        a.merge(b);
        assert!(a.is_static());
        assert_eq!(a.static_node, Some(7));
        // Symmetric: the non-static winner inherits the absorbed node.
        let mut c = BlockInfo::singleton(handle(2), frame_key(1, 1));
        let mut d = BlockInfo::singleton(handle(3), FrameKey::Static);
        d.static_node = Some(9);
        c.merge(d);
        assert!(c.is_static());
        assert_eq!(c.static_node, Some(9));
    }

    #[test]
    fn block_merge_across_threads_goes_static_pending_escalation() {
        let mut a = BlockInfo::singleton(
            handle(0),
            FrameKey::Frame {
                id: FrameId::new(1),
                depth: 1,
                thread: ThreadId::new(0),
            },
        );
        let b = BlockInfo::singleton(
            handle(1),
            FrameKey::Frame {
                id: FrameId::new(2),
                depth: 1,
                thread: ThreadId::new(1),
            },
        );
        a.merge(b);
        // Thread-incomparable frames merge to the static pseudo-frame; the
        // store barrier escalates the block into the domain right after.
        assert!(a.is_static());
        assert_eq!(a.static_node, None);
    }

    #[test]
    fn equilive_union_follows_older_frame() {
        let mut eq = EquiliveSets::new();
        let a = eq.insert(handle(0), frame_key(5, 5));
        let b = eq.insert(handle(1), frame_key(2, 2));
        let c = eq.insert(handle(2), frame_key(7, 7));
        assert_eq!(eq.block_count(), 3);
        eq.union(a, b);
        assert_eq!(eq.block(a).key, frame_key(2, 2));
        assert!(eq.same_block(a, b));
        assert!(!eq.same_block(a, c));
        eq.union(c, a);
        assert_eq!(eq.block(c).key, frame_key(2, 2));
        assert_eq!(eq.block(c).len(), 3);
        assert_eq!(eq.block_count(), 1);
        assert_eq!(eq.len(), 3);
        assert!(!eq.is_empty());
        assert!(eq.max_rank() <= 2);
    }

    #[test]
    fn iter_blocks_covers_all_members() {
        let mut eq = EquiliveSets::new();
        let a = eq.insert(handle(0), frame_key(1, 1));
        let _b = eq.insert(handle(1), frame_key(2, 2));
        let c = eq.insert(handle(2), frame_key(3, 3));
        eq.union(a, c);
        let total: usize = eq.iter_blocks().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(eq.iter_blocks().count(), 2);
    }

    #[test]
    fn block_mut_allows_retargeting() {
        let mut eq = EquiliveSets::new();
        let a = eq.insert(handle(0), frame_key(4, 4));
        eq.block_mut(a).key = FrameKey::Static;
        eq.block_mut(a).static_node = Some(0);
        assert!(eq.block(a).is_static());
        assert_eq!(eq.block(a).static_node, Some(0));
    }
}
