//! The static domain: the one piece of collector state shared across shards.
//!
//! The paper's design is naturally per-thread — each thread owns its frame
//! stack and the equilive blocks dependent on those frames — and the only
//! cross-thread coupling is the §3.3 rule: an object reachable from a static
//! variable, or touched by more than one thread, must be treated as live for
//! the rest of the program.  The sharded collector makes that coupling
//! explicit: every [`CollectorShard`](crate::CollectorShard) keeps its own
//! union/find forest, frame index, tainted set and recycle bins, and the
//! *static set* alone lives here, shared by every shard.
//!
//! A shard never unions blocks across shard boundaries.  Instead, a block
//! that becomes static is *escalated*: it gets a node in this domain's own
//! union/find forest, its members are registered in the handle → node map
//! (so a store executed by a foreign thread can resolve them), and all
//! further identity questions about it — "are these two static blocks the
//! same block?", "why is this block static?" — are answered by the domain.
//! Cross-shard stores therefore reduce to unions of *domain nodes*, which is
//! both rare (escalation happens once per block) and cheap.
//!
//! # Two implementations
//!
//! The domain is a [`DomainImpl`] switch over two behaviourally-equivalent
//! representations, selected by [`CgConfig::domain_impl`](crate::CgConfig):
//!
//! * [`DomainImpl::Atomic`] (the default) — a lock-free
//!   [`AtomicForest`] for block identity, one
//!   atomic reason word per node, and a striped-lock members map.  Unions
//!   are CAS-linearised, finds are wait-free, and no operation takes a
//!   global lock, so shards on many cores no longer serialise on the
//!   domain.
//! * [`DomainImpl::Mutex`] — the original single-structure model behind an
//!   `RwLock`, kept as the differential reference the fuzzer and the
//!   stress tests drive against the atomic implementation.  Read-only
//!   queries (`same_block`, `reason`, `node_of`, the stats accessors) take
//!   the shared lock and use compression-free finds; only the mutating
//!   operations take the exclusive lock.
//!
//! # Memory-ordering contract (atomic implementation)
//!
//! *Which results may be stale, and why that is sound.*  The domain's state
//! is **monotone**: nodes are only ever created, sets only ever merge, and
//! a node's reason only moves up the `NotStatic < StaticReference <
//! ThreadShared` lattice (thread-sharing notes are the one conditional
//! step, and they are CAS-linearised).  §3.3 is what makes monotone state
//! sufficient — a block that enters the static set stays in it for the rest
//! of the program — so a reader that observes a *former* root, or a reason
//! that a racing upgrade is still propagating, observes a true earlier
//! state of the same monotonically-growing relation:
//!
//! * [`StaticDomain::same_block`] is linearisable (it re-validates the
//!   first root before answering "different").
//! * [`StaticDomain::node_of`] and the node returned by
//!   [`StaticDomain::union`]-adjacent paths may name a node that has since
//!   been absorbed; any later `find` through it reaches the current root.
//! * [`StaticDomain::reason`] may lag an in-flight concurrent upgrade; once
//!   the shard threads join (which is when statistics are aggregated) all
//!   reads are exact.
//!
//! Reason updates follow a *flow-join* protocol: every writer updates the
//! cell of the root it resolved, then re-checks that the node is still a
//! root (`SeqCst`, forming a single total order with the link CAS inside
//! [`AtomicForest::try_union`](cg_unionfind::AtomicForest::try_union)); if
//! a union absorbed that root in the meantime, the writer re-joins the
//! cell's accumulated value into the new root.  The union path symmetrically
//! re-reads the loser's cell *after* the link.  Between the two, no upgrade
//! can be stranded on a stale root, and because [`merge_reasons`] is a
//! commutative, associative, idempotent join, the order in which concurrent
//! upgrades land is irrelevant.
//!
//! Determinism: the number of *effective* domain unions equals the number of
//! escalated blocks minus the number of final static blocks, and the merged
//! reason of a static block is the lattice join of its constituents' reasons
//! — both independent of the order concurrent shards perform the unions in.
//! That is what makes the aggregated `CgStats` of a parallel sharded
//! evaluation byte-identical to a single-threaded replay.
//!
//! # `Clone` snapshot semantics
//!
//! `Clone` takes a *point-in-time copy*: under the mutex implementation it
//! holds the lock, so the copy is globally consistent; under the atomic
//! implementation each word, reason cell and members stripe is read
//! atomically but one at a time, so a clone raced by concurrent mutation is
//! a monotone cut — every union it contains is fully applied or absent, and
//! every reason it contains was held at some point.  The copy is also
//! self-contained: its element count is fixed at the start of the copy, and
//! a racing link from a copied node to a node created after that point is
//! replaced by a fresh root during the copy, so lookups inside the clone
//! never leave its own element range.  Clone quiescent state (as the
//! collector does: snapshots happen between evaluations) and the copy is
//! exact.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

use cg_unionfind::{AtomicForest, PackedForest};
use cg_vm::Handle;

use crate::equilive::StaticReason;

/// Identity of one escalated (static) block inside the domain.
pub type StaticNodeId = u32;

/// Which [`StaticDomain`] implementation a collector uses.
///
/// Both implementations are behaviourally equivalent (the fuzzer asserts
/// identical `CgStats`/`ObjectBreakdown` across them); the atomic one is
/// the production default, the mutex one the differential model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum DomainImpl {
    /// Lock-free forest + striped members map (the default).
    #[default]
    Atomic,
    /// The original global-lock model, retained as the reference.
    Mutex,
}

/// Merges the reasons of two static blocks: the join of the
/// `NotStatic < StaticReference < ThreadShared` lattice.
///
/// This is a commutative, associative, **idempotent** maximum (property
/// tested in `tests/concurrent_domain.rs`), which is what makes concurrent
/// reason upgrades commute: however racing shards interleave their unions
/// and upgrades, a block's final reason is the join of everything that was
/// ever joined into it.
pub fn merge_reasons(a: StaticReason, b: StaticReason) -> StaticReason {
    a.max(b)
}

// ---------------------------------------------------------------------
// mutex model (the differential reference)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct DomainInner {
    /// Union/find over escalated blocks.
    forest: PackedForest,
    /// Indexed by node id; authoritative at set roots.
    reasons: Vec<StaticReason>,
    /// Every object belonging to an escalated block, by the node it was
    /// registered under (resolve with a find — nodes merge).
    members: HashMap<Handle, StaticNodeId>,
    /// Blocks ever escalated into the domain (diagnostic).
    promotions: u64,
}

/// The original model: one structure behind an `RwLock`.  Mutating
/// operations take the exclusive lock; queries take the shared lock and use
/// compression-free finds, so concurrent readers never serialise on each
/// other.
#[derive(Debug, Default)]
struct MutexDomain {
    inner: RwLock<DomainInner>,
}

impl MutexDomain {
    fn write(&self) -> std::sync::RwLockWriteGuard<'_, DomainInner> {
        self.inner.write().expect("static domain lock poisoned")
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, DomainInner> {
        self.inner.read().expect("static domain lock poisoned")
    }

    fn insert(&self, reason: StaticReason) -> StaticNodeId {
        let mut inner = self.write();
        let node = inner.forest.make_set();
        debug_assert_eq!(node as usize, inner.reasons.len());
        inner.reasons.push(reason);
        inner.promotions += 1;
        node
    }

    fn union(&self, a: StaticNodeId, b: StaticNodeId) -> bool {
        let mut inner = self.write();
        let ra = inner.forest.find(a);
        let rb = inner.forest.find(b);
        if ra == rb {
            return false;
        }
        let merged = merge_reasons(inner.reasons[ra as usize], inner.reasons[rb as usize]);
        let outcome = inner.forest.union_roots(ra, rb);
        inner.reasons[outcome.root as usize] = merged;
        true
    }

    fn same_block(&self, a: StaticNodeId, b: StaticNodeId) -> bool {
        let inner = self.read();
        inner.forest.find_immutable(a) == inner.forest.find_immutable(b)
    }

    fn reason(&self, node: StaticNodeId) -> StaticReason {
        let inner = self.read();
        inner.reasons[inner.forest.find_immutable(node) as usize]
    }

    fn note_thread_shared(&self, node: StaticNodeId) {
        let mut inner = self.write();
        let root = inner.forest.find(node);
        if inner.reasons[root as usize] == StaticReason::NotStatic {
            inner.reasons[root as usize] = StaticReason::ThreadShared;
        }
    }

    fn absorb_nonstatic(&self, node: StaticNodeId) {
        let mut inner = self.write();
        let root = inner.forest.find(node);
        let joined = merge_reasons(inner.reasons[root as usize], StaticReason::StaticReference);
        inner.reasons[root as usize] = joined;
    }

    fn register_members(&self, handles: &[Handle], node: StaticNodeId) {
        let mut inner = self.write();
        for &handle in handles {
            inner.members.insert(handle, node);
        }
    }

    fn node_of(&self, handle: Handle) -> Option<StaticNodeId> {
        let inner = self.read();
        let node = *inner.members.get(&handle)?;
        Some(inner.forest.find_immutable(node))
    }
}

// ---------------------------------------------------------------------
// atomic model (the production default)
// ---------------------------------------------------------------------

/// Encoded `StaticReason` for the atomic cells, in lattice order so
/// `fetch_max` *is* [`merge_reasons`].
const NOT_STATIC: u8 = 0;
const STATIC_REFERENCE: u8 = 1;
const THREAD_SHARED: u8 = 2;

fn encode_reason(reason: StaticReason) -> u8 {
    match reason {
        StaticReason::NotStatic => NOT_STATIC,
        StaticReason::StaticReference => STATIC_REFERENCE,
        StaticReason::ThreadShared => THREAD_SHARED,
    }
}

fn decode_reason(bits: u8) -> StaticReason {
    match bits {
        NOT_STATIC => StaticReason::NotStatic,
        STATIC_REFERENCE => StaticReason::StaticReference,
        _ => StaticReason::ThreadShared,
    }
}

/// Per-node reason cells in the same 32-segment ladder as
/// [`AtomicForest`]'s words: segment `k` holds the `2^k` cells for nodes
/// `[2^k - 1, 2^(k+1) - 2]`, allocated on first touch and pre-filled with
/// `NOT_STATIC` (the lattice bottom), so growth never moves a cell under a
/// concurrent reader.
#[derive(Default)]
struct ReasonCells {
    segments: [OnceLock<Box<[AtomicU8]>>; 32],
}

impl ReasonCells {
    fn cell(&self, node: StaticNodeId) -> &AtomicU8 {
        let segment = (node + 1).ilog2() as usize;
        let cells = self.segments[segment].get_or_init(|| {
            (0..1usize << segment)
                .map(|_| AtomicU8::new(NOT_STATIC))
                .collect()
        });
        &cells[(node + 1) as usize - (1usize << segment)]
    }
}

/// Number of stripes in the members map.  Escalation traffic hashes
/// handles across this many independent `Mutex<HashMap>` shards; 64 is far
/// above any realistic shard-thread count, so two threads registering or
/// resolving members rarely touch the same lock.
const MEMBER_STRIPES: usize = 64;

/// The striped-lock `Handle -> StaticNodeId` map.
struct StripedMembers {
    stripes: [Mutex<HashMap<Handle, StaticNodeId>>; MEMBER_STRIPES],
}

impl Default for StripedMembers {
    fn default() -> Self {
        Self {
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

impl StripedMembers {
    fn stripe(&self, handle: Handle) -> &Mutex<HashMap<Handle, StaticNodeId>> {
        &self.stripes[handle.index_usize() % MEMBER_STRIPES]
    }

    fn lock(&self, handle: Handle) -> std::sync::MutexGuard<'_, HashMap<Handle, StaticNodeId>> {
        self.stripe(handle).lock().expect("members stripe poisoned")
    }

    fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("members stripe poisoned").len())
            .sum()
    }
}

/// The lock-free domain: block identity in an [`AtomicForest`], one atomic
/// reason cell per node (authoritative at roots, flowed upward when roots
/// merge), members striped across [`MEMBER_STRIPES`] locks.
#[derive(Default)]
struct AtomicDomain {
    forest: AtomicForest,
    reasons: ReasonCells,
    members: StripedMembers,
    promotions: AtomicU64,
}

impl std::fmt::Debug for AtomicDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicDomain")
            .field("forest", &self.forest)
            .field("promotions", &self.promotions.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AtomicDomain {
    fn insert(&self, reason: StaticReason) -> StaticNodeId {
        let node = self.forest.make_set();
        // The node is unpublished until the caller hands it out, so a plain
        // store (no join) is safe here.
        self.reasons
            .cell(node)
            .store(encode_reason(reason), Ordering::Release);
        self.promotions.fetch_add(1, Ordering::AcqRel);
        node
    }

    /// Joins `bits` into the reason of the class currently containing
    /// `node` — the flow-join protocol.  After updating the cell of the
    /// root it resolved, the writer re-checks rootness with `SeqCst` (one
    /// total order with the union link CAS): if the root was absorbed in
    /// the window, the accumulated cell value is re-joined into the new
    /// root, so no upgrade is ever stranded on a stale root.
    fn flow_join(&self, node: StaticNodeId, mut bits: u8) {
        let mut root = self.forest.find(node);
        loop {
            let cell = self.reasons.cell(root);
            cell.fetch_max(bits, Ordering::SeqCst);
            if self.forest.is_root(root) {
                return;
            }
            bits = cell.load(Ordering::SeqCst);
            root = self.forest.find(root);
        }
    }

    fn union(&self, a: StaticNodeId, b: StaticNodeId) -> bool {
        match self.forest.try_union(a, b) {
            None => false,
            Some((winner, loser)) => {
                // Re-read the loser's cell *after* the link: an upgrade
                // that landed there before the link is carried here; one
                // that lands after will itself observe the link (SeqCst)
                // and flow its value up.
                let lost = self.reasons.cell(loser).load(Ordering::SeqCst);
                self.flow_join(winner, lost);
                true
            }
        }
    }

    fn reason(&self, node: StaticNodeId) -> StaticReason {
        loop {
            let root = self.forest.find(node);
            let bits = self.reasons.cell(root).load(Ordering::SeqCst);
            if self.forest.is_root(root) {
                return decode_reason(bits);
            }
        }
    }

    fn note_thread_shared(&self, node: StaticNodeId) {
        let root = self.forest.find(node);
        let cell = self.reasons.cell(root);
        // §3.3 upgrade is conditional, not a join: thread sharing refines
        // only an indefinite reason, so a definite `StaticReference` must
        // not be overwritten.  The CAS linearises the decision; on failure
        // the class had a definite reason and the note is a no-op.
        if cell
            .compare_exchange(
                NOT_STATIC,
                THREAD_SHARED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            return;
        }
        if self.forest.is_root(root) {
            return;
        }
        // Our upgrade landed on a root a racing union just absorbed; flow
        // the accumulated value to the current root.
        let bits = cell.load(Ordering::SeqCst);
        self.flow_join(root, bits);
    }

    fn absorb_nonstatic(&self, node: StaticNodeId) {
        // Under the join lattice, "an indefinite reason becomes
        // StaticReference" is exactly a join with `StaticReference`.
        self.flow_join(node, STATIC_REFERENCE);
    }

    fn register_members(&self, handles: &[Handle], node: StaticNodeId) {
        for &handle in handles {
            self.members.lock(handle).insert(handle, node);
        }
    }

    fn node_of(&self, handle: Handle) -> Option<StaticNodeId> {
        let node = *self.members.lock(handle).get(&handle)?;
        Some(self.forest.find(node))
    }

    fn snapshot(&self) -> AtomicDomain {
        let forest = self.forest.snapshot();
        let reasons = ReasonCells::default();
        for node in 0..forest.len() as u32 {
            reasons.cell(node).store(
                self.reasons.cell(node).load(Ordering::Acquire),
                Ordering::Release,
            );
        }
        let members = StripedMembers::default();
        let len = forest.len() as u32;
        for (i, stripe) in self.members.stripes.iter().enumerate() {
            // Drop entries registered to nodes created after the forest
            // copy fixed its length, so every node the snapshot can hand
            // out exists in its own forest (matches the forest snapshot's
            // re-rootification of racing links past the boundary).
            *members.stripes[i].lock().expect("members stripe poisoned") = stripe
                .lock()
                .expect("members stripe poisoned")
                .iter()
                .filter(|&(_, &node)| node < len)
                .map(|(&handle, &node)| (handle, node))
                .collect();
        }
        AtomicDomain {
            forest,
            reasons,
            members,
            promotions: AtomicU64::new(self.promotions.load(Ordering::Acquire)),
        }
    }
}

// ---------------------------------------------------------------------
// the public switch
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Repr {
    Mutex(MutexDomain),
    Atomic(Box<AtomicDomain>),
}

/// The shared static set: thread-shared and statically-referenced blocks,
/// owned jointly by all shards (§3.3).  See the module docs for the
/// concurrency contract.
#[derive(Debug)]
pub struct StaticDomain {
    repr: Repr,
}

impl Default for StaticDomain {
    fn default() -> Self {
        Self::with_impl(DomainImpl::default())
    }
}

impl Clone for StaticDomain {
    /// A point-in-time copy; see the module docs for the exact semantics
    /// under concurrent mutation.
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Mutex(m) => StaticDomain {
                repr: Repr::Mutex(MutexDomain {
                    inner: RwLock::new(m.read().clone()),
                }),
            },
            Repr::Atomic(a) => StaticDomain {
                repr: Repr::Atomic(Box::new(a.snapshot())),
            },
        }
    }
}

impl StaticDomain {
    /// Creates an empty domain with the default (atomic) implementation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty domain with an explicit implementation.
    pub fn with_impl(which: DomainImpl) -> Self {
        let repr = match which {
            DomainImpl::Mutex => Repr::Mutex(MutexDomain::default()),
            DomainImpl::Atomic => Repr::Atomic(Box::default()),
        };
        StaticDomain { repr }
    }

    /// Which implementation this domain runs on.
    pub fn impl_kind(&self) -> DomainImpl {
        match &self.repr {
            Repr::Mutex(_) => DomainImpl::Mutex,
            Repr::Atomic(_) => DomainImpl::Atomic,
        }
    }

    /// Escalates a new block into the domain, returning its node.
    pub fn insert(&self, reason: StaticReason) -> StaticNodeId {
        match &self.repr {
            Repr::Mutex(m) => m.insert(reason),
            Repr::Atomic(a) => a.insert(reason),
        }
    }

    /// Unions two static blocks, returning whether they were distinct (the
    /// store barrier counts exactly the effective unions; the count is
    /// order-independent across racing shards).
    pub fn union(&self, a: StaticNodeId, b: StaticNodeId) -> bool {
        match &self.repr {
            Repr::Mutex(m) => m.union(a, b),
            Repr::Atomic(d) => d.union(a, b),
        }
    }

    /// Whether two nodes name the same static block (linearisable).
    pub fn same_block(&self, a: StaticNodeId, b: StaticNodeId) -> bool {
        match &self.repr {
            Repr::Mutex(m) => m.same_block(a, b),
            Repr::Atomic(d) => d.forest.same_set(a, b),
        }
    }

    /// Why the block of `node` is static.  May lag an in-flight concurrent
    /// upgrade; exact whenever the domain is quiescent (see module docs).
    pub fn reason(&self, node: StaticNodeId) -> StaticReason {
        match &self.repr {
            Repr::Mutex(m) => m.reason(node),
            Repr::Atomic(d) => d.reason(node),
        }
    }

    /// Records a §3.3 cross-thread access on an already-static block.
    ///
    /// Mirrors the single-shard collector exactly: thread sharing upgrades
    /// the recorded reason only when the block had no definite reason yet
    /// (`NotStatic`, possible only for conservatively registered blocks); a
    /// block already diagnosed `StaticReference` keeps that diagnosis.
    pub fn note_thread_shared(&self, node: StaticNodeId) {
        match &self.repr {
            Repr::Mutex(m) => m.note_thread_shared(node),
            Repr::Atomic(d) => d.note_thread_shared(node),
        }
    }

    /// Records that a non-static block was dragged into the static block of
    /// `node` (a union whose other operand was not yet static): joins
    /// `StaticReference` into the block's reason, turning an indefinite
    /// `NotStatic` into a definite diagnosis.
    pub fn absorb_nonstatic(&self, node: StaticNodeId) {
        match &self.repr {
            Repr::Mutex(m) => m.absorb_nonstatic(node),
            Repr::Atomic(d) => d.absorb_nonstatic(node),
        }
    }

    /// Registers objects as members of the static block of `node`, making
    /// them resolvable by shards that do not own them.
    pub fn register_members(&self, handles: &[Handle], node: StaticNodeId) {
        match &self.repr {
            Repr::Mutex(m) => m.register_members(handles, node),
            Repr::Atomic(d) => d.register_members(handles, node),
        }
    }

    /// The static block containing `handle`, if the object has been
    /// escalated.  This is how a shard resolves a store operand it does not
    /// own: per §3.3 such an operand must already be static.
    pub fn node_of(&self, handle: Handle) -> Option<StaticNodeId> {
        match &self.repr {
            Repr::Mutex(m) => m.node_of(handle),
            Repr::Atomic(d) => d.node_of(handle),
        }
    }

    /// Number of blocks ever escalated into the domain.
    pub fn promotions(&self) -> u64 {
        match &self.repr {
            Repr::Mutex(m) => m.read().promotions,
            Repr::Atomic(d) => d.promotions.load(Ordering::Acquire),
        }
    }

    /// Number of distinct static blocks right now.
    pub fn block_count(&self) -> usize {
        match &self.repr {
            Repr::Mutex(m) => m.read().forest.set_count(),
            Repr::Atomic(d) => d.forest.set_count(),
        }
    }

    /// Number of registered static objects.
    pub fn member_count(&self) -> usize {
        match &self.repr {
            Repr::Mutex(m) => m.read().members.len(),
            Repr::Atomic(d) => d.members.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> Handle {
        Handle::from_index(i)
    }

    const BOTH: [DomainImpl; 2] = [DomainImpl::Atomic, DomainImpl::Mutex];

    #[test]
    fn default_domain_is_atomic() {
        assert_eq!(StaticDomain::new().impl_kind(), DomainImpl::Atomic);
        assert_eq!(
            StaticDomain::with_impl(DomainImpl::Mutex).impl_kind(),
            DomainImpl::Mutex
        );
    }

    #[test]
    fn insert_union_and_reason_merge() {
        for which in BOTH {
            let domain = StaticDomain::with_impl(which);
            let a = domain.insert(StaticReason::StaticReference);
            let b = domain.insert(StaticReason::ThreadShared);
            assert_eq!(domain.block_count(), 2, "{which:?}");
            assert!(!domain.same_block(a, b), "{which:?}");
            assert!(domain.union(a, b), "{which:?}");
            assert!(!domain.union(a, b), "{which:?}: second union is a no-op");
            assert!(domain.same_block(a, b), "{which:?}");
            // Thread sharing is the dominant diagnosis.
            assert_eq!(domain.reason(a), StaticReason::ThreadShared, "{which:?}");
            assert_eq!(domain.block_count(), 1, "{which:?}");
            assert_eq!(domain.promotions(), 2, "{which:?}");
        }
    }

    #[test]
    fn effective_union_count_is_order_independent() {
        // Three nodes, three union ops: any execution order yields exactly
        // two effective unions (3 initial blocks -> 1 final block).
        let ops: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];
        let orders = [
            vec![0usize, 1, 2],
            vec![2, 1, 0],
            vec![1, 0, 2],
            vec![1, 2, 0],
        ];
        for which in BOTH {
            for order in orders.iter() {
                let domain = StaticDomain::with_impl(which);
                let nodes: Vec<_> = (0..3)
                    .map(|_| domain.insert(StaticReason::StaticReference))
                    .collect();
                let effective = order
                    .iter()
                    .filter(|&&i| domain.union(nodes[ops[i].0], nodes[ops[i].1]))
                    .count();
                assert_eq!(effective, 2, "{which:?}");
            }
        }
    }

    #[test]
    fn member_registration_resolves_through_unions() {
        for which in BOTH {
            let domain = StaticDomain::with_impl(which);
            let a = domain.insert(StaticReason::StaticReference);
            let b = domain.insert(StaticReason::StaticReference);
            domain.register_members(&[h(1), h(2)], a);
            domain.register_members(&[h(9)], b);
            assert_eq!(domain.member_count(), 3, "{which:?}");
            assert_eq!(domain.node_of(h(7)), None, "{which:?}");
            domain.union(a, b);
            let ra = domain.node_of(h(1)).unwrap();
            let rb = domain.node_of(h(9)).unwrap();
            assert_eq!(ra, rb, "{which:?}: members resolve to the merged block");
        }
    }

    #[test]
    fn thread_shared_note_upgrades_only_indefinite_reasons() {
        for which in BOTH {
            let domain = StaticDomain::with_impl(which);
            let definite = domain.insert(StaticReason::StaticReference);
            domain.note_thread_shared(definite);
            assert_eq!(
                domain.reason(definite),
                StaticReason::StaticReference,
                "{which:?}"
            );
            let indefinite = domain.insert(StaticReason::NotStatic);
            domain.note_thread_shared(indefinite);
            assert_eq!(
                domain.reason(indefinite),
                StaticReason::ThreadShared,
                "{which:?}"
            );
            let indefinite2 = domain.insert(StaticReason::NotStatic);
            domain.absorb_nonstatic(indefinite2);
            assert_eq!(
                domain.reason(indefinite2),
                StaticReason::StaticReference,
                "{which:?}"
            );
        }
    }

    #[test]
    fn clone_snapshots_the_domain() {
        for which in BOTH {
            let domain = StaticDomain::with_impl(which);
            let a = domain.insert(StaticReason::StaticReference);
            domain.register_members(&[h(4)], a);
            let copy = domain.clone();
            assert_eq!(copy.impl_kind(), which);
            let b = domain.insert(StaticReason::ThreadShared);
            domain.union(a, b);
            assert_eq!(copy.block_count(), 1, "{which:?}");
            assert_eq!(copy.reason(a), StaticReason::StaticReference, "{which:?}");
            assert_eq!(copy.node_of(h(4)), Some(a), "{which:?}");
        }
    }

    #[test]
    fn domain_is_shareable_across_threads() {
        for which in BOTH {
            let domain = StaticDomain::with_impl(which);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for _ in 0..100 {
                            let n = domain.insert(StaticReason::StaticReference);
                            domain.reason(n);
                        }
                    });
                }
            });
            assert_eq!(domain.promotions(), 400, "{which:?}");
        }
    }

    #[test]
    fn merge_is_the_lattice_join() {
        use StaticReason::*;
        assert_eq!(merge_reasons(NotStatic, NotStatic), NotStatic);
        assert_eq!(merge_reasons(NotStatic, StaticReference), StaticReference);
        assert_eq!(merge_reasons(ThreadShared, StaticReference), ThreadShared);
        assert_eq!(merge_reasons(StaticReference, ThreadShared), ThreadShared);
    }
}
