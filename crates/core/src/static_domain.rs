//! The static domain: the one piece of collector state shared across shards.
//!
//! The paper's design is naturally per-thread — each thread owns its frame
//! stack and the equilive blocks dependent on those frames — and the only
//! cross-thread coupling is the §3.3 rule: an object reachable from a static
//! variable, or touched by more than one thread, must be treated as live for
//! the rest of the program.  The sharded collector makes that coupling
//! explicit: every [`CollectorShard`](crate::CollectorShard) keeps its own
//! union/find forest, frame index, tainted set and recycle bins, and the
//! *static set* alone lives here, shared by every shard.
//!
//! A shard never unions blocks across shard boundaries.  Instead, a block
//! that becomes static is *escalated*: it gets a node in this domain's own
//! union/find forest, its members are registered in the handle → node map
//! (so a store executed by a foreign thread can resolve them), and all
//! further identity questions about it — "are these two static blocks the
//! same block?", "why is this block static?" — are answered by the domain.
//! Cross-shard stores therefore reduce to unions of *domain nodes*, which is
//! both rare (escalation happens once per block) and cheap (one lock, one
//! union).
//!
//! All operations take `&self` and lock an internal mutex, so shards on
//! different OS threads share one domain by reference during parallel trace
//! evaluation.  The per-event hot path of a shard — stores between
//! non-static blocks, frame pops, allocations — never touches the domain at
//! all.
//!
//! Determinism: the number of *effective* domain unions equals the number of
//! escalated blocks minus the number of final static blocks, and the merged
//! reason of a static block is `ThreadShared` iff any constituent block was
//! thread-shared — both independent of the order concurrent shards perform
//! the unions in.  That is what makes the aggregated `CgStats` of a parallel
//! sharded evaluation byte-identical to a single-threaded replay.

use std::collections::HashMap;
use std::sync::Mutex;

use cg_unionfind::PackedForest;
use cg_vm::Handle;

use crate::equilive::StaticReason;

/// Identity of one escalated (static) block inside the domain.
pub type StaticNodeId = u32;

#[derive(Debug, Clone, Default)]
struct DomainInner {
    /// Union/find over escalated blocks.
    forest: PackedForest,
    /// Indexed by node id; authoritative at set roots.
    reasons: Vec<StaticReason>,
    /// Every object belonging to an escalated block, by the node it was
    /// registered under (resolve with a find — nodes merge).
    members: HashMap<Handle, StaticNodeId>,
    /// Blocks ever escalated into the domain (diagnostic).
    promotions: u64,
}

/// The shared static set: thread-shared and statically-referenced blocks,
/// owned jointly by all shards (§3.3).
#[derive(Debug, Default)]
pub struct StaticDomain {
    inner: Mutex<DomainInner>,
}

impl Clone for StaticDomain {
    fn clone(&self) -> Self {
        StaticDomain {
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

/// Merges the reasons of two static blocks, mirroring `BlockInfo`'s merge
/// policy: thread sharing is the more specific diagnosis and wins; a merged
/// static block never keeps `NotStatic`.
fn merge_reasons(a: StaticReason, b: StaticReason) -> StaticReason {
    match (a, b) {
        (StaticReason::ThreadShared, _) | (_, StaticReason::ThreadShared) => {
            StaticReason::ThreadShared
        }
        _ => StaticReason::StaticReference,
    }
}

impl StaticDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DomainInner> {
        self.inner.lock().expect("static domain lock poisoned")
    }

    /// Escalates a new block into the domain, returning its node.
    pub fn insert(&self, reason: StaticReason) -> StaticNodeId {
        let mut inner = self.lock();
        let node = inner.forest.make_set();
        debug_assert_eq!(node as usize, inner.reasons.len());
        inner.reasons.push(reason);
        inner.promotions += 1;
        node
    }

    /// Unions two static blocks, returning whether they were distinct (the
    /// store barrier counts exactly the effective unions).
    pub fn union(&self, a: StaticNodeId, b: StaticNodeId) -> bool {
        let mut inner = self.lock();
        let ra = inner.forest.find(a);
        let rb = inner.forest.find(b);
        if ra == rb {
            return false;
        }
        let merged = merge_reasons(inner.reasons[ra as usize], inner.reasons[rb as usize]);
        let outcome = inner.forest.union_roots(ra, rb);
        inner.reasons[outcome.root as usize] = merged;
        true
    }

    /// Whether two nodes name the same static block.
    pub fn same_block(&self, a: StaticNodeId, b: StaticNodeId) -> bool {
        let mut inner = self.lock();
        inner.forest.same_set(a, b)
    }

    /// Why the block of `node` is static.
    pub fn reason(&self, node: StaticNodeId) -> StaticReason {
        let mut inner = self.lock();
        let root = inner.forest.find(node);
        inner.reasons[root as usize]
    }

    /// Records a §3.3 cross-thread access on an already-static block.
    ///
    /// Mirrors the single-shard collector exactly: thread sharing upgrades
    /// the recorded reason only when the block had no definite reason yet
    /// (`NotStatic`, possible only for conservatively registered blocks); a
    /// block already diagnosed `StaticReference` keeps that diagnosis.
    pub fn note_thread_shared(&self, node: StaticNodeId) {
        let mut inner = self.lock();
        let root = inner.forest.find(node);
        if inner.reasons[root as usize] == StaticReason::NotStatic {
            inner.reasons[root as usize] = StaticReason::ThreadShared;
        }
    }

    /// Records that a non-static block was dragged into the static block of
    /// `node` (a union whose other operand was not yet static).  Mirrors the
    /// `BlockInfo` merge normalisation: absorbing concrete members turns an
    /// indefinite `NotStatic` reason into `StaticReference`.
    pub fn absorb_nonstatic(&self, node: StaticNodeId) {
        let mut inner = self.lock();
        let root = inner.forest.find(node);
        if inner.reasons[root as usize] == StaticReason::NotStatic {
            inner.reasons[root as usize] = StaticReason::StaticReference;
        }
    }

    /// Registers objects as members of the static block of `node`, making
    /// them resolvable by shards that do not own them.
    pub fn register_members(&self, handles: &[Handle], node: StaticNodeId) {
        let mut inner = self.lock();
        for &handle in handles {
            inner.members.insert(handle, node);
        }
    }

    /// The static block containing `handle`, if the object has been
    /// escalated.  This is how a shard resolves a store operand it does not
    /// own: per §3.3 such an operand must already be static.
    pub fn node_of(&self, handle: Handle) -> Option<StaticNodeId> {
        let mut inner = self.lock();
        let node = *inner.members.get(&handle)?;
        Some(inner.forest.find(node))
    }

    /// Number of blocks ever escalated into the domain.
    pub fn promotions(&self) -> u64 {
        self.lock().promotions
    }

    /// Number of distinct static blocks right now.
    pub fn block_count(&self) -> usize {
        self.lock().forest.set_count()
    }

    /// Number of registered static objects.
    pub fn member_count(&self) -> usize {
        self.lock().members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> Handle {
        Handle::from_index(i)
    }

    #[test]
    fn insert_union_and_reason_merge() {
        let domain = StaticDomain::new();
        let a = domain.insert(StaticReason::StaticReference);
        let b = domain.insert(StaticReason::ThreadShared);
        assert_eq!(domain.block_count(), 2);
        assert!(!domain.same_block(a, b));
        assert!(domain.union(a, b));
        assert!(!domain.union(a, b), "second union is a no-op");
        assert!(domain.same_block(a, b));
        // Thread sharing is the dominant diagnosis.
        assert_eq!(domain.reason(a), StaticReason::ThreadShared);
        assert_eq!(domain.block_count(), 1);
        assert_eq!(domain.promotions(), 2);
    }

    #[test]
    fn effective_union_count_is_order_independent() {
        // Three nodes, three union ops: any execution order yields exactly
        // two effective unions (3 initial blocks -> 1 final block).
        let ops: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];
        let mut orders = vec![
            vec![0usize, 1, 2],
            vec![2, 1, 0],
            vec![1, 0, 2],
            vec![1, 2, 0],
        ];
        for order in orders.drain(..) {
            let domain = StaticDomain::new();
            let nodes: Vec<_> = (0..3)
                .map(|_| domain.insert(StaticReason::StaticReference))
                .collect();
            let effective = order
                .into_iter()
                .filter(|&i| domain.union(nodes[ops[i].0], nodes[ops[i].1]))
                .count();
            assert_eq!(effective, 2);
        }
    }

    #[test]
    fn member_registration_resolves_through_unions() {
        let domain = StaticDomain::new();
        let a = domain.insert(StaticReason::StaticReference);
        let b = domain.insert(StaticReason::StaticReference);
        domain.register_members(&[h(1), h(2)], a);
        domain.register_members(&[h(9)], b);
        assert_eq!(domain.member_count(), 3);
        assert_eq!(domain.node_of(h(7)), None);
        domain.union(a, b);
        let ra = domain.node_of(h(1)).unwrap();
        let rb = domain.node_of(h(9)).unwrap();
        assert_eq!(ra, rb, "members resolve to the merged block");
    }

    #[test]
    fn thread_shared_note_upgrades_only_indefinite_reasons() {
        let domain = StaticDomain::new();
        let definite = domain.insert(StaticReason::StaticReference);
        domain.note_thread_shared(definite);
        assert_eq!(domain.reason(definite), StaticReason::StaticReference);
        let indefinite = domain.insert(StaticReason::NotStatic);
        domain.note_thread_shared(indefinite);
        assert_eq!(domain.reason(indefinite), StaticReason::ThreadShared);
        let indefinite2 = domain.insert(StaticReason::NotStatic);
        domain.absorb_nonstatic(indefinite2);
        assert_eq!(domain.reason(indefinite2), StaticReason::StaticReference);
    }

    #[test]
    fn clone_snapshots_the_domain() {
        let domain = StaticDomain::new();
        let a = domain.insert(StaticReason::StaticReference);
        domain.register_members(&[h(4)], a);
        let copy = domain.clone();
        let b = domain.insert(StaticReason::ThreadShared);
        domain.union(a, b);
        assert_eq!(copy.block_count(), 1);
        assert_eq!(copy.reason(a), StaticReason::StaticReference);
        assert_eq!(copy.node_of(h(4)), Some(a));
    }

    #[test]
    fn domain_is_shareable_across_threads() {
        let domain = StaticDomain::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let n = domain.insert(StaticReason::StaticReference);
                        domain.reason(n);
                    }
                });
            }
        });
        assert_eq!(domain.promotions(), 400);
    }
}
