//! The contaminated garbage collector.

use std::collections::HashMap;

use cg_unionfind::ElementId;
use cg_vm::{ClassId, CollectOutcome, Collector, FrameInfo, Handle, Heap, RootSet, ThreadId};

use crate::bitset::HandleBitSet;
use crate::equilive::{EquiliveSets, FrameKey, StaticReason};
use crate::frame_index::FrameBlockIndex;
use crate::recycle::{RecycleBins, RecyclePolicy};
use crate::stats::{CgStats, ObjectBreakdown};

/// Configuration of the contaminated collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgConfig {
    /// Enable the §3.4 static optimisation: storing a reference *to* an
    /// already-static object does not contaminate the storing object.
    pub static_opt: bool,
    /// Enable §3.7 object recycling: dead equilive blocks are kept on a
    /// recycle list and reused to satisfy later allocations instead of being
    /// freed immediately.
    pub recycling: bool,
    /// How the recycle list is searched when `recycling` is on: the paper's
    /// first-fit scan in collection order (the default, backing the §4.8
    /// cost accounting) or size-segregated bins.
    pub recycle_policy: RecyclePolicy,
    /// Verify that the program never touches an object the collector
    /// considers dead (the "tainted" list of §3.1.4).  Violations indicate a
    /// soundness bug and panic.
    pub verify_tainted: bool,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            static_opt: true,
            recycling: false,
            recycle_policy: RecyclePolicy::FirstFit,
            verify_tainted: cfg!(debug_assertions),
        }
    }
}

impl CgConfig {
    /// The paper's preferred configuration (static optimisation on, no
    /// recycling).
    pub fn preferred() -> Self {
        Self::default()
    }

    /// The unoptimised configuration used for the "no opt" column of
    /// Figure 4.1.
    pub fn without_static_opt() -> Self {
        Self {
            static_opt: false,
            ..Self::default()
        }
    }

    /// The recycling configuration of §3.7 / Figures 4.12–4.13 (first-fit
    /// search of the recycle list, as in the paper).
    pub fn with_recycling() -> Self {
        Self {
            recycling: true,
            ..Self::default()
        }
    }

    /// Recycling with size-segregated bins instead of the paper's first-fit
    /// list scan.
    pub fn with_segregated_recycling() -> Self {
        Self {
            recycling: true,
            recycle_policy: RecyclePolicy::SegregatedBins,
            ..Self::default()
        }
    }
}

/// Per-object bookkeeping (one entry per live object incarnation).
#[derive(Debug, Clone, Copy)]
struct ObjData {
    /// The object's element in the equilive forest.
    elem: ElementId,
    /// Stack depth of the frame the object was allocated in (Figure 4.6).
    birth_depth: usize,
    /// The thread that allocated the object (§3.3).
    alloc_thread: ThreadId,
    /// Whether the collector has declared the object dead.
    dead: bool,
}

/// The contaminated garbage collector (the paper's contribution).
///
/// Objects are grouped into equilive blocks; each block depends on a stack
/// frame; popping the frame collects the block.  See the crate documentation
/// for the full set of rules and the
/// [`Collector`] implementation below for how each VM event maps onto them.
///
/// # Example
///
/// ```
/// use cg_vm::{Program, ClassDef, MethodDef, Insn, Vm, VmConfig};
/// use cg_core::ContaminatedGc;
///
/// let mut program = Program::new();
/// let class = program.add_class(ClassDef::new("Temp", 1));
/// // A helper method that allocates an object which never escapes.
/// let helper = program.add_method(MethodDef::new("helper", 0, 1, vec![
///     Insn::New { class, dst: 0 },
///     Insn::Return { value: None },
/// ]));
/// let main = program.add_method(MethodDef::new("main", 0, 1, vec![
///     Insn::Call { method: helper, args: vec![], dst: None },
///     Insn::Return { value: None },
/// ]));
/// program.set_entry(main);
///
/// let mut vm = Vm::new(program, VmConfig::default(), ContaminatedGc::new());
/// vm.run()?;
/// // The helper's object was collected the moment the helper returned.
/// assert_eq!(vm.collector().stats().objects_collected, 1);
/// # Ok::<(), cg_vm::VmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContaminatedGc {
    config: CgConfig,
    sets: EquiliveSets,
    /// Indexed by handle index.
    objects: Vec<Option<ObjData>>,
    /// Blocks (by root element) dependent on each live frame and on the
    /// static pseudo-frame, as dense per-thread stacks.
    frame_index: FrameBlockIndex,
    /// Dead objects kept for reuse (§3.7).
    recycle: RecycleBins,
    /// Objects known to be dead (§3.1.4), one bit per handle index.
    tainted: HandleBitSet,
    /// Final object disposition, computed when the program ends.
    breakdown: Option<ObjectBreakdown>,
    stats: CgStats,
}

impl Default for ContaminatedGc {
    fn default() -> Self {
        Self::new()
    }
}

impl ContaminatedGc {
    /// Creates a collector with the paper's preferred configuration.
    pub fn new() -> Self {
        Self::with_config(CgConfig::default())
    }

    /// Creates a collector with an explicit configuration.
    pub fn with_config(config: CgConfig) -> Self {
        Self {
            config,
            sets: EquiliveSets::new(),
            objects: Vec::new(),
            frame_index: FrameBlockIndex::new(),
            recycle: RecycleBins::new(config.recycle_policy),
            tainted: HandleBitSet::new(),
            breakdown: None,
            stats: CgStats::new(),
        }
    }

    /// The collector's configuration.
    pub fn config(&self) -> &CgConfig {
        &self.config
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &CgStats {
        &self.stats
    }

    /// The equilive relation (for inspection in tests and experiments).
    pub fn sets(&self) -> &EquiliveSets {
        &self.sets
    }

    /// Number of dead objects currently awaiting reuse on the recycle list.
    pub fn recycle_list_len(&self) -> usize {
        self.recycle.len()
    }

    /// Whether the collector believes `handle` is dead.
    pub fn is_tainted(&self, handle: Handle) -> bool {
        self.tainted.contains(handle)
    }

    /// Final disposition of every created object (popped / static /
    /// thread-shared).  Available after the program ends; computed on demand
    /// otherwise.
    pub fn breakdown(&mut self) -> ObjectBreakdown {
        match self.breakdown {
            Some(b) => b,
            None => self.compute_breakdown(),
        }
    }

    // ------------------------------------------------------------------
    // internal helpers
    // ------------------------------------------------------------------

    fn ensure_slot(&mut self, handle: Handle) {
        if self.objects.len() <= handle.index_usize() {
            self.objects.resize(handle.index_usize() + 1, None);
        }
    }

    /// Registers a (possibly recycled) object as a fresh singleton block
    /// dependent on the allocating frame.
    fn register(&mut self, handle: Handle, frame: &FrameInfo) -> ElementId {
        self.ensure_slot(handle);
        let key = FrameKey::frame(frame);
        let elem = self.sets.insert(handle, key);
        self.attach(elem, key);
        self.objects[handle.index_usize()] = Some(ObjData {
            elem,
            birth_depth: frame.depth,
            alloc_thread: frame.thread,
            dead: false,
        });
        self.stats.objects_created += 1;
        elem
    }

    fn data(&self, handle: Handle) -> Option<&ObjData> {
        self.objects
            .get(handle.index_usize())
            .and_then(Option::as_ref)
    }

    /// The element of a live object, registering it conservatively against
    /// the given frame if the collector has somehow never seen it.
    fn elem_of(&mut self, handle: Handle, frame: &FrameInfo) -> ElementId {
        match self.data(handle) {
            Some(data) if !data.dead => data.elem,
            Some(_) => {
                // A dead object is being used again: this can only happen if
                // the collector's deadness conclusion was wrong.
                if self.config.verify_tainted {
                    panic!("contaminated GC soundness violation: {handle} was declared dead but is still in use");
                }
                self.register(handle, frame)
            }
            None => self.register(handle, frame),
        }
    }

    fn attach(&mut self, root: ElementId, key: FrameKey) {
        self.frame_index.attach(root, key);
    }

    /// Unions the blocks of two elements (the contamination step), keeping
    /// the per-frame index consistent.
    fn contaminate(&mut self, a: ElementId, b: ElementId) {
        let ra = self.sets.find(a);
        let rb = self.sets.find(b);
        if ra == rb {
            return;
        }
        self.contaminate_roots(ra, rb);
    }

    /// The contamination step for two elements already resolved to distinct
    /// roots — the store barrier resolves each operand's root exactly once
    /// per event and comes through here.
    fn contaminate_roots(&mut self, ra: ElementId, rb: ElementId) {
        self.frame_index.detach(ra);
        self.frame_index.detach(rb);
        let root = self.sets.union_roots(ra, rb);
        let merged_key = self.sets.block_of_root(root).key;
        self.attach(root, merged_key);
        self.stats.unions += 1;
    }

    /// Moves the block of `elem` to depend on `new_key`.
    fn retarget(&mut self, elem: ElementId, new_key: FrameKey, reason: StaticReason) {
        let root = self.sets.find(elem);
        self.retarget_root(root, new_key, reason);
    }

    /// [`ContaminatedGc::retarget`] for an element already resolved to its
    /// root.
    fn retarget_root(&mut self, root: ElementId, new_key: FrameKey, reason: StaticReason) {
        let old_key = self.sets.block_of_root(root).key;
        if old_key == new_key {
            if new_key.is_static() && reason == StaticReason::ThreadShared {
                // Upgrade the recorded reason: thread sharing is the more
                // specific diagnosis for the experiment breakdown.
                let block = self.sets.block_mut_of_root(root);
                if block.static_reason == StaticReason::NotStatic {
                    block.static_reason = reason;
                }
            }
            return;
        }
        self.frame_index.detach(root);
        {
            let block = self.sets.block_mut_of_root(root);
            block.key = new_key;
            if new_key.is_static() {
                block.static_reason = reason;
            }
        }
        self.attach(root, new_key);
    }

    /// Demotes the block of `elem` to the static pseudo-frame.
    fn make_static(&mut self, elem: ElementId, reason: StaticReason) {
        self.retarget(elem, FrameKey::Static, reason);
    }

    fn compute_breakdown(&mut self) -> ObjectBreakdown {
        let mut static_objects = 0u64;
        let mut thread_shared = 0u64;
        let entries: Vec<(usize, ElementId)> = self
            .objects
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().filter(|d| !d.dead).map(|d| (i, d.elem)))
            .collect();
        for (_, elem) in entries {
            let block = self.sets.block(elem);
            match block.static_reason {
                StaticReason::ThreadShared => thread_shared += 1,
                _ => static_objects += 1,
            }
        }
        ObjectBreakdown {
            popped: self.stats.objects_collected,
            static_objects,
            thread_shared,
        }
    }

    // ------------------------------------------------------------------
    // resetting (§3.6) and cooperation with a traditional collector
    // ------------------------------------------------------------------

    /// Drops every object that a traditional collection found unreachable
    /// (`live[handle] == false`) from the collector's structures, counting
    /// them as "collected by MSA" (Figure 4.11).  Also purges them from the
    /// recycle list.
    pub fn purge_unreachable(&mut self, live: &[bool]) {
        for (index, slot) in self.objects.iter_mut().enumerate() {
            if let Some(data) = slot {
                if !data.dead && !live.get(index).copied().unwrap_or(false) {
                    data.dead = true;
                    self.tainted.insert(Handle::from_index(index as u32));
                    self.stats.reset_collected_by_msa += 1;
                }
            }
        }
        self.recycle
            .retain(|h| live.get(h.index_usize()).copied().unwrap_or(false));
    }

    /// Rebuilds the equilive relation from the live object graph during a
    /// traditional collection (§3.6).
    ///
    /// The traversal mirrors the paper's description: static (and
    /// interpreter) roots are considered first, then each stack frame oldest
    /// first; every object is re-associated with the frame that first reaches
    /// it and unioned with the objects it points to.  Objects whose dependent
    /// frame becomes *younger* than before are counted as "less live"
    /// (Figure 4.11).
    pub fn reset_from_roots(&mut self, roots: &RootSet, heap: &Heap, live: &[bool]) {
        self.stats.resets += 1;

        // Remember each live object's old dependent frame for the
        // less-live accounting.
        let live_entries: Vec<(Handle, ElementId)> = self
            .objects
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| {
                slot.as_ref()
                    .filter(|d| !d.dead)
                    .map(|d| (Handle::from_index(index as u32), d.elem))
            })
            .collect();
        let mut old_keys: HashMap<Handle, FrameKey> = HashMap::new();
        for (handle, elem) in live_entries {
            let key = self.sets.block(elem).key;
            old_keys.insert(handle, key);
        }

        // Objects the mark phase could not reach drop out of our structures.
        self.purge_unreachable(live);

        // Dissolve all per-frame lists; every live object gets a fresh
        // element below.
        self.frame_index.clear();

        // Breadth of reassignment: handle -> new element.
        let mut new_elem: HashMap<Handle, ElementId> = HashMap::new();

        let assign = |cg: &mut Self,
                      new_elem: &mut HashMap<Handle, ElementId>,
                      handle: Handle,
                      key: FrameKey|
         -> ElementId {
            if let Some(&elem) = new_elem.get(&handle) {
                return elem;
            }
            let elem = cg.sets.insert(handle, key);
            cg.attach(elem, key);
            new_elem.insert(handle, elem);
            if let Some(Some(data)) = cg.objects.get_mut(handle.index_usize()) {
                data.elem = elem;
            }
            elem
        };

        // Worklist traversal from a set of roots, assigning `key` to newly
        // reached objects and unioning along every edge.
        let traverse = |cg: &mut Self,
                        new_elem: &mut HashMap<Handle, ElementId>,
                        root: Handle,
                        key: FrameKey| {
            if !heap.is_live(root) {
                return;
            }
            let root_elem = assign(cg, new_elem, root, key);
            let mut worklist = vec![(root, root_elem)];
            while let Some((handle, elem)) = worklist.pop() {
                // The borrowing iterator keeps this traversal from
                // allocating a Vec per visited object.
                for target in heap.references_iter(handle) {
                    if !heap.is_live(target) {
                        continue;
                    }
                    let seen = new_elem.contains_key(&target);
                    let target_elem = assign(cg, new_elem, target, key);
                    cg.contaminate(elem, target_elem);
                    if !seen {
                        worklist.push((target, target_elem));
                    }
                }
            }
        };

        // Statics and interpreter-internal references first: they pin their
        // whole reachable subgraph to the static pseudo-frame.
        for &root in roots.statics.iter().chain(roots.interpreter.iter()) {
            traverse(self, &mut new_elem, root, FrameKey::Static);
        }

        // Then each stack frame, oldest first within each thread (the order
        // `RootSet::frames` is built in).
        for frame_roots in &roots.frames {
            let key = FrameKey::frame(&frame_roots.frame);
            for &root in &frame_roots.refs {
                traverse(self, &mut new_elem, root, key);
            }
        }

        // Count objects whose liveness estimate improved (moved to a younger
        // frame than before).
        for (handle, &elem) in &new_elem {
            if let Some(old_key) = old_keys.get(handle) {
                let new_key = self.sets.block(elem).key;
                if old_key.strictly_older_than(new_key) {
                    self.stats.reset_less_live += 1;
                }
            }
        }
    }
}

impl Collector for ContaminatedGc {
    fn name(&self) -> &str {
        match (self.config.recycling, self.config.recycle_policy) {
            (false, _) => "cg",
            (true, RecyclePolicy::FirstFit) => "cg+recycle",
            (true, RecyclePolicy::SegregatedBins) => "cg+recycle-seg",
        }
    }

    fn on_allocate(&mut self, handle: Handle, frame: &FrameInfo, _heap: &Heap) {
        self.register(handle, frame);
    }

    fn on_reference_store(
        &mut self,
        source: Handle,
        target: Handle,
        frame: &FrameInfo,
        _heap: &Heap,
    ) {
        self.stats.contaminations += 1;
        let source_elem = self.elem_of(source, frame);
        let target_elem = self.elem_of(target, frame);
        // Resolve each operand's root exactly once per event (the seed ran
        // up to six finds here: two in the static-optimisation probes and
        // two more inside the contamination step).
        let source_root = self.sets.find(source_elem);
        let target_root = self.sets.find(target_elem);
        if source_root == target_root {
            // Already equilive: nothing can change.
            return;
        }
        if self.config.static_opt {
            // §3.4: referencing an object that is already static cannot make
            // that object any more live, so there is no need to drag the
            // referencing object into the static set.
            let target_static = self.sets.block_of_root(target_root).is_static();
            let source_static = self.sets.block_of_root(source_root).is_static();
            if target_static && !source_static {
                self.stats.static_opt_skips += 1;
                return;
            }
        }
        self.contaminate_roots(source_root, target_root);
    }

    fn on_static_store(&mut self, target: Handle, _heap: &Heap) {
        let elem = self.elem_of(target, &FrameInfo::static_frame());
        self.make_static(elem, StaticReason::StaticReference);
    }

    fn on_return_value(&mut self, value: Handle, caller: &FrameInfo, _callee: &FrameInfo) {
        let elem = self.elem_of(value, caller);
        let root = self.sets.find(elem);
        let current = self.sets.block(root).key;
        let caller_key = FrameKey::frame(caller);
        // Adjust only if the caller's frame outlives the current dependent
        // frame (§3.1.3, areturn).
        if caller_key.strictly_older_than(current) {
            self.retarget(elem, caller_key, StaticReason::NotStatic);
            self.stats.returns_retargeted += 1;
        }
    }

    fn on_frame_pop(&mut self, frame: &FrameInfo, heap: &mut Heap) -> CollectOutcome {
        let mut freed_objects = 0u64;
        let mut freed_bytes = 0u64;
        // Frames pop LIFO, so the bucket at this frame's depth holds exactly
        // this frame's blocks; draining it is pop-after-pop, no hash lookup
        // and no member-list clone.
        while let Some(root) = self.frame_index.pop_frame_block(frame.thread, frame.depth) {
            debug_assert_eq!(self.sets.block_of_root(root).key.frame_id(), Some(frame.id));
            // The block is dying with its frame: move the member list out
            // instead of cloning it.  A recycled member re-registers as a
            // fresh incarnation with a fresh element, so the emptied list is
            // never observed again.
            let members = std::mem::take(&mut self.sets.block_mut_of_root(root).members);
            let block_size = members.len();
            self.stats.block_sizes.record(block_size as u64);
            for handle in members {
                let data = self.objects[handle.index_usize()]
                    .as_mut()
                    .expect("block members are registered objects");
                if data.dead {
                    continue;
                }
                data.dead = true;
                self.tainted.insert(handle);
                self.stats.objects_collected += 1;
                if block_size == 1 {
                    self.stats.objects_collected_exactly += 1;
                }
                let age = data.birth_depth.saturating_sub(frame.depth);
                self.stats.age_at_death.record(age as u64);

                let slot_count = match heap.get(handle) {
                    Ok(object) if !object.is_array() => Some(object.slot_count()),
                    _ => None,
                };
                match slot_count {
                    Some(slots) if self.config.recycling => {
                        // Defer the free: the object waits on the recycle
                        // list and is handed back to the allocator later
                        // (§3.7).
                        self.recycle.push(handle, slots);
                    }
                    _ => {
                        let bytes = heap
                            .free(handle)
                            .expect("collected object must still be live");
                        freed_bytes += bytes as u64;
                        freed_objects += 1;
                    }
                }
            }
        }
        CollectOutcome {
            freed_objects,
            freed_bytes,
            marked_objects: 0,
        }
    }

    fn on_object_access(&mut self, handle: Handle, thread: ThreadId, _heap: &Heap) {
        let Some(data) = self.data(handle).copied() else {
            return;
        };
        if data.dead {
            if self.config.verify_tainted {
                panic!("contaminated GC soundness violation: dead object {handle} accessed by {thread}");
            }
            return;
        }
        if data.alloc_thread != thread {
            // The object is shared between threads; its whole block must be
            // treated as live for the program's duration (§3.3).
            self.make_static(data.elem, StaticReason::ThreadShared);
        }
    }

    fn try_recycled_alloc(
        &mut self,
        class: ClassId,
        field_count: usize,
        _frame: &FrameInfo,
        heap: &mut Heap,
    ) -> Option<Handle> {
        if !self.config.recycling {
            return None;
        }
        // Search the recycle structure (§3.7) under the configured policy;
        // every examined corpse is charged to `recycle_probes`.
        let taken = self
            .recycle
            .take(field_count, &mut self.stats.recycle_probes, |handle| {
                let fits = heap
                    .get(handle)
                    .map(|o| !o.is_array() && o.slot_count() >= field_count)
                    .unwrap_or(false);
                fits && heap.reinitialize(handle, class, field_count).is_ok()
            });
        if let Some(handle) = taken {
            self.tainted.remove(handle);
            self.stats.objects_recycled += 1;
            // `on_allocate` follows and re-registers the handle as a new
            // object incarnation.
            return Some(handle);
        }
        None
    }

    fn on_program_end(&mut self, _roots: &RootSet, _heap: &mut Heap) {
        let breakdown = self.compute_breakdown();
        self.stats.objects_thread_shared = breakdown.thread_shared;
        self.breakdown = Some(breakdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_vm::{ClassDef, Cond, Insn, MethodDef, Operand, Program, Vm, VmConfig};

    /// Runs `program` under a contaminated collector with `config` and
    /// returns the VM for inspection.
    fn run_with(program: Program, config: CgConfig) -> Vm<ContaminatedGc> {
        let mut vm = Vm::new(
            program,
            VmConfig::small(),
            ContaminatedGc::with_config(config),
        );
        vm.run().expect("program runs");
        vm
    }

    fn run(program: Program) -> Vm<ContaminatedGc> {
        run_with(program, CgConfig::default())
    }

    /// main calls helper(); helper allocates `n` objects that never escape.
    fn non_escaping_program(n: i64) -> Program {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Temp", 1));
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            3,
            vec![
                Insn::Const { dst: 1, value: 0 },
                Insn::Branch {
                    cond: Cond::Ge,
                    a: Operand::Local(1),
                    b: Operand::Imm(n),
                    target: 5,
                },
                Insn::New { class: c, dst: 0 },
                Insn::Arith {
                    op: cg_vm::ArithOp::Add,
                    dst: 1,
                    a: Operand::Local(1),
                    b: Operand::Imm(1),
                },
                Insn::Jump { target: 1 },
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        p
    }

    #[test]
    fn non_escaping_objects_are_collected_at_frame_pop() {
        let vm = run(non_escaping_program(50));
        let stats = vm.collector().stats();
        assert_eq!(stats.objects_created, 50);
        assert_eq!(stats.objects_collected, 50);
        assert_eq!(stats.objects_collected_exactly, 50);
        assert_eq!(vm.heap().live_count(), 0);
        // All blocks were singletons and died in their birth frame.
        assert_eq!(stats.block_sizes.bucket_count(0), 50);
        assert_eq!(stats.age_at_death.bucket_count(0), 50);
    }

    #[test]
    fn returned_objects_survive_their_birth_frame() {
        // helper() returns a fresh object; main keeps it in a local.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Box", 1));
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::Return { value: Some(0) },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            2,
            vec![
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: Some(0),
                },
                // Touch the object to prove it is still alive.
                Insn::GetField {
                    object: 0,
                    field: 0,
                    dst: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let stats = vm.collector().stats().clone();
        assert_eq!(stats.objects_created, 1);
        // Collected when main itself pops (frame distance 1), not before.
        assert_eq!(stats.objects_collected, 1);
        assert_eq!(stats.returns_retargeted, 1);
        assert_eq!(stats.age_at_death.bucket_count(1), 1);
        assert_eq!(vm.heap().live_count(), 0);
        assert_eq!(vm.collector_mut().breakdown().popped, 1);
    }

    #[test]
    fn contamination_extends_lifetime_to_older_frame() {
        // main allocates a container; helper(container) allocates an object
        // and stores it into the container: the object must survive helper.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Node", 1));
        let helper = p.add_method(MethodDef::new(
            "helper",
            1,
            2,
            vec![
                Insn::New { class: c, dst: 1 },
                Insn::PutField {
                    object: 0,
                    field: 0,
                    value: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            2,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::Call {
                    method: helper,
                    args: vec![0],
                    dst: None,
                },
                Insn::GetField {
                    object: 0,
                    field: 0,
                    dst: 1,
                },
                Insn::GetField {
                    object: 1,
                    field: 0,
                    dst: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let vm = run(p);
        let stats = vm.collector().stats();
        assert_eq!(stats.objects_created, 2);
        assert_eq!(stats.objects_collected, 2);
        assert_eq!(stats.unions, 1);
        // Both objects die together when main pops: one block of size 2.
        assert_eq!(stats.block_sizes.bucket_count(1), 1);
        assert_eq!(vm.heap().live_count(), 0);
    }

    #[test]
    fn static_objects_are_never_collected() {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Global", 1));
        let s = p.add_static();
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            2,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::PutStatic {
                    static_id: s,
                    value: 0,
                },
                Insn::New { class: c, dst: 1 },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let breakdown = vm.collector_mut().breakdown();
        assert_eq!(breakdown.popped, 1);
        assert_eq!(breakdown.static_objects, 1);
        assert_eq!(vm.heap().live_count(), 1);
    }

    #[test]
    fn static_optimization_avoids_contaminating_the_referencer() {
        // A static object is stored INTO a local object: with the §3.4
        // optimisation the local object must still be collectable.
        let build = || {
            let mut p = Program::new();
            let c = p.add_class(ClassDef::new("Node", 1));
            let s = p.add_static();
            let helper = p.add_method(MethodDef::new(
                "helper",
                0,
                3,
                vec![
                    // local object
                    Insn::New { class: c, dst: 0 },
                    // read the static and store it into the local object
                    Insn::GetStatic {
                        static_id: s,
                        dst: 1,
                    },
                    Insn::PutField {
                        object: 0,
                        field: 0,
                        value: 1,
                    },
                    Insn::Return { value: None },
                ],
            ));
            let main = p.add_method(MethodDef::new(
                "main",
                0,
                1,
                vec![
                    Insn::New { class: c, dst: 0 },
                    Insn::PutStatic {
                        static_id: s,
                        value: 0,
                    },
                    Insn::Call {
                        method: helper,
                        args: vec![],
                        dst: None,
                    },
                    Insn::Return { value: None },
                ],
            ));
            p.set_entry(main);
            p
        };

        let vm_opt = run_with(build(), CgConfig::default());
        let vm_noopt = run_with(build(), CgConfig::without_static_opt());

        // With the optimisation: the helper's object dies when helper pops.
        assert_eq!(vm_opt.collector().stats().objects_collected, 1);
        assert_eq!(vm_opt.collector().stats().static_opt_skips, 1);
        // Without it: the helper's object is dragged into the static set.
        assert_eq!(vm_noopt.collector().stats().objects_collected, 0);
        assert!(vm_noopt.collector().stats().static_opt_skips == 0);
    }

    #[test]
    fn contamination_cannot_be_undone() {
        // E (static) contaminates D, then points away (step 5 of Figure 2.2):
        // D stays static even though nothing references it any more.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Node", 1));
        let s = p.add_static();
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            3,
            vec![
                Insn::New { class: c, dst: 0 }, // D
                Insn::GetStatic {
                    static_id: s,
                    dst: 1,
                }, // E
                Insn::PutField {
                    object: 1,
                    field: 0,
                    value: 0,
                }, // E.f = D  (contaminates D)
                Insn::LoadNull { dst: 2 },
                Insn::PutField {
                    object: 1,
                    field: 0,
                    value: 2,
                }, // E.f = null (points away)
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::PutStatic {
                    static_id: s,
                    value: 0,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        // D was contaminated by a static object: it is never collected,
        // even though it is actually garbage after step 5.
        assert_eq!(vm.collector().stats().objects_collected, 0);
        let breakdown = vm.collector_mut().breakdown();
        assert_eq!(breakdown.static_objects, 2);
        assert_eq!(vm.heap().live_count(), 2);
    }

    #[test]
    fn thread_shared_objects_become_static() {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Shared", 1));
        let worker = p.add_method(MethodDef::new(
            "worker",
            1,
            2,
            vec![
                Insn::New { class: c, dst: 1 },
                Insn::PutField {
                    object: 0,
                    field: 0,
                    value: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::SpawnThread {
                    method: worker,
                    args: vec![0],
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let breakdown = vm.collector_mut().breakdown();
        // The shared object is pinned as thread-shared; the worker's own
        // object contaminated it (stored into it) and is dragged along
        // unless the static optimisation applies — it does, since the shared
        // object is already static when the worker stores into it... the
        // worker stores its object INTO the shared one (shared.f = mine), so
        // the source is the shared (static) object and the optimisation does
        // not apply: both end up static.
        assert_eq!(breakdown.thread_shared, 2);
        assert_eq!(breakdown.popped, 0);
        assert!(vm.collector().stats().objects_thread_shared >= 1);
    }

    #[test]
    fn interned_objects_are_static() {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Str", 1));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            2,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::Intern {
                    key: 42,
                    src: 0,
                    dst: 1,
                },
                Insn::New { class: c, dst: 0 },
                Insn::Intern {
                    key: 42,
                    src: 0,
                    dst: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let breakdown = vm.collector_mut().breakdown();
        // The first object is interned (static); the second maps to the
        // first and itself dies with main.
        assert_eq!(breakdown.static_objects, 1);
        assert_eq!(breakdown.popped, 1);
    }

    #[test]
    fn recycling_reuses_dead_objects() {
        // helper() allocates an object that dies on return; called many
        // times, later allocations must be served from the recycle list.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Temp", 2));
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            1,
            vec![Insn::New { class: c, dst: 0 }, Insn::Return { value: None }],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let vm = run_with(p, CgConfig::with_recycling());
        let stats = vm.collector().stats();
        assert_eq!(stats.objects_created, 4);
        // The first call allocates fresh; the remaining three reuse it.
        assert_eq!(stats.objects_recycled, 3);
        assert_eq!(vm.stats().recycled_allocations, 3);
        // Only one object was ever taken from the heap.
        assert_eq!(vm.heap().stats().objects_allocated, 1);
    }

    #[test]
    fn collector_name_reflects_configuration() {
        assert_eq!(ContaminatedGc::new().name(), "cg");
        assert_eq!(
            ContaminatedGc::with_config(CgConfig::with_recycling()).name(),
            "cg+recycle"
        );
        assert_eq!(
            ContaminatedGc::with_config(CgConfig::with_segregated_recycling()).name(),
            "cg+recycle-seg"
        );
        assert!(CgConfig::preferred().static_opt);
        assert!(!CgConfig::without_static_opt().static_opt);
        assert!(CgConfig::with_segregated_recycling().recycling);
    }

    /// A program whose helpers churn through mixed-size temporaries: many
    /// small objects and a few large ones, each batch dying on return.
    fn mixed_size_churn() -> Program {
        let mut p = Program::new();
        let small = p.add_class(ClassDef::new("Small", 1));
        let big = p.add_class(ClassDef::new("Big", 6));
        let small_helper = p.add_method(MethodDef::new(
            "smalls",
            0,
            8,
            (0..8u16)
                .map(|i| Insn::New {
                    class: small,
                    dst: i,
                })
                .chain([Insn::Return { value: None }])
                .collect(),
        ));
        let big_helper = p.add_method(MethodDef::new(
            "big",
            0,
            1,
            vec![
                Insn::New { class: big, dst: 0 },
                Insn::Return { value: None },
            ],
        ));
        let mut code = Vec::new();
        for _ in 0..4 {
            code.push(Insn::Call {
                method: small_helper,
                args: vec![],
                dst: None,
            });
            code.push(Insn::Call {
                method: big_helper,
                args: vec![],
                dst: None,
            });
        }
        code.push(Insn::Return { value: None });
        let main = p.add_method(MethodDef::new("main", 0, 1, code));
        p.set_entry(main);
        p
    }

    #[test]
    fn segregated_recycling_reuses_as_much_with_fewer_probes() {
        let first_fit = run_with(mixed_size_churn(), CgConfig::with_recycling());
        let segregated = run_with(mixed_size_churn(), CgConfig::with_segregated_recycling());
        let ff = first_fit.collector().stats();
        let seg = segregated.collector().stats();
        // Both policies find a reusable corpse whenever one exists, so the
        // recycle counts agree...
        assert_eq!(ff.objects_created, seg.objects_created);
        assert_eq!(ff.objects_recycled, seg.objects_recycled);
        assert!(seg.objects_recycled > 0);
        // ...but first fit pays a scan over the (mostly too-small) list for
        // every big request, while the bins jump straight to the right
        // class.
        assert!(
            seg.recycle_probes < ff.recycle_probes,
            "segregated probes {} vs first-fit {}",
            seg.recycle_probes,
            ff.recycle_probes
        );
        // The recycled heap footprint is identical either way.
        assert_eq!(
            first_fit.heap().stats().objects_allocated,
            segregated.heap().stats().objects_allocated
        );
    }

    #[test]
    fn deep_call_chains_record_age_at_death() {
        // A chain of calls each returning an object allocated at the bottom:
        // the object climbs several frames before dying.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Deep", 1));
        // depth3() -> new object
        let depth3 = p.add_method(MethodDef::new(
            "depth3",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::Return { value: Some(0) },
            ],
        ));
        let depth2 = p.add_method(MethodDef::new(
            "depth2",
            0,
            1,
            vec![
                Insn::Call {
                    method: depth3,
                    args: vec![],
                    dst: Some(0),
                },
                Insn::Return { value: Some(0) },
            ],
        ));
        let depth1 = p.add_method(MethodDef::new(
            "depth1",
            0,
            1,
            vec![
                Insn::Call {
                    method: depth2,
                    args: vec![],
                    dst: Some(0),
                },
                Insn::Return { value: Some(0) },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::Call {
                    method: depth1,
                    args: vec![],
                    dst: Some(0),
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let vm = run(p);
        let stats = vm.collector().stats();
        assert_eq!(stats.objects_created, 1);
        assert_eq!(stats.objects_collected, 1);
        // Born at depth 4 (main=1, depth1=2, depth2=3, depth3=4), dies when
        // main (depth 1) pops: frame distance 3.
        assert_eq!(stats.age_at_death.bucket_count(3), 1);
        assert_eq!(stats.returns_retargeted, 3);
    }

    #[test]
    fn purge_unreachable_counts_msa_collected() {
        let vm = run(non_escaping_program(1));
        let mut cg = vm.collector().clone();
        // Simulate a traditional collection that finds nothing live.
        let live = vec![false; 1];
        let before = cg.stats().reset_collected_by_msa;
        cg.purge_unreachable(&live);
        // The single object was already collected by CG, so nothing new.
        assert_eq!(cg.stats().reset_collected_by_msa, before);
    }

    #[test]
    fn breakdown_accounts_for_every_object() {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Mix", 1));
        let s = p.add_static();
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            1,
            vec![Insn::New { class: c, dst: 0 }, Insn::Return { value: None }],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::PutStatic {
                    static_id: s,
                    value: 0,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let created = vm.collector().stats().objects_created;
        let breakdown = vm.collector_mut().breakdown();
        assert_eq!(breakdown.total(), created);
        assert_eq!(breakdown.popped, 2);
        assert_eq!(breakdown.static_objects, 1);
    }
}
