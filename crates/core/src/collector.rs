//! The contaminated garbage collector.

use cg_vm::{ClassId, CollectOutcome, Collector, FrameInfo, Handle, Heap, RootSet, ThreadId};

use crate::equilive::EquiliveSets;
use crate::recycle::RecyclePolicy;
use crate::shard::CollectorShard;
use crate::static_domain::{DomainImpl, StaticDomain};
use crate::stats::{CgStats, ObjectBreakdown};

/// A deliberate, test-only defect injected into the collector.
///
/// The differential fuzzer (`cg-fuzz`) checks the collector against a
/// precise reachability oracle; fault injection is how the *oracle itself*
/// is validated — a harness that cannot catch a collector with its
/// contamination rule ripped out is not testing anything.  Production code
/// never sets anything but [`FaultInjection::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultInjection {
    /// No fault: the collector behaves as the paper specifies.
    #[default]
    None,
    /// Drop every contamination event: `on_reference_store` records its
    /// statistics but never merges blocks, so an object stored into a
    /// longer-lived container still dies with its birth frame — a textbook
    /// soundness violation the oracle must catch.
    SkipContamination,
}

/// Configuration of the contaminated collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgConfig {
    /// Enable the §3.4 static optimisation: storing a reference *to* an
    /// already-static object does not contaminate the storing object.
    pub static_opt: bool,
    /// Enable §3.7 object recycling: dead equilive blocks are kept on a
    /// recycle list and reused to satisfy later allocations instead of being
    /// freed immediately.
    pub recycling: bool,
    /// How the recycle list is searched when `recycling` is on: the paper's
    /// first-fit scan in collection order (the default, backing the §4.8
    /// cost accounting) or size-segregated bins.
    pub recycle_policy: RecyclePolicy,
    /// Verify that the program never touches an object the collector
    /// considers dead (the "tainted" list of §3.1.4).  Violations indicate a
    /// soundness bug and panic.
    pub verify_tainted: bool,
    /// Test-only deliberate defect (see [`FaultInjection`]); always
    /// [`FaultInjection::None`] outside the fuzzer's self-check.
    pub fault: FaultInjection,
    /// Which [`StaticDomain`] implementation backs the shared static set:
    /// the lock-free forest (the default) or the retained global-lock model
    /// the fuzzer uses as the differential reference.
    pub domain_impl: DomainImpl,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            static_opt: true,
            recycling: false,
            recycle_policy: RecyclePolicy::FirstFit,
            verify_tainted: cfg!(debug_assertions),
            fault: FaultInjection::None,
            domain_impl: DomainImpl::default(),
        }
    }
}

impl CgConfig {
    /// The paper's preferred configuration (static optimisation on, no
    /// recycling).
    pub fn preferred() -> Self {
        Self::default()
    }

    /// The unoptimised configuration used for the "no opt" column of
    /// Figure 4.1.
    pub fn without_static_opt() -> Self {
        Self {
            static_opt: false,
            ..Self::default()
        }
    }

    /// The recycling configuration of §3.7 / Figures 4.12–4.13 (first-fit
    /// search of the recycle list, as in the paper).
    pub fn with_recycling() -> Self {
        Self {
            recycling: true,
            ..Self::default()
        }
    }

    /// Recycling with size-segregated bins instead of the paper's first-fit
    /// list scan.
    pub fn with_segregated_recycling() -> Self {
        Self {
            recycling: true,
            recycle_policy: RecyclePolicy::SegregatedBins,
            ..Self::default()
        }
    }

    /// The same configuration with a deliberate defect injected (test-only;
    /// see [`FaultInjection`]).
    pub fn with_fault(mut self, fault: FaultInjection) -> Self {
        self.fault = fault;
        self
    }

    /// The same configuration on an explicit [`StaticDomain`]
    /// implementation (the fuzzer and the contention bench run both).
    pub fn with_domain_impl(mut self, which: DomainImpl) -> Self {
        self.domain_impl = which;
        self
    }
}

/// The contaminated garbage collector (the paper's contribution).
///
/// Objects are grouped into equilive blocks; each block depends on a stack
/// frame; popping the frame collects the block.  See the crate documentation
/// for the full set of rules and the
/// [`Collector`] implementation below for how each VM event maps onto them.
///
/// Internally this is the **1-shard instantiation** of the sharded collector
/// code path: one [`CollectorShard`] holding all per-thread state (equilive
/// forest, frame index, tainted set, recycle bins) plus a private
/// [`StaticDomain`] holding the §3.3 static set.  A multi-shard evaluation
/// (see [`ShardedGc`](crate::ShardedGc) and the parallel trace evaluation in
/// `cg-bench`) runs exactly the same per-event code over N shards sharing
/// one domain.
///
/// # Example
///
/// ```
/// use cg_vm::{Program, ClassDef, MethodDef, Insn, Vm, VmConfig};
/// use cg_core::ContaminatedGc;
///
/// let mut program = Program::new();
/// let class = program.add_class(ClassDef::new("Temp", 1));
/// // A helper method that allocates an object which never escapes.
/// let helper = program.add_method(MethodDef::new("helper", 0, 1, vec![
///     Insn::New { class, dst: 0 },
///     Insn::Return { value: None },
/// ]));
/// let main = program.add_method(MethodDef::new("main", 0, 1, vec![
///     Insn::Call { method: helper, args: vec![], dst: None },
///     Insn::Return { value: None },
/// ]));
/// program.set_entry(main);
///
/// let mut vm = Vm::new(program, VmConfig::default(), ContaminatedGc::new());
/// vm.run()?;
/// // The helper's object was collected the moment the helper returned.
/// assert_eq!(vm.collector().stats().objects_collected, 1);
/// # Ok::<(), cg_vm::VmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContaminatedGc {
    config: CgConfig,
    /// The one shard: all per-thread collector state.
    shard: CollectorShard,
    /// The private static set (§3.3); shared by reference in multi-shard
    /// evaluations, owned here.
    domain: StaticDomain,
    /// Final object disposition, computed when the program ends.
    breakdown: Option<ObjectBreakdown>,
}

impl Default for ContaminatedGc {
    fn default() -> Self {
        Self::new()
    }
}

impl ContaminatedGc {
    /// Creates a collector with the paper's preferred configuration.
    pub fn new() -> Self {
        Self::with_config(CgConfig::default())
    }

    /// Creates a collector with an explicit configuration.
    pub fn with_config(config: CgConfig) -> Self {
        Self {
            config,
            shard: CollectorShard::new(config),
            domain: StaticDomain::with_impl(config.domain_impl),
            breakdown: None,
        }
    }

    /// The collector's configuration.
    pub fn config(&self) -> &CgConfig {
        &self.config
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &CgStats {
        self.shard.stats()
    }

    /// The equilive relation (for inspection in tests and experiments).
    pub fn sets(&self) -> &EquiliveSets {
        self.shard.sets()
    }

    /// The static domain (for inspection in tests and experiments).
    pub fn domain(&self) -> &StaticDomain {
        &self.domain
    }

    /// Number of dead objects currently awaiting reuse on the recycle list.
    pub fn recycle_list_len(&self) -> usize {
        self.shard.recycle_list_len()
    }

    /// Whether the collector believes `handle` is dead.
    pub fn is_tainted(&self, handle: Handle) -> bool {
        self.shard.is_tainted(handle)
    }

    /// Final disposition of every created object (popped / static /
    /// thread-shared).  Available after the program ends; computed on demand
    /// otherwise.
    pub fn breakdown(&mut self) -> ObjectBreakdown {
        match self.breakdown {
            Some(b) => b,
            None => self.compute_breakdown(),
        }
    }

    fn compute_breakdown(&mut self) -> ObjectBreakdown {
        let mut breakdown = ObjectBreakdown {
            popped: self.shard.stats().objects_collected,
            ..ObjectBreakdown::default()
        };
        self.shard
            .accumulate_breakdown(&self.domain, &mut breakdown);
        breakdown
    }

    // ------------------------------------------------------------------
    // resetting (§3.6) and cooperation with a traditional collector
    // ------------------------------------------------------------------

    /// Drops every object that a traditional collection found unreachable
    /// (`live[handle] == false`) from the collector's structures, counting
    /// them as "collected by MSA" (Figure 4.11).  Also purges them from the
    /// recycle list.
    pub fn purge_unreachable(&mut self, live: &[bool]) {
        self.shard.purge_unreachable(live);
    }

    /// Rebuilds the equilive relation from the live object graph during a
    /// traditional collection (§3.6).  See
    /// [`CollectorShard::reset_from_roots`].
    pub fn reset_from_roots(&mut self, roots: &RootSet, heap: &Heap, live: &[bool]) {
        self.shard.reset_from_roots(roots, heap, live, &self.domain);
    }
}

impl Collector for ContaminatedGc {
    fn name(&self) -> &str {
        match (self.config.recycling, self.config.recycle_policy) {
            (false, _) => "cg",
            (true, RecyclePolicy::FirstFit) => "cg+recycle",
            (true, RecyclePolicy::SegregatedBins) => "cg+recycle-seg",
        }
    }

    fn on_allocate(&mut self, handle: Handle, frame: &FrameInfo, _heap: &Heap) {
        self.shard.on_allocate(handle, frame, &self.domain);
    }

    fn on_reference_store(
        &mut self,
        source: Handle,
        target: Handle,
        frame: &FrameInfo,
        _heap: &Heap,
    ) {
        self.shard
            .on_reference_store(source, target, frame, &self.domain);
    }

    fn on_static_store(&mut self, target: Handle, _heap: &Heap) {
        self.shard.on_static_store(target, &self.domain);
    }

    fn on_return_value(&mut self, value: Handle, caller: &FrameInfo, callee: &FrameInfo) {
        self.shard
            .on_return_value(value, caller, callee, &self.domain);
    }

    fn on_frame_pop(&mut self, frame: &FrameInfo, heap: &mut Heap) -> CollectOutcome {
        self.shard.on_frame_pop(frame, heap)
    }

    fn on_object_access(&mut self, handle: Handle, thread: ThreadId, _heap: &Heap) {
        self.shard.on_object_access(handle, thread, &self.domain);
    }

    fn try_recycled_alloc(
        &mut self,
        class: ClassId,
        field_count: usize,
        _frame: &FrameInfo,
        heap: &mut Heap,
    ) -> Option<Handle> {
        self.shard.try_recycled_alloc(class, field_count, heap)
    }

    fn on_program_end(&mut self, _roots: &RootSet, _heap: &mut Heap) {
        let breakdown = self.compute_breakdown();
        self.shard.stats_mut().objects_thread_shared = breakdown.thread_shared;
        self.breakdown = Some(breakdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_vm::{ClassDef, Cond, Insn, MethodDef, Operand, Program, Vm, VmConfig};

    /// Runs `program` under a contaminated collector with `config` and
    /// returns the VM for inspection.
    fn run_with(program: Program, config: CgConfig) -> Vm<ContaminatedGc> {
        let mut vm = Vm::new(
            program,
            VmConfig::small(),
            ContaminatedGc::with_config(config),
        );
        vm.run().expect("program runs");
        vm
    }

    fn run(program: Program) -> Vm<ContaminatedGc> {
        run_with(program, CgConfig::default())
    }

    /// main calls helper(); helper allocates `n` objects that never escape.
    fn non_escaping_program(n: i64) -> Program {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Temp", 1));
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            3,
            vec![
                Insn::Const { dst: 1, value: 0 },
                Insn::Branch {
                    cond: Cond::Ge,
                    a: Operand::Local(1),
                    b: Operand::Imm(n),
                    target: 5,
                },
                Insn::New { class: c, dst: 0 },
                Insn::Arith {
                    op: cg_vm::ArithOp::Add,
                    dst: 1,
                    a: Operand::Local(1),
                    b: Operand::Imm(1),
                },
                Insn::Jump { target: 1 },
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        p
    }

    #[test]
    fn non_escaping_objects_are_collected_at_frame_pop() {
        let vm = run(non_escaping_program(50));
        let stats = vm.collector().stats();
        assert_eq!(stats.objects_created, 50);
        assert_eq!(stats.objects_collected, 50);
        assert_eq!(stats.objects_collected_exactly, 50);
        assert_eq!(vm.heap().live_count(), 0);
        // All blocks were singletons and died in their birth frame.
        assert_eq!(stats.block_sizes.bucket_count(0), 50);
        assert_eq!(stats.age_at_death.bucket_count(0), 50);
    }

    #[test]
    fn returned_objects_survive_their_birth_frame() {
        // helper() returns a fresh object; main keeps it in a local.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Box", 1));
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::Return { value: Some(0) },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            2,
            vec![
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: Some(0),
                },
                // Touch the object to prove it is still alive.
                Insn::GetField {
                    object: 0,
                    field: 0,
                    dst: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let stats = vm.collector().stats().clone();
        assert_eq!(stats.objects_created, 1);
        // Collected when main itself pops (frame distance 1), not before.
        assert_eq!(stats.objects_collected, 1);
        assert_eq!(stats.returns_retargeted, 1);
        assert_eq!(stats.age_at_death.bucket_count(1), 1);
        assert_eq!(vm.heap().live_count(), 0);
        assert_eq!(vm.collector_mut().breakdown().popped, 1);
    }

    #[test]
    fn contamination_extends_lifetime_to_older_frame() {
        // main allocates a container; helper(container) allocates an object
        // and stores it into the container: the object must survive helper.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Node", 1));
        let helper = p.add_method(MethodDef::new(
            "helper",
            1,
            2,
            vec![
                Insn::New { class: c, dst: 1 },
                Insn::PutField {
                    object: 0,
                    field: 0,
                    value: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            2,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::Call {
                    method: helper,
                    args: vec![0],
                    dst: None,
                },
                Insn::GetField {
                    object: 0,
                    field: 0,
                    dst: 1,
                },
                Insn::GetField {
                    object: 1,
                    field: 0,
                    dst: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let vm = run(p);
        let stats = vm.collector().stats();
        assert_eq!(stats.objects_created, 2);
        assert_eq!(stats.objects_collected, 2);
        assert_eq!(stats.unions, 1);
        // Both objects die together when main pops: one block of size 2.
        assert_eq!(stats.block_sizes.bucket_count(1), 1);
        assert_eq!(vm.heap().live_count(), 0);
    }

    #[test]
    fn static_objects_are_never_collected() {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Global", 1));
        let s = p.add_static();
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            2,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::PutStatic {
                    static_id: s,
                    value: 0,
                },
                Insn::New { class: c, dst: 1 },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let breakdown = vm.collector_mut().breakdown();
        assert_eq!(breakdown.popped, 1);
        assert_eq!(breakdown.static_objects, 1);
        assert_eq!(vm.heap().live_count(), 1);
    }

    #[test]
    fn static_optimization_avoids_contaminating_the_referencer() {
        // A static object is stored INTO a local object: with the §3.4
        // optimisation the local object must still be collectable.
        let build = || {
            let mut p = Program::new();
            let c = p.add_class(ClassDef::new("Node", 1));
            let s = p.add_static();
            let helper = p.add_method(MethodDef::new(
                "helper",
                0,
                3,
                vec![
                    // local object
                    Insn::New { class: c, dst: 0 },
                    // read the static and store it into the local object
                    Insn::GetStatic {
                        static_id: s,
                        dst: 1,
                    },
                    Insn::PutField {
                        object: 0,
                        field: 0,
                        value: 1,
                    },
                    Insn::Return { value: None },
                ],
            ));
            let main = p.add_method(MethodDef::new(
                "main",
                0,
                1,
                vec![
                    Insn::New { class: c, dst: 0 },
                    Insn::PutStatic {
                        static_id: s,
                        value: 0,
                    },
                    Insn::Call {
                        method: helper,
                        args: vec![],
                        dst: None,
                    },
                    Insn::Return { value: None },
                ],
            ));
            p.set_entry(main);
            p
        };

        let vm_opt = run_with(build(), CgConfig::default());
        let vm_noopt = run_with(build(), CgConfig::without_static_opt());

        // With the optimisation: the helper's object dies when helper pops.
        assert_eq!(vm_opt.collector().stats().objects_collected, 1);
        assert_eq!(vm_opt.collector().stats().static_opt_skips, 1);
        // Without it: the helper's object is dragged into the static set.
        assert_eq!(vm_noopt.collector().stats().objects_collected, 0);
        assert!(vm_noopt.collector().stats().static_opt_skips == 0);
    }

    #[test]
    fn contamination_cannot_be_undone() {
        // E (static) contaminates D, then points away (step 5 of Figure 2.2):
        // D stays static even though nothing references it any more.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Node", 1));
        let s = p.add_static();
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            3,
            vec![
                Insn::New { class: c, dst: 0 }, // D
                Insn::GetStatic {
                    static_id: s,
                    dst: 1,
                }, // E
                Insn::PutField {
                    object: 1,
                    field: 0,
                    value: 0,
                }, // E.f = D  (contaminates D)
                Insn::LoadNull { dst: 2 },
                Insn::PutField {
                    object: 1,
                    field: 0,
                    value: 2,
                }, // E.f = null (points away)
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::PutStatic {
                    static_id: s,
                    value: 0,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        // D was contaminated by a static object: it is never collected,
        // even though it is actually garbage after step 5.
        assert_eq!(vm.collector().stats().objects_collected, 0);
        let breakdown = vm.collector_mut().breakdown();
        assert_eq!(breakdown.static_objects, 2);
        assert_eq!(vm.heap().live_count(), 2);
    }

    #[test]
    fn thread_shared_objects_become_static() {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Shared", 1));
        let worker = p.add_method(MethodDef::new(
            "worker",
            1,
            2,
            vec![
                Insn::New { class: c, dst: 1 },
                Insn::PutField {
                    object: 0,
                    field: 0,
                    value: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::SpawnThread {
                    method: worker,
                    args: vec![0],
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let breakdown = vm.collector_mut().breakdown();
        // The shared object is pinned as thread-shared; the worker's own
        // object contaminated it (stored into it) and is dragged along
        // unless the static optimisation applies — it does, since the shared
        // object is already static when the worker stores into it... the
        // worker stores its object INTO the shared one (shared.f = mine), so
        // the source is the shared (static) object and the optimisation does
        // not apply: both end up static.
        assert_eq!(breakdown.thread_shared, 2);
        assert_eq!(breakdown.popped, 0);
        assert!(vm.collector().stats().objects_thread_shared >= 1);
    }

    #[test]
    fn interned_objects_are_static() {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Str", 1));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            2,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::Intern {
                    key: 42,
                    src: 0,
                    dst: 1,
                },
                Insn::New { class: c, dst: 0 },
                Insn::Intern {
                    key: 42,
                    src: 0,
                    dst: 1,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let breakdown = vm.collector_mut().breakdown();
        // The first object is interned (static); the second maps to the
        // first and itself dies with main.
        assert_eq!(breakdown.static_objects, 1);
        assert_eq!(breakdown.popped, 1);
    }

    #[test]
    fn recycling_reuses_dead_objects() {
        // helper() allocates an object that dies on return; called many
        // times, later allocations must be served from the recycle list.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Temp", 2));
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            1,
            vec![Insn::New { class: c, dst: 0 }, Insn::Return { value: None }],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let vm = run_with(p, CgConfig::with_recycling());
        let stats = vm.collector().stats();
        assert_eq!(stats.objects_created, 4);
        // The first call allocates fresh; the remaining three reuse it.
        assert_eq!(stats.objects_recycled, 3);
        assert_eq!(vm.stats().recycled_allocations, 3);
        // Only one object was ever taken from the heap.
        assert_eq!(vm.heap().stats().objects_allocated, 1);
    }

    #[test]
    fn skip_contamination_fault_disables_unions() {
        // main's container receives the helper's temporary; normally the
        // store unions their blocks and the temp survives the helper.  With
        // the injected fault the store is dropped and the temp dies (wrongly)
        // at the helper's pop — exactly the defect the fuzz oracle hunts.
        let build = || {
            let mut p = Program::new();
            let c = p.add_class(ClassDef::new("Node", 1));
            let helper = p.add_method(MethodDef::new(
                "helper",
                1,
                2,
                vec![
                    Insn::New { class: c, dst: 1 },
                    Insn::PutField {
                        object: 0,
                        field: 0,
                        value: 1,
                    },
                    Insn::Return { value: None },
                ],
            ));
            let main = p.add_method(MethodDef::new(
                "main",
                0,
                1,
                vec![
                    Insn::New { class: c, dst: 0 },
                    Insn::Call {
                        method: helper,
                        args: vec![0],
                        dst: None,
                    },
                    Insn::Return { value: None },
                ],
            ));
            p.set_entry(main);
            p
        };
        let sound = run_with(build(), CgConfig::default());
        assert_eq!(sound.collector().stats().unions, 1);
        let faulty = run_with(
            build(),
            CgConfig::default().with_fault(FaultInjection::SkipContamination),
        );
        let stats = faulty.collector().stats();
        assert_eq!(stats.unions, 0);
        assert_eq!(stats.contaminations, 1);
        // The temp was freed at the helper's pop even though the container
        // still referenced it.
        assert!(faulty.collector().is_tainted(Handle::from_index(1)));
    }

    #[test]
    fn collector_name_reflects_configuration() {
        assert_eq!(ContaminatedGc::new().name(), "cg");
        assert_eq!(
            ContaminatedGc::with_config(CgConfig::with_recycling()).name(),
            "cg+recycle"
        );
        assert_eq!(
            ContaminatedGc::with_config(CgConfig::with_segregated_recycling()).name(),
            "cg+recycle-seg"
        );
        assert!(CgConfig::preferred().static_opt);
        assert!(!CgConfig::without_static_opt().static_opt);
        assert!(CgConfig::with_segregated_recycling().recycling);
    }

    /// A program whose helpers churn through mixed-size temporaries: many
    /// small objects and a few large ones, each batch dying on return.
    fn mixed_size_churn() -> Program {
        let mut p = Program::new();
        let small = p.add_class(ClassDef::new("Small", 1));
        let big = p.add_class(ClassDef::new("Big", 6));
        let small_helper = p.add_method(MethodDef::new(
            "smalls",
            0,
            8,
            (0..8u16)
                .map(|i| Insn::New {
                    class: small,
                    dst: i,
                })
                .chain([Insn::Return { value: None }])
                .collect(),
        ));
        let big_helper = p.add_method(MethodDef::new(
            "big",
            0,
            1,
            vec![
                Insn::New { class: big, dst: 0 },
                Insn::Return { value: None },
            ],
        ));
        let mut code = Vec::new();
        for _ in 0..4 {
            code.push(Insn::Call {
                method: small_helper,
                args: vec![],
                dst: None,
            });
            code.push(Insn::Call {
                method: big_helper,
                args: vec![],
                dst: None,
            });
        }
        code.push(Insn::Return { value: None });
        let main = p.add_method(MethodDef::new("main", 0, 1, code));
        p.set_entry(main);
        p
    }

    #[test]
    fn segregated_recycling_reuses_as_much_with_fewer_probes() {
        let first_fit = run_with(mixed_size_churn(), CgConfig::with_recycling());
        let segregated = run_with(mixed_size_churn(), CgConfig::with_segregated_recycling());
        let ff = first_fit.collector().stats();
        let seg = segregated.collector().stats();
        // Both policies find a reusable corpse whenever one exists, so the
        // recycle counts agree...
        assert_eq!(ff.objects_created, seg.objects_created);
        assert_eq!(ff.objects_recycled, seg.objects_recycled);
        assert!(seg.objects_recycled > 0);
        // ...but first fit pays a scan over the (mostly too-small) list for
        // every big request, while the bins jump straight to the right
        // class.
        assert!(
            seg.recycle_probes < ff.recycle_probes,
            "segregated probes {} vs first-fit {}",
            seg.recycle_probes,
            ff.recycle_probes
        );
        // The recycled heap footprint is identical either way.
        assert_eq!(
            first_fit.heap().stats().objects_allocated,
            segregated.heap().stats().objects_allocated
        );
    }

    #[test]
    fn deep_call_chains_record_age_at_death() {
        // A chain of calls each returning an object allocated at the bottom:
        // the object climbs several frames before dying.
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Deep", 1));
        // depth3() -> new object
        let depth3 = p.add_method(MethodDef::new(
            "depth3",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::Return { value: Some(0) },
            ],
        ));
        let depth2 = p.add_method(MethodDef::new(
            "depth2",
            0,
            1,
            vec![
                Insn::Call {
                    method: depth3,
                    args: vec![],
                    dst: Some(0),
                },
                Insn::Return { value: Some(0) },
            ],
        ));
        let depth1 = p.add_method(MethodDef::new(
            "depth1",
            0,
            1,
            vec![
                Insn::Call {
                    method: depth2,
                    args: vec![],
                    dst: Some(0),
                },
                Insn::Return { value: Some(0) },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::Call {
                    method: depth1,
                    args: vec![],
                    dst: Some(0),
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let vm = run(p);
        let stats = vm.collector().stats();
        assert_eq!(stats.objects_created, 1);
        assert_eq!(stats.objects_collected, 1);
        // Born at depth 4 (main=1, depth1=2, depth2=3, depth3=4), dies when
        // main (depth 1) pops: frame distance 3.
        assert_eq!(stats.age_at_death.bucket_count(3), 1);
        assert_eq!(stats.returns_retargeted, 3);
    }

    #[test]
    fn purge_unreachable_counts_msa_collected() {
        let vm = run(non_escaping_program(1));
        let mut cg = vm.collector().clone();
        // Simulate a traditional collection that finds nothing live.
        let live = vec![false; 1];
        let before = cg.stats().reset_collected_by_msa;
        cg.purge_unreachable(&live);
        // The single object was already collected by CG, so nothing new.
        assert_eq!(cg.stats().reset_collected_by_msa, before);
    }

    #[test]
    fn breakdown_accounts_for_every_object() {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Mix", 1));
        let s = p.add_static();
        let helper = p.add_method(MethodDef::new(
            "helper",
            0,
            1,
            vec![Insn::New { class: c, dst: 0 }, Insn::Return { value: None }],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            1,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::PutStatic {
                    static_id: s,
                    value: 0,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Call {
                    method: helper,
                    args: vec![],
                    dst: None,
                },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        let mut vm = run(p);
        let created = vm.collector().stats().objects_created;
        let breakdown = vm.collector_mut().breakdown();
        assert_eq!(breakdown.total(), created);
        assert_eq!(breakdown.popped, 2);
        assert_eq!(breakdown.static_objects, 1);
    }
}
