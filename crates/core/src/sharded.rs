//! The sharded contaminated collector: N per-thread shards, one shared
//! static domain, driven from a single event stream.
//!
//! [`ShardedGc`] is the sequential face of the sharded design: it implements
//! [`Collector`], so it can sit in a live VM or under a trace replay exactly
//! like [`ContaminatedGc`](crate::ContaminatedGc), but internally it routes
//! every event to the shard owning the affected state:
//!
//! * allocations, frame pushes/pops and recycled allocations go to the shard
//!   of the executing thread (the object's *owner* from then on);
//! * object accesses and static stores go to the shard owning the touched
//!   object (only that shard's block changes);
//! * reference stores are processed by the executing thread's shard; an
//!   operand owned by a *different* shard is first escalated to the shared
//!   [`StaticDomain`] per §3.3 — handing an object across a shard boundary
//!   proves it is reachable from a foreign thread — and the store then
//!   reduces to a union of domain nodes.  Shards never union blocks across
//!   shard boundaries.
//!
//! With `shard_count == 1` every event lands in the single shard and the
//! code path is exactly [`ContaminatedGc`](crate::ContaminatedGc)'s.  For
//! event streams recorded
//! from the VM the escalation rule never fires early (every cross-thread
//! access precedes the store that uses the object), so the aggregated
//! statistics are byte-identical to the single-shard collector's **for every
//! shard count** — the invariant the `cg-bench` equivalence tests pin down.
//!
//! One caveat: §3.7 **recycling** bins are per-shard (a shard's allocations
//! are only served from its own corpses; shards never touch each other's
//! free lists).  The single-shard collector searches one global recycle
//! list, so under `CgConfig::with_recycling()` a multi-shard run can
//! legitimately recycle fewer objects than the 1-shard run — the
//! byte-identical guarantee covers the non-recycling configurations
//! (recycling also makes the allocation stream collector-dependent, which
//! is why recycling traces cannot be replayed at all; see `cg-trace`).
//! Rather than silently produce stats outside the guarantee, construction
//! **rejects** recycling configs with more than one shard:
//! [`ShardedGc::try_new`] returns [`ShardConfigError::RecyclingMultiShard`]
//! and [`ShardedGc::new`] panics.  A 1-shard recycling collector is exactly
//! the global-list collector and remains allowed.
//!
//! The parallel evaluation in `cg-bench` uses the same [`CollectorShard`]
//! code on real OS threads, with each shard driven from its partitioned
//! sub-stream (`cg-trace`'s partitioner) instead of through this sequential
//! router.

use cg_vm::{ClassId, CollectOutcome, Collector, FrameInfo, Handle, Heap, RootSet, ThreadId};

use crate::collector::CgConfig;
use crate::shard::{aggregate_stats, CollectorShard, StoreOperand};
use crate::static_domain::StaticDomain;
use crate::stats::{CgStats, ObjectBreakdown};

/// Why a [`ShardedGc`] configuration was rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardConfigError {
    /// Zero shards were requested.
    ZeroShards,
    /// §3.7 recycling with more than one shard: per-shard recycle bins make
    /// the aggregated stats diverge from the single-shard collector, which
    /// would silently break the byte-identical stats guarantee.
    RecyclingMultiShard {
        /// The rejected shard count.
        shard_count: usize,
    },
}

impl core::fmt::Display for ShardConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShardConfigError::ZeroShards => {
                write!(f, "a sharded collector needs at least one shard")
            }
            ShardConfigError::RecyclingMultiShard { shard_count } => write!(
                f,
                "recycling configs are limited to one shard (got {shard_count}): \
                 per-shard recycle bins fall outside the byte-identical stats \
                 guarantee; use shard_count=1 or disable recycling"
            ),
        }
    }
}

impl std::error::Error for ShardConfigError {}

/// A contaminated collector whose mutable state is split into per-thread
/// shards plus one shared static domain.
#[derive(Debug, Clone)]
pub struct ShardedGc {
    shards: Vec<CollectorShard>,
    domain: StaticDomain,
    /// Owner shard per handle index (`u32::MAX` = not yet seen).
    owner: Vec<u32>,
    breakdown: Option<ObjectBreakdown>,
    name: String,
}

impl ShardedGc {
    /// Creates a collector with `shard_count` shards (threads map to shards
    /// round-robin: thread *t* lives in shard `t % shard_count`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — zero shards, or a §3.7
    /// recycling config with more than one shard (see [`ShardedGc::try_new`]
    /// for the non-panicking form and the module docs for why multi-shard
    /// recycling is rejected).
    pub fn new(shard_count: usize, config: CgConfig) -> Self {
        match Self::try_new(shard_count, config) {
            Ok(gc) => gc,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`ShardedGc::new`]: returns a [`ShardConfigError`]
    /// instead of panicking on an invalid shard count / config combination.
    pub fn try_new(shard_count: usize, config: CgConfig) -> Result<Self, ShardConfigError> {
        if shard_count == 0 {
            return Err(ShardConfigError::ZeroShards);
        }
        if config.recycling && shard_count > 1 {
            return Err(ShardConfigError::RecyclingMultiShard { shard_count });
        }
        Ok(Self {
            shards: (0..shard_count)
                .map(|_| CollectorShard::new(config))
                .collect(),
            domain: StaticDomain::with_impl(config.domain_impl),
            owner: Vec::new(),
            breakdown: None,
            name: format!("cg-sharded-{shard_count}"),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a thread's state lives in.
    pub fn shard_of(&self, thread: ThreadId) -> usize {
        thread.raw() as usize % self.shards.len()
    }

    /// The shards (for per-shard statistics).
    pub fn shards(&self) -> &[CollectorShard] {
        &self.shards
    }

    /// The shared static domain.
    pub fn domain(&self) -> &StaticDomain {
        &self.domain
    }

    /// Aggregated statistics across all shards, with the thread-shared
    /// total taken from the aggregated breakdown once the program has ended
    /// (exactly how the single-shard collector reports it).
    pub fn stats(&self) -> CgStats {
        let mut stats = aggregate_stats(self.shards.iter().map(CollectorShard::stats));
        if let Some(b) = self.breakdown {
            stats.objects_thread_shared = b.thread_shared;
        }
        stats
    }

    /// Final disposition of every created object, aggregated across shards.
    pub fn breakdown(&mut self) -> ObjectBreakdown {
        match self.breakdown {
            Some(b) => b,
            None => self.compute_breakdown(),
        }
    }

    fn compute_breakdown(&mut self) -> ObjectBreakdown {
        crate::shard::aggregate_shards(self.shards.iter_mut(), &self.domain).1
    }

    fn owner_shard(&self, handle: Handle) -> Option<usize> {
        match self.owner.get(handle.index_usize()) {
            Some(&s) if s != u32::MAX => Some(s as usize),
            _ => None,
        }
    }

    fn set_owner(&mut self, handle: Handle, shard: usize) {
        if self.owner.len() <= handle.index_usize() {
            self.owner.resize(handle.index_usize() + 1, u32::MAX);
        }
        self.owner[handle.index_usize()] = shard as u32;
    }

    /// Classifies a store operand for the processing shard `p`: owned
    /// locally, or escalated through its owner shard per §3.3.
    fn store_operand(&mut self, handle: Handle, p: usize, frame: &FrameInfo) -> StoreOperand {
        match self.owner_shard(handle) {
            Some(o) if o != p => {
                let node = self.shards[o].escalate_for_sharing(handle, frame, &self.domain);
                StoreOperand::Static(node)
            }
            Some(_) => StoreOperand::Owned(handle),
            // Never seen: the processing shard registers the handle
            // conservatively (like the 1-shard path) and owns it from here.
            None => {
                self.set_owner(handle, p);
                StoreOperand::Owned(handle)
            }
        }
    }
}

impl Collector for ShardedGc {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_allocate(&mut self, handle: Handle, frame: &FrameInfo, _heap: &Heap) {
        let s = self.shard_of(frame.thread);
        // A conservatively registered handle (static store or return value
        // seen before its allocation) may already live in another shard;
        // this allocation re-registers the incarnation under the allocating
        // thread, so the stale bookkeeping moves out of the old shard —
        // mirroring the 1-shard collector, where register() overwrites the
        // slot in place.
        if let Some(o) = self.owner_shard(handle) {
            if o != s {
                self.shards[o].forget(handle);
            }
        }
        self.set_owner(handle, s);
        self.shards[s].on_allocate(handle, frame, &self.domain);
    }

    fn on_reference_store(
        &mut self,
        source: Handle,
        target: Handle,
        frame: &FrameInfo,
        _heap: &Heap,
    ) {
        let p = self.shard_of(frame.thread);
        let s = self.store_operand(source, p, frame);
        let t = self.store_operand(target, p, frame);
        self.shards[p].on_reference_store_between(s, t, frame, &self.domain);
    }

    fn on_static_store(&mut self, target: Handle, _heap: &Heap) {
        let o = match self.owner_shard(target) {
            Some(o) => o,
            // Never seen: shard 0 registers it conservatively against the
            // static pseudo-frame and owns the incarnation from here.
            None => {
                self.set_owner(target, 0);
                0
            }
        };
        self.shards[o].on_static_store(target, &self.domain);
    }

    fn on_return_value(&mut self, value: Handle, caller: &FrameInfo, callee: &FrameInfo) {
        let p = self.shard_of(caller.thread);
        match self.owner_shard(value) {
            // A value owned by a foreign shard is provably a no-op: its
            // dependent frame is on another thread (or static), and frames
            // of different threads are never comparable.
            Some(o) if o != p => {}
            owner => {
                if owner.is_none() {
                    // Conservative registration in the caller's shard.
                    self.set_owner(value, p);
                }
                self.shards[p].on_return_value(value, caller, callee, &self.domain)
            }
        }
    }

    fn on_frame_pop(&mut self, frame: &FrameInfo, heap: &mut Heap) -> CollectOutcome {
        let p = self.shard_of(frame.thread);
        self.shards[p].on_frame_pop(frame, heap)
    }

    fn on_object_access(&mut self, handle: Handle, thread: ThreadId, _heap: &Heap) {
        let Some(o) = self.owner_shard(handle) else {
            return;
        };
        self.shards[o].on_object_access(handle, thread, &self.domain);
    }

    fn try_recycled_alloc(
        &mut self,
        class: ClassId,
        field_count: usize,
        frame: &FrameInfo,
        heap: &mut Heap,
    ) -> Option<Handle> {
        let p = self.shard_of(frame.thread);
        self.shards[p].try_recycled_alloc(class, field_count, heap)
    }

    fn on_program_end(&mut self, _roots: &RootSet, _heap: &mut Heap) {
        let breakdown = self.compute_breakdown();
        self.breakdown = Some(breakdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::ContaminatedGc;
    use cg_vm::{ClassDef, FrameId, Insn, MethodDef, MethodId, Program, Vm, VmConfig};

    fn frame(id: u64, depth: usize, thread: u32) -> FrameInfo {
        FrameInfo {
            id: FrameId::new(id),
            depth,
            thread: ThreadId::new(thread),
            method: MethodId::new(0),
        }
    }

    /// A multi-threaded program: main allocates a batch that two workers
    /// traverse (thread-shared), each worker churns through private
    /// temporaries, and everyone reads a static chain.
    fn threaded_program() -> Program {
        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Node", 2));
        let s = p.add_static();
        let worker = p.add_method(MethodDef::new(
            "worker",
            1,
            4,
            vec![
                // Touch the shared argument.
                Insn::GetField {
                    object: 0,
                    field: 0,
                    dst: 1,
                },
                // Private temporaries, one chained pair.
                Insn::New { class: c, dst: 1 },
                Insn::New { class: c, dst: 2 },
                Insn::PutField {
                    object: 1,
                    field: 0,
                    value: 2,
                },
                // Store the static head into a private temp (§3.4 case).
                Insn::GetStatic {
                    static_id: s,
                    dst: 3,
                },
                Insn::New { class: c, dst: 2 },
                Insn::PutField {
                    object: 2,
                    field: 1,
                    value: 3,
                },
                Insn::Return { value: None },
            ],
        ));
        let main = p.add_method(MethodDef::new(
            "main",
            0,
            3,
            vec![
                Insn::New { class: c, dst: 0 },
                Insn::PutStatic {
                    static_id: s,
                    value: 0,
                },
                Insn::New { class: c, dst: 1 },
                Insn::SpawnThread {
                    method: worker,
                    args: vec![1],
                },
                Insn::SpawnThread {
                    method: worker,
                    args: vec![1],
                },
                Insn::New { class: c, dst: 2 },
                Insn::Return { value: None },
            ],
        ));
        p.set_entry(main);
        p
    }

    fn run_sharded(shards: usize) -> (CgStats, ObjectBreakdown) {
        let mut vm = Vm::new(
            threaded_program(),
            VmConfig::small(),
            ShardedGc::new(shards, CgConfig::default()),
        );
        vm.run().expect("program runs");
        let breakdown = vm.collector_mut().breakdown();
        (vm.collector().stats(), breakdown)
    }

    #[test]
    fn live_sharded_runs_match_the_single_shard_collector() {
        let mut vm = Vm::new(threaded_program(), VmConfig::small(), ContaminatedGc::new());
        vm.run().expect("program runs");
        let single_breakdown = vm.collector_mut().breakdown();
        let single_stats = vm.collector().stats().clone();
        for shards in [1, 2, 3, 4, 8] {
            let (stats, breakdown) = run_sharded(shards);
            assert_eq!(stats, single_stats, "{shards} shards");
            assert_eq!(breakdown, single_breakdown, "{shards} shards");
        }
    }

    #[test]
    fn shards_partition_the_objects() {
        let mut vm = Vm::new(
            threaded_program(),
            VmConfig::small(),
            ShardedGc::new(3, CgConfig::default()),
        );
        vm.run().expect("program runs");
        let cg = vm.collector();
        assert_eq!(cg.shard_count(), 3);
        assert_eq!(cg.name(), "cg-sharded-3");
        // Three threads, three shards: every shard created some objects,
        // and the totals add up.
        let per_shard: Vec<u64> = cg
            .shards()
            .iter()
            .map(|s| s.stats().objects_created)
            .collect();
        assert!(per_shard.iter().all(|&n| n > 0), "{per_shard:?}");
        assert_eq!(per_shard.iter().sum::<u64>(), cg.stats().objects_created);
        // The shared batch lives in the domain.
        assert!(cg.domain().member_count() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedGc::new(0, CgConfig::default());
    }

    #[test]
    fn conservative_registration_moves_with_a_later_allocation() {
        // The defensive path: a StaticStore names a handle the collector has
        // never seen (no Allocate yet), and the handle is then allocated by
        // a thread mapping to a *different* shard.  The conservative
        // incarnation must move out of shard 0 with the allocation, exactly
        // like the 1-shard collector's register() overwriting the slot —
        // otherwise the object would be double-counted in the breakdown.
        use cg_heap::HeapConfig;
        use cg_vm::{ClassId, RootSet};
        let drive = |collector: &mut dyn Collector| {
            let mut heap = cg_vm::Heap::new(HeapConfig::small());
            let h0 = heap.allocate(ClassId::new(0), 1).expect("fits");
            collector.on_static_store(h0, &heap);
            // Thread 1 maps to shard 1 of 2.
            collector.on_allocate(h0, &frame(5, 1, 1), &heap);
            collector.on_program_end(&RootSet::default(), &mut heap);
        };
        let mut single = ContaminatedGc::new();
        drive(&mut single);
        let mut sharded = ShardedGc::new(2, CgConfig::default());
        drive(&mut sharded);
        assert_eq!(sharded.stats(), *single.stats());
        assert_eq!(sharded.breakdown(), single.breakdown());
        assert_eq!(sharded.breakdown().total(), 1, "no double counting");
    }

    #[test]
    fn multi_shard_recycling_is_rejected_at_construction() {
        // Pin the contract: per-shard recycle bins fall outside the
        // byte-identical stats guarantee, so the combination must be an
        // explicit construction error — not a silently-divergent collector.
        for config in [
            CgConfig::with_recycling(),
            CgConfig::with_segregated_recycling(),
        ] {
            match ShardedGc::try_new(4, config) {
                Err(ShardConfigError::RecyclingMultiShard { shard_count: 4 }) => {}
                other => panic!("expected RecyclingMultiShard, got {other:?}"),
            }
            // The error names both the cause and the remedies.
            let message = ShardedGc::try_new(2, config).unwrap_err().to_string();
            assert!(message.contains("recycling"), "{message}");
            assert!(message.contains("one shard"), "{message}");
        }
        assert_eq!(
            ShardedGc::try_new(0, CgConfig::default()).unwrap_err(),
            ShardConfigError::ZeroShards
        );
    }

    #[test]
    #[should_panic(expected = "recycling configs are limited to one shard")]
    fn multi_shard_recycling_panics_in_new() {
        let _ = ShardedGc::new(2, CgConfig::with_recycling());
    }

    #[test]
    fn single_shard_recycling_still_allowed() {
        // One shard is exactly the global-recycle-list collector, so the
        // guarantee holds and construction must keep working.
        let sharded = ShardedGc::try_new(1, CgConfig::with_segregated_recycling())
            .expect("1-shard recycling is inside the guarantee");
        assert_eq!(sharded.shard_count(), 1);
    }
}
