//! The per-frame index of equilive blocks, as dense stacks.
//!
//! Every live equilive block (identified by its root element) depends on
//! exactly one frame; when that frame pops, the block dies (§2.2).  The seed
//! kept this index as `HashMap<FrameId, HashSet<ElementId>>`, paying a hash
//! per attach/detach and a clone-heavy drain per pop.  But frames pop in
//! LIFO order within a thread, so the index is really a *stack of buckets*:
//! one bucket per stack depth per thread, plus one bucket for the static
//! pseudo-frame.  Attach pushes into the bucket at the block's dependent
//! depth; popping a frame drains the bucket at that depth (which is, by
//! LIFO, exactly that frame's blocks); detach is O(1) via a recorded
//! `(thread, depth, index)` slot per root, fixed up on `swap_remove`.
//!
//! Everything on the hot path is an index into a `Vec`; buckets keep their
//! capacity across push/pop cycles, so the steady state allocates nothing.

use cg_unionfind::ElementId;
use cg_vm::ThreadId;

use crate::equilive::FrameKey;

/// Where a block root is currently attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AttachSlot {
    /// Owning thread index, [`AttachSlot::STATIC`] for the static bucket, or
    /// [`AttachSlot::NONE`] when detached.
    thread: u32,
    /// Frame depth within the thread (unused for static/none).
    depth: u32,
    /// Position within the bucket (fixed up on `swap_remove`).
    index: u32,
}

impl AttachSlot {
    const NONE: u32 = u32::MAX;
    const STATIC: u32 = u32::MAX - 1;

    const DETACHED: AttachSlot = AttachSlot {
        thread: Self::NONE,
        depth: 0,
        index: 0,
    };
}

/// Dense frame-block stacks: the blocks dependent on every live frame, in
/// O(1) attach/detach and allocation-free pop-drain order.
#[derive(Debug, Clone, Default)]
pub struct FrameBlockIndex {
    /// `threads[thread][depth]` holds the roots dependent on the frame at
    /// `depth` of `thread` (depth 0 is never used: it belongs to the static
    /// pseudo-frame, which has its own bucket).
    threads: Vec<Vec<Vec<ElementId>>>,
    /// Roots dependent on the static pseudo-frame ("frame 0").
    statics: Vec<ElementId>,
    /// Current attachment of every element id ever attached.
    slots: Vec<AttachSlot>,
}

impl FrameBlockIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, root: ElementId) -> AttachSlot {
        self.slots
            .get(root as usize)
            .copied()
            .unwrap_or(AttachSlot::DETACHED)
    }

    /// Whether `root` is currently attached to any bucket.
    pub fn is_attached(&self, root: ElementId) -> bool {
        self.slot(root).thread != AttachSlot::NONE
    }

    /// Number of blocks currently attached to the static pseudo-frame.
    pub fn static_block_count(&self) -> usize {
        self.statics.len()
    }

    /// Attaches `root` to the bucket of `key`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `root` is not already attached.
    pub fn attach(&mut self, root: ElementId, key: FrameKey) {
        debug_assert!(!self.is_attached(root), "root {root} is already attached");
        if self.slots.len() <= root as usize {
            self.slots.resize(root as usize + 1, AttachSlot::DETACHED);
        }
        match key {
            FrameKey::Static => {
                self.slots[root as usize] = AttachSlot {
                    thread: AttachSlot::STATIC,
                    depth: 0,
                    index: self.statics.len() as u32,
                };
                self.statics.push(root);
            }
            FrameKey::Frame { depth, thread, .. } => {
                let t = thread.raw() as usize;
                if self.threads.len() <= t {
                    self.threads.resize_with(t + 1, Vec::new);
                }
                let stacks = &mut self.threads[t];
                if stacks.len() <= depth {
                    stacks.resize_with(depth + 1, Vec::new);
                }
                let bucket = &mut stacks[depth];
                self.slots[root as usize] = AttachSlot {
                    thread: t as u32,
                    depth: depth as u32,
                    index: bucket.len() as u32,
                };
                bucket.push(root);
            }
        }
    }

    /// Detaches `root` from whatever bucket it is attached to (no-op if
    /// detached — a block absorbed by a union is detached exactly once).
    pub fn detach(&mut self, root: ElementId) {
        let slot = self.slot(root);
        let bucket = match slot.thread {
            AttachSlot::NONE => return,
            AttachSlot::STATIC => &mut self.statics,
            t => &mut self.threads[t as usize][slot.depth as usize],
        };
        let index = slot.index as usize;
        debug_assert_eq!(bucket[index], root, "attachment slot out of sync");
        bucket.swap_remove(index);
        if let Some(&moved) = bucket.get(index) {
            self.slots[moved as usize].index = index as u32;
        }
        self.slots[root as usize] = AttachSlot::DETACHED;
    }

    /// Pops one block root dependent on the frame at `depth` of `thread`,
    /// or `None` once the frame's bucket is drained.  By LIFO popping, the
    /// bucket at `depth` holds exactly the popping frame's blocks.
    pub fn pop_frame_block(&mut self, thread: ThreadId, depth: usize) -> Option<ElementId> {
        let bucket = self
            .threads
            .get_mut(thread.raw() as usize)?
            .get_mut(depth)?;
        let root = bucket.pop()?;
        self.slots[root as usize] = AttachSlot::DETACHED;
        Some(root)
    }

    /// Detaches everything (the §3.6 resetting pass); bucket capacity is
    /// retained.
    pub fn clear(&mut self) {
        for stacks in &mut self.threads {
            for bucket in stacks.iter_mut() {
                bucket.clear();
            }
        }
        self.statics.clear();
        self.slots.fill(AttachSlot::DETACHED);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_vm::FrameId;

    fn key(thread: u32, depth: usize) -> FrameKey {
        FrameKey::Frame {
            id: FrameId::new(depth as u64 + 1),
            depth,
            thread: ThreadId::new(thread),
        }
    }

    #[test]
    fn attach_pop_drains_one_frames_blocks() {
        let mut index = FrameBlockIndex::new();
        index.attach(1, key(0, 1));
        index.attach(2, key(0, 2));
        index.attach(3, key(0, 2));
        assert!(index.is_attached(2));
        // Popping depth 2 yields exactly the two blocks attached there.
        let mut drained = Vec::new();
        while let Some(root) = index.pop_frame_block(ThreadId::MAIN, 2) {
            drained.push(root);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![2, 3]);
        assert!(!index.is_attached(2));
        assert!(index.is_attached(1));
        assert_eq!(index.pop_frame_block(ThreadId::MAIN, 2), None);
    }

    #[test]
    fn detach_fixes_up_swapped_slot() {
        let mut index = FrameBlockIndex::new();
        index.attach(10, key(0, 1));
        index.attach(11, key(0, 1));
        index.attach(12, key(0, 1));
        // Removing the first element swap-moves the last into its slot;
        // that element must still detach cleanly afterwards.
        index.detach(10);
        index.detach(12);
        assert!(index.is_attached(11));
        assert_eq!(index.pop_frame_block(ThreadId::MAIN, 1), Some(11));
        assert_eq!(index.pop_frame_block(ThreadId::MAIN, 1), None);
    }

    #[test]
    fn detach_of_detached_root_is_noop() {
        let mut index = FrameBlockIndex::new();
        index.detach(99);
        index.attach(5, FrameKey::Static);
        assert_eq!(index.static_block_count(), 1);
        index.detach(5);
        index.detach(5);
        assert_eq!(index.static_block_count(), 0);
    }

    #[test]
    fn static_bucket_is_separate_from_frames() {
        let mut index = FrameBlockIndex::new();
        index.attach(1, FrameKey::Static);
        index.attach(2, key(0, 1));
        assert_eq!(index.static_block_count(), 1);
        assert_eq!(index.pop_frame_block(ThreadId::MAIN, 1), Some(2));
        // The static bucket never drains through frame pops.
        assert_eq!(index.static_block_count(), 1);
    }

    #[test]
    fn threads_do_not_interfere() {
        let mut index = FrameBlockIndex::new();
        index.attach(1, key(0, 1));
        index.attach(2, key(1, 1));
        assert_eq!(index.pop_frame_block(ThreadId::new(1), 1), Some(2));
        assert_eq!(index.pop_frame_block(ThreadId::new(1), 1), None);
        assert_eq!(index.pop_frame_block(ThreadId::MAIN, 1), Some(1));
        // Unknown threads and depths are empty, not errors.
        assert_eq!(index.pop_frame_block(ThreadId::new(7), 3), None);
    }

    #[test]
    fn clear_detaches_everything() {
        let mut index = FrameBlockIndex::new();
        index.attach(1, key(0, 1));
        index.attach(2, FrameKey::Static);
        index.clear();
        assert!(!index.is_attached(1));
        assert!(!index.is_attached(2));
        assert_eq!(index.static_block_count(), 0);
        assert_eq!(index.pop_frame_block(ThreadId::MAIN, 1), None);
        // Reattach after clear works (slot table was reset, not truncated).
        index.attach(1, key(0, 2));
        assert!(index.is_attached(1));
    }
}
