//! Baseline collectors for the contaminated-GC reproduction.
//!
//! The paper compares the contaminated collector against Sun's JDK 1.1.8
//! system, whose traditional collector is a non-generational mark-sweep
//! ("MSA" in the thesis).  This crate provides:
//!
//! * [`MarkSweep`] — the MSA baseline: mark from the roots, sweep everything
//!   unmarked back to the object-space free list, no compaction (the paper's
//!   timing runs avoid heap compaction, §4.5).
//! * [`trace_live`] — the reusable marking pass, also used by the hybrid
//!   contaminated collector when it resets its structures during a
//!   traditional collection (§3.6) and by tests that check the contaminated
//!   collector never frees a reachable object.
//! * [`NoopCollector`] (re-exported from `cg-vm`) — the "GC disabled, plenty
//!   of storage" configuration used to isolate CG's bookkeeping overhead in
//!   §4.5.
//!
//! # Example
//!
//! ```
//! use cg_vm::{Program, ClassDef, MethodDef, Insn, Vm, VmConfig};
//! use cg_baseline::MarkSweep;
//!
//! let mut program = Program::new();
//! let class = program.add_class(ClassDef::new("Node", 1));
//! let main = program.add_method(MethodDef::new("main", 0, 2, vec![
//!     Insn::New { class, dst: 0 },
//!     Insn::New { class, dst: 1 },
//!     Insn::Return { value: None },
//! ]));
//! program.set_entry(main);
//!
//! let mut vm = Vm::new(program, VmConfig::default(), MarkSweep::new());
//! vm.run()?;
//! # Ok::<(), cg_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod marksweep;

pub use cg_vm::NoopCollector;
pub use marksweep::{trace_live, MarkSweep, MarkSweepStats};
