//! The mark-sweep (MSA) baseline collector.

use cg_vm::{CollectOutcome, Collector, Handle, Heap, RootSet};

/// Statistics accumulated by the [`MarkSweep`] collector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarkSweepStats {
    /// Full collections performed.
    pub cycles: u64,
    /// Objects visited by the mark phase, summed over all cycles.
    pub objects_marked: u64,
    /// Objects swept (freed), summed over all cycles.
    pub objects_swept: u64,
    /// Bytes returned to the free list, summed over all cycles.
    pub bytes_swept: u64,
    /// The largest number of objects marked in a single cycle — a proxy for
    /// the cache-polluting working set the paper's introduction complains
    /// about.
    pub peak_marked_in_cycle: u64,
}

/// Computes the set of handles reachable from `roots`, as a dense bitmap
/// indexed by handle index.
///
/// The traversal is an explicit work-list depth-first search so deep object
/// graphs cannot overflow the Rust stack.
///
/// # Example
///
/// ```
/// use cg_heap::{Heap, HeapConfig, ClassId, Value};
/// use cg_vm::RootSet;
/// use cg_baseline::trace_live;
///
/// let mut heap = Heap::new(HeapConfig::small());
/// let a = heap.allocate(ClassId::new(0), 1)?;
/// let b = heap.allocate(ClassId::new(0), 0)?;
/// let c = heap.allocate(ClassId::new(0), 0)?;
/// heap.set_field(a, 0, Value::from(b))?;
/// let roots = RootSet { statics: vec![a], ..RootSet::default() };
/// let live = trace_live(&roots, &heap);
/// assert!(live[a.index_usize()] && live[b.index_usize()]);
/// assert!(!live[c.index_usize()]);
/// # Ok::<(), cg_heap::HeapError>(())
/// ```
pub fn trace_live(roots: &RootSet, heap: &Heap) -> Vec<bool> {
    let mut marked = vec![false; heap.handles_minted()];
    let mut worklist: Vec<Handle> = Vec::new();
    for root in roots.all_roots() {
        if heap.is_live(root) && !marked[root.index_usize()] {
            marked[root.index_usize()] = true;
            worklist.push(root);
        }
    }
    while let Some(handle) = worklist.pop() {
        // The borrowing iterator avoids allocating a Vec per marked object.
        for target in heap.references_iter(handle) {
            if heap.is_live(target) && !marked[target.index_usize()] {
                marked[target.index_usize()] = true;
                worklist.push(target);
            }
        }
    }
    marked
}

/// The traditional mark-sweep collector of the base JDK 1.1.8 system.
///
/// It ignores every incremental hook and only acts when the VM asks for a
/// full collection (allocation failure or a configured periodic trigger):
/// mark everything reachable from the roots, then sweep every unmarked live
/// object back to the free list.  Objects are not moved (no compaction),
/// matching the configuration the paper uses for its timing comparisons.
#[derive(Debug, Clone, Default)]
pub struct MarkSweep {
    stats: MarkSweepStats,
}

impl MarkSweep {
    /// Creates a mark-sweep collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics over all collections performed so far.
    pub fn stats(&self) -> &MarkSweepStats {
        &self.stats
    }
}

impl Collector for MarkSweep {
    fn name(&self) -> &str {
        "msa"
    }

    fn collect(&mut self, roots: &RootSet, heap: &mut Heap) -> CollectOutcome {
        let marked = trace_live(roots, heap);
        let marked_count = marked.iter().filter(|&&m| m).count() as u64;

        let victims: Vec<Handle> = heap
            .live_handles()
            .filter(|h| !marked[h.index_usize()])
            .collect();
        let mut freed_bytes = 0u64;
        let freed_objects = victims.len() as u64;
        for victim in victims {
            freed_bytes += heap.free(victim).expect("victim was live") as u64;
        }

        self.stats.cycles += 1;
        self.stats.objects_marked += marked_count;
        self.stats.objects_swept += freed_objects;
        self.stats.bytes_swept += freed_bytes;
        self.stats.peak_marked_in_cycle = self.stats.peak_marked_in_cycle.max(marked_count);

        CollectOutcome {
            freed_objects,
            freed_bytes,
            marked_objects: marked_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_heap::{ClassId, HeapConfig, Value};
    use cg_vm::{FrameId, FrameInfo, FrameRoots, MethodId, ThreadId};

    fn heap() -> Heap {
        Heap::new(HeapConfig::small())
    }

    fn class() -> ClassId {
        ClassId::new(0)
    }

    fn frame_roots(refs: Vec<Handle>) -> RootSet {
        RootSet {
            frames: vec![FrameRoots {
                frame: FrameInfo {
                    id: FrameId::new(1),
                    depth: 1,
                    thread: ThreadId::MAIN,
                    method: MethodId::new(0),
                },
                refs,
            }],
            ..RootSet::default()
        }
    }

    #[test]
    fn trace_live_follows_transitive_references() {
        let mut h = heap();
        let a = h.allocate(class(), 1).unwrap();
        let b = h.allocate(class(), 1).unwrap();
        let c = h.allocate(class(), 0).unwrap();
        let d = h.allocate(class(), 0).unwrap();
        h.set_field(a, 0, Value::from(b)).unwrap();
        h.set_field(b, 0, Value::from(c)).unwrap();
        let live = trace_live(&frame_roots(vec![a]), &h);
        assert!(live[a.index_usize()]);
        assert!(live[b.index_usize()]);
        assert!(live[c.index_usize()]);
        assert!(!live[d.index_usize()]);
    }

    #[test]
    fn trace_live_handles_cycles() {
        let mut h = heap();
        let a = h.allocate(class(), 1).unwrap();
        let b = h.allocate(class(), 1).unwrap();
        h.set_field(a, 0, Value::from(b)).unwrap();
        h.set_field(b, 0, Value::from(a)).unwrap();
        let live = trace_live(&frame_roots(vec![a]), &h);
        assert!(live[a.index_usize()] && live[b.index_usize()]);
    }

    #[test]
    fn trace_live_with_no_roots_marks_nothing() {
        let mut h = heap();
        let _a = h.allocate(class(), 0).unwrap();
        let live = trace_live(&RootSet::default(), &h);
        assert!(live.iter().all(|&m| !m));
    }

    #[test]
    fn collect_frees_unreachable_objects() {
        let mut h = heap();
        let a = h.allocate(class(), 1).unwrap();
        let b = h.allocate(class(), 0).unwrap();
        let dead1 = h.allocate(class(), 0).unwrap();
        let dead2 = h.allocate(class(), 2).unwrap();
        h.set_field(a, 0, Value::from(b)).unwrap();
        let mut msa = MarkSweep::new();
        let outcome = msa.collect(&frame_roots(vec![a]), &mut h);
        assert_eq!(outcome.freed_objects, 2);
        assert_eq!(outcome.marked_objects, 2);
        assert!(outcome.freed_bytes >= 8 + 16);
        assert!(h.is_live(a) && h.is_live(b));
        assert!(!h.is_live(dead1) && !h.is_live(dead2));
        assert_eq!(msa.stats().cycles, 1);
        assert_eq!(msa.stats().objects_swept, 2);
    }

    #[test]
    fn collect_twice_accumulates_stats() {
        let mut h = heap();
        let _dead = h.allocate(class(), 0).unwrap();
        let mut msa = MarkSweep::new();
        msa.collect(&RootSet::default(), &mut h);
        let _dead2 = h.allocate(class(), 0).unwrap();
        msa.collect(&RootSet::default(), &mut h);
        assert_eq!(msa.stats().cycles, 2);
        assert_eq!(msa.stats().objects_swept, 2);
        assert_eq!(msa.stats().peak_marked_in_cycle, 0);
    }

    #[test]
    fn cycles_in_garbage_are_collected() {
        let mut h = heap();
        let a = h.allocate(class(), 1).unwrap();
        let b = h.allocate(class(), 1).unwrap();
        h.set_field(a, 0, Value::from(b)).unwrap();
        h.set_field(b, 0, Value::from(a)).unwrap();
        let keep = h.allocate(class(), 0).unwrap();
        let mut msa = MarkSweep::new();
        let outcome = msa.collect(&frame_roots(vec![keep]), &mut h);
        assert_eq!(outcome.freed_objects, 2);
        assert!(h.is_live(keep));
        assert!(!h.is_live(a) && !h.is_live(b));
    }

    #[test]
    fn interpreter_and_static_roots_are_respected() {
        let mut h = heap();
        let s = h.allocate(class(), 0).unwrap();
        let i = h.allocate(class(), 0).unwrap();
        let dead = h.allocate(class(), 0).unwrap();
        let roots = RootSet {
            statics: vec![s],
            interpreter: vec![i],
            ..RootSet::default()
        };
        let mut msa = MarkSweep::new();
        msa.collect(&roots, &mut h);
        assert!(h.is_live(s) && h.is_live(i));
        assert!(!h.is_live(dead));
    }

    #[test]
    fn default_is_a_fresh_collector() {
        let msa = MarkSweep::default();
        assert_eq!(msa.stats(), &MarkSweepStats::default());
        assert_eq!(msa.name(), "msa");
    }

    /// The oracle's own check: `trace_live` agrees with an independently
    /// written reachability computation (a naive fixed-point iteration, no
    /// shared code with the worklist DFS), and a collection then keeps
    /// exactly the reachable set — on randomly built object graphs.
    ///
    /// `cg-fuzz` leans on mark-sweep as precise ground truth, so the ground
    /// truth needs a witness that does not share its traversal logic.
    #[test]
    fn trace_live_matches_independent_fixed_point_on_random_graphs() {
        use cg_testutil::TestRng;

        for seed in 0..48u64 {
            let mut rng = TestRng::new(seed);
            let mut h = heap();
            let count = rng.gen_range(3, 40);
            let mut handles = Vec::with_capacity(count);
            for _ in 0..count {
                let fields = rng.gen_range(0, 4);
                handles.push(h.allocate(class(), fields).unwrap());
            }
            // Random edges (including self-loops and cycles).
            for _ in 0..rng.gen_range(0, 3 * count) {
                let src = *rng.pick(&handles);
                let dst = *rng.pick(&handles);
                let slots = h.get(src).unwrap().slot_count();
                if slots > 0 {
                    h.set_field(src, rng.gen_range(0, slots), Value::from(dst))
                        .unwrap();
                }
            }
            // A few objects freed up front: dead handles must stay dead.
            let mut freed = vec![false; count];
            for _ in 0..rng.gen_range(0, count / 3 + 1) {
                let i = rng.gen_range(0, count);
                if !freed[i] {
                    h.free(handles[i]).unwrap();
                    freed[i] = true;
                }
            }
            let roots: Vec<Handle> = handles
                .iter()
                .enumerate()
                .filter(|&(i, _)| !freed[i] && rng.gen_bool(0.25))
                .map(|(_, &handle)| handle)
                .collect();
            let root_set = RootSet {
                statics: roots.clone(),
                ..RootSet::default()
            };

            // Independent model: iterate to a fixed point over the live
            // objects' reference lists.
            let mut model = vec![false; h.handles_minted()];
            for &root in &roots {
                model[root.index_usize()] = true;
            }
            loop {
                let mut changed = false;
                for src in h.live_handles() {
                    if !model[src.index_usize()] {
                        continue;
                    }
                    for dst in h.references_of(src) {
                        if h.is_live(dst) && !model[dst.index_usize()] {
                            model[dst.index_usize()] = true;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }

            let marked = trace_live(&root_set, &h);
            assert_eq!(marked, model, "seed {seed}");

            // A collection keeps exactly the marked set.
            let mut msa = MarkSweep::default();
            let reachable_count = model.iter().filter(|&&m| m).count();
            msa.collect(&root_set, &mut h);
            assert_eq!(h.live_count(), reachable_count, "seed {seed}");
            for (i, &keep) in model.iter().enumerate() {
                assert_eq!(
                    h.is_live(Handle::from_index(i as u32)),
                    keep,
                    "seed {seed}, handle {i}"
                );
            }
        }
    }

    /// End-to-end: a VM under memory pressure survives because mark-sweep
    /// reclaims unreachable objects at allocation failure.
    #[test]
    fn vm_survives_memory_pressure_with_marksweep() {
        use cg_vm::{ClassDef, Cond, Insn, MethodDef, Operand, Program, Vm, VmConfig};

        let mut p = Program::new();
        let c = p.add_class(ClassDef::new("Temp", 1));
        // Allocate 2000 short-lived objects in a loop; the heap holds ~64.
        let code = vec![
            Insn::Const { dst: 1, value: 0 },
            Insn::Branch {
                cond: Cond::Ge,
                a: Operand::Local(1),
                b: Operand::Imm(2000),
                target: 6,
            },
            Insn::New { class: c, dst: 0 },
            Insn::PutField {
                object: 0,
                field: 0,
                value: 0,
            },
            Insn::Arith {
                op: cg_vm::ArithOp::Add,
                dst: 1,
                a: Operand::Local(1),
                b: Operand::Imm(1),
            },
            Insn::Jump { target: 1 },
            Insn::Return { value: None },
        ];
        let m = p.add_method(MethodDef::new("main", 0, 2, code));
        p.set_entry(m);

        let mut config = VmConfig::small();
        config.heap = cg_heap::HeapConfig::tight(1024);
        config.heap.handle_space_bytes = 1 << 20;
        let mut vm = Vm::new(p, config, MarkSweep::new());
        let outcome = vm.run().expect("mark-sweep keeps the program alive");
        assert_eq!(outcome.stats.objects_allocated, 2000);
        assert!(vm.collector().stats().cycles > 0);
        assert!(vm.collector().stats().objects_swept > 1000);
    }
}
