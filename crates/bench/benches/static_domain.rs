//! Contention benchmarks for the shared static domain.
//!
//! The §3.3 static set is the only state the collector shards share, so its
//! concurrency behaviour decides whether shard scaling is real on real
//! cores.  This bench pits the two [`DomainImpl`]s against each other:
//!
//! * a **microbench family**: N producer threads hammer one domain with a
//!   seeded mix of `insert`/`union`/`node_of`/`reason` calls plus a
//!   configurable escalation rate (`note_thread_shared`/`absorb_nonstatic`),
//!   under a union-heavy and a read-heavy profile, at 1, 2 and 4 threads —
//!   labels `static_domain/<profile>/<impl>/threads_<n>`;
//! * an **end-to-end leg**: the mtrt-style trace from `shard_scaling`,
//!   evaluated with 4 shards on OS threads under each implementation —
//!   labels `static_domain/e2e_mtrt/<impl>/shards_4`.
//!
//! On a runner with ≥ 4 cores the bench *asserts* that the lock-free domain
//! beats the mutex domain by ≥ 2x on the 4-thread union-heavy profile; with
//! 2-3 cores the ratio is printed (with a warning below 2x) but not
//! asserted, since 4 producer threads oversubscribe a small shared runner
//! and scheduler noise would make a hard gate flaky; on a single core the
//! threads serialise and the comparison is skipped entirely (the numbers
//! then measure per-op overhead, not contention).  The committed
//! baseline (`baselines/static_domain.json`) carries only the labels that
//! are stable across core counts: the calibration loop, the single-threaded
//! microbenches and the end-to-end legs.  `BENCH_static_domain.json`
//! records the runner's core count so the other numbers can be read in
//! context.

use std::hint::black_box;

use cg_bench::{parallel_eval, BenchHarness};
use cg_core::{CgConfig, DomainImpl, StaticDomain, StaticNodeId, StaticReason};
use cg_stats::Json;
use cg_testutil::TestRng;
use cg_trace::{partition, record};
use cg_vm::{Handle, NoopCollector, VmConfig};
use cg_workloads::Profile;

const CALIBRATION_LABEL: &str = "calibration/spin_1k";
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const IMPLS: [DomainImpl; 2] = [DomainImpl::Mutex, DomainImpl::Atomic];
/// Domain ops per producer thread per iteration.
const OPS_PER_THREAD: usize = 4_000;
/// Pre-seeded nodes every thread contends on.
const SHARED_NODES: usize = 64;

fn impl_name(which: DomainImpl) -> &'static str {
    match which {
        DomainImpl::Atomic => "atomic",
        DomainImpl::Mutex => "mutex",
    }
}

/// Per-mille op mix for one producer thread; the remainder up to 1000 is
/// `same_block` probes.
#[derive(Clone, Copy)]
struct OpMix {
    name: &'static str,
    insert: u32,
    union: u32,
    /// Escalation rate: half `note_thread_shared`, half `absorb_nonstatic`.
    escalate: u32,
    reason: u32,
    node_of: u32,
}

/// The profile the tentpole is about: mostly unions (the shard escalation
/// path), a trickle of inserts and escalations, some reads.
const UNION_HEAVY: OpMix = OpMix {
    name: "union_heavy",
    insert: 150,
    union: 550,
    escalate: 60,
    reason: 80,
    node_of: 80,
};

/// The steady-state profile: shards mostly *ask* about the static set
/// (`same_block` on every store, `node_of` on every scan) and rarely grow it.
const READ_HEAVY: OpMix = OpMix {
    name: "read_heavy",
    insert: 40,
    union: 80,
    escalate: 20,
    reason: 300,
    node_of: 260,
};

/// One producer thread's run: local inserts plus contended ops against the
/// shared node set.  Returns a checksum so the optimizer keeps the reads.
fn producer(domain: &StaticDomain, shared: &[StaticNodeId], thread: usize, mix: OpMix) -> u64 {
    let mut rng = TestRng::new(0x5D0 + thread as u64);
    let mut local: Vec<StaticNodeId> = Vec::with_capacity(OPS_PER_THREAD / 4);
    let mut sum = 0u64;
    let pick = |rng: &mut TestRng, local: &[StaticNodeId]| {
        // Half the operands come from the shared set: that is where the
        // cross-thread contention lives.
        if local.is_empty() || rng.gen_bool(0.5) {
            shared[rng.gen_range(0, shared.len())]
        } else {
            local[rng.gen_range(0, local.len())]
        }
    };
    for i in 0..OPS_PER_THREAD {
        let r = rng.gen_range(0, 1000) as u32;
        if r < mix.insert {
            let node = domain.insert(StaticReason::StaticReference);
            let handle = Handle::from_index((SHARED_NODES + thread * OPS_PER_THREAD + i) as u32);
            domain.register_members(&[handle], node);
            local.push(node);
        } else if r < mix.insert + mix.union {
            let a = pick(&mut rng, &local);
            let b = pick(&mut rng, &local);
            sum += u64::from(domain.union(a, b));
        } else if r < mix.insert + mix.union + mix.escalate {
            let a = pick(&mut rng, &local);
            if rng.gen_bool(0.5) {
                domain.note_thread_shared(a);
            } else {
                domain.absorb_nonstatic(a);
            }
        } else if r < mix.insert + mix.union + mix.escalate + mix.reason {
            sum += domain.reason(pick(&mut rng, &local)) as u64;
        } else if r < mix.insert + mix.union + mix.escalate + mix.reason + mix.node_of {
            let h = Handle::from_index(rng.gen_range(0, SHARED_NODES) as u32);
            sum += domain.node_of(h).map_or(0, u64::from);
        } else {
            let a = pick(&mut rng, &local);
            let b = pick(&mut rng, &local);
            sum += u64::from(domain.same_block(a, b));
        }
    }
    sum
}

/// One timed iteration: fresh domain, `threads` producers over the shared
/// node set.  A fresh domain per iteration keeps the workload honest —
/// unions are irreversible, so a reused domain would degenerate into
/// all-singletons-already-merged.
fn contention_iteration(which: DomainImpl, threads: usize, mix: OpMix) -> u64 {
    let domain = StaticDomain::with_impl(which);
    let shared: Vec<StaticNodeId> = (0..SHARED_NODES)
        .map(|i| {
            let node = domain.insert(StaticReason::StaticReference);
            domain.register_members(&[Handle::from_index(i as u32)], node);
            node
        })
        .collect();
    if threads == 1 {
        return producer(&domain, &shared, 0, mix);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (domain, shared) = (&domain, &shared);
                scope.spawn(move || producer(domain, shared, t, mix))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_contention(h: &mut BenchHarness, cores: usize) {
    for mix in [UNION_HEAVY, READ_HEAVY] {
        for which in IMPLS {
            for threads in THREAD_COUNTS {
                let label = format!(
                    "static_domain/{}/{}/threads_{threads}",
                    mix.name,
                    impl_name(which)
                );
                h.bench(&label, 8, || {
                    black_box(contention_iteration(which, threads, mix))
                });
            }
        }
        for threads in THREAD_COUNTS {
            let mutex = h
                .ns_of(&format!(
                    "static_domain/{}/mutex/threads_{threads}",
                    mix.name
                ))
                .unwrap();
            let atomic = h
                .ns_of(&format!(
                    "static_domain/{}/atomic/threads_{threads}",
                    mix.name
                ))
                .unwrap();
            println!(
                "  {}: atomic is {:.2}x the mutex throughput at {threads} thread(s)",
                mix.name,
                mutex / atomic
            );
        }
    }

    // The acceptance gate: contended unions must actually scale.  The hard
    // assertion arms only with >= 4 cores — on 2-3 core shared runners the
    // 4 producer threads oversubscribe and scheduler noise can push the
    // ratio below 2x for reasons unrelated to the change under test, which
    // would make the CI gate flaky.  Those runners still print the ratio
    // (and a loud warning when it is below 2x) so a real regression is
    // visible in the log.
    let mutex4 = h
        .ns_of("static_domain/union_heavy/mutex/threads_4")
        .unwrap();
    let atomic4 = h
        .ns_of("static_domain/union_heavy/atomic/threads_4")
        .unwrap();
    let ratio = mutex4 / atomic4;
    if cores >= 4 {
        assert!(
            ratio >= 2.0,
            "lock-free domain should be >= 2x the mutex domain on the 4-thread \
             union-heavy profile with {cores} cores (got {ratio:.2}x)"
        );
        println!(
            "union_heavy/threads_4: atomic beats mutex {ratio:.2}x (gate: >= 2x on {cores} cores)"
        );
    } else if cores >= 2 {
        if ratio >= 2.0 {
            println!(
                "union_heavy/threads_4: atomic beats mutex {ratio:.2}x on {cores} cores \
                 (hard >= 2x gate arms at 4 cores)"
            );
        } else {
            println!(
                "WARNING union_heavy/threads_4: only {ratio:.2}x on {cores} cores — below the \
                 2x target, but the hard gate arms at 4 cores (oversubscribed runners are noisy)"
            );
        }
    } else {
        println!(
            "union_heavy/threads_4: {ratio:.2}x on a single core — >= 2x contention gate skipped \
             (threads serialise, nothing contends)"
        );
    }
}

/// The mtrt-style profile from `shard_scaling`, shrunk so the end-to-end leg
/// stays a small share of the bench's runtime.
fn mtrt_style() -> Profile {
    Profile {
        name: "mtrt_style".to_string(),
        description: "mtrt-style: private ray temporaries over a shared scene, 8 threads"
            .to_string(),
        static_setup: 600,
        interned: 8,
        iterations: 8_000,
        leaf_temps: 5,
        chained_temps: 3,
        static_touching_temps: 1,
        returned_temps: 2,
        escape_depth: 2,
        leaked_per_iteration: 0,
        compute_per_iteration: 6,
        shared_objects: 200,
        worker_threads: 7,
    }
}

fn cg_config(which: DomainImpl) -> CgConfig {
    CgConfig {
        verify_tainted: false,
        ..CgConfig::preferred()
    }
    .with_domain_impl(which)
}

/// End-to-end: the same 4-shard parallel evaluation `shard_scaling` times,
/// once per domain implementation, after proving both produce identical
/// statistics.
fn bench_e2e(h: &mut BenchHarness, vm_config: VmConfig) {
    let (trace, _, _) = record(
        "mtrt_style".to_string(),
        cg_workloads::synthesize(&mtrt_style()),
        vm_config,
        NoopCollector::new(),
    )
    .expect("recording succeeds");
    let pt = partition(&trace, 4);

    let eval = |which: DomainImpl| {
        parallel_eval(&pt, vm_config.heap, cg_config(which)).expect("parallel eval succeeds")
    };
    let mutex_outcome = eval(DomainImpl::Mutex);
    let atomic_outcome = eval(DomainImpl::Atomic);
    assert_eq!(
        mutex_outcome.stats, atomic_outcome.stats,
        "domain implementations must agree end-to-end"
    );
    println!("e2e_mtrt: both domain implementations produce identical CgStats");

    for which in IMPLS {
        let label = format!("static_domain/e2e_mtrt/{}/shards_4", impl_name(which));
        h.bench(&label, 3, || black_box(eval(which)).events_replayed);
    }
}

fn main() {
    let check = cg_bench::parse_check_arg();
    let vm_config = VmConfig::default().with_heap(cg_bench::runner::experiment_heap());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("static_domain: {cores} hardware thread(s) available");

    let mut harness = BenchHarness::new("static_domain");
    harness.bench(CALIBRATION_LABEL, 200_000, || {
        (0..1000u64).fold(0u64, |acc, i| {
            acc.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(black_box(i))
        })
    });

    bench_contention(&mut harness, cores);
    bench_e2e(&mut harness, vm_config);

    harness.write_json_with([("cores", Json::Num(cores as f64))]);

    if let Some(path) = check {
        cg_bench::check_against_baseline(&harness, &path, CALIBRATION_LABEL);
    }
}
