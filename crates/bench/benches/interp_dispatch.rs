//! Dispatch-loop benchmarks: superinstructions, inline caches and the
//! live-vs-replay interpretation gap (`BENCH_interp_dispatch.json`).
//!
//! Three synthetic kernels isolate what the fusion pass rewrites, each
//! interpreted live with the pass on and off:
//!
//! * `call_heavy` — a tight loop calling a tiny leaf method: const+call
//!   fusion, the per-site inline cache and the pooled-locals frame push;
//! * `field_heavy` — paired `getfield`/`putfield` traffic: the
//!   `f.getget`/`f.getput` superinstructions;
//! * `arith_branch` — a pure counted loop: the `f.arithbr`
//!   compare-and-branch superinstruction and the fast dispatch loop.
//!
//! An end-to-end leg records `javac/1` and times live interpretation
//! (fused and unfused, under the canonical contaminated collector)
//! against replaying the recorded stream — the "live interpretation gap"
//! this PR closes.  The gap and the call-heavy speedup are embedded in the
//! JSON alongside a `dispatch_profile` section (per-opcode counts are
//! populated when the `profile` cargo feature is on; inline-cache hit and
//! miss totals are always live).
//!
//! Before timing anything the suite asserts the tentpole invariant: every
//! kernel and the javac workload record **byte-identical** event streams
//! and statistics with fusion on and off.
//!
//! CI re-runs the suite with `--check baselines/interp_dispatch.json` and
//! fails if any shared label regressed more than 2x (speed-normalised).

use std::hint::black_box;

use cg_bench::BenchHarness;
use cg_core::{CgConfig, ContaminatedGc};
use cg_stats::Json;
use cg_trace::{record, replay};
use cg_vm::{
    ArithOp, ClassDef, Cond, Insn, MethodDef, NoopCollector, Operand, Program, Vm, VmConfig,
};
use cg_workloads::{Size, Workload};

const CALIBRATION_LABEL: &str = "calibration/spin_1k";

/// A tight loop of `iters` calls to a two-instruction leaf method.  The
/// `const` feeding the argument fuses with the call; the call itself gets
/// an inline-cached, pooled-locals frame push.  The leaf declares a
/// javac-sized frame (32 locals): the unfused push pays a fresh
/// `vec![NULL; 32]` per call, the cached push recycles one from the pool —
/// the cost this kernel isolates.
fn call_heavy(iters: i64) -> Program {
    let mut p = Program::named("call_heavy");
    let leaf = p.add_method(MethodDef::new(
        "leaf",
        1,
        32,
        vec![
            Insn::Arith {
                op: ArithOp::Add,
                dst: 1,
                a: Operand::Local(0),
                b: Operand::Imm(1),
            },
            Insn::Return { value: Some(1) },
        ],
    ));
    let main = p.add_method(MethodDef::new(
        "main",
        0,
        6,
        vec![
            Insn::Const { dst: 0, value: 0 },
            // Loop head: const+call fuse into one superinstruction.
            Insn::Const { dst: 1, value: 41 },
            Insn::Call {
                method: leaf,
                args: vec![1],
                dst: Some(2),
            },
            Insn::Arith {
                op: ArithOp::Add,
                dst: 0,
                a: Operand::Local(0),
                b: Operand::Imm(1),
            },
            Insn::Branch {
                cond: Cond::Lt,
                a: Operand::Local(0),
                b: Operand::Imm(iters),
                target: 1,
            },
            Insn::Return { value: None },
        ],
    ));
    p.set_entry(main);
    p
}

/// A loop of paired field reads and writes over one two-field object:
/// `getfield`+`getfield` and `getfield`+`putfield` both fuse.
fn field_heavy(iters: i64) -> Program {
    let mut p = Program::named("field_heavy");
    let c = p.add_class(ClassDef::new("Obj", 2));
    let main = p.add_method(MethodDef::new(
        "main",
        0,
        8,
        vec![
            Insn::New { class: c, dst: 0 },
            Insn::Const { dst: 1, value: 0 },
            // Loop head.
            Insn::GetField {
                object: 0,
                field: 0,
                dst: 2,
            },
            Insn::GetField {
                object: 0,
                field: 1,
                dst: 3,
            },
            Insn::GetField {
                object: 0,
                field: 1,
                dst: 4,
            },
            Insn::PutField {
                object: 0,
                field: 0,
                value: 4,
            },
            Insn::Arith {
                op: ArithOp::Add,
                dst: 1,
                a: Operand::Local(1),
                b: Operand::Imm(1),
            },
            Insn::Branch {
                cond: Cond::Lt,
                a: Operand::Local(1),
                b: Operand::Imm(iters),
                target: 2,
            },
            Insn::Return { value: None },
        ],
    ));
    p.set_entry(main);
    p
}

/// A pure counted loop: the arith+branch pair fuses into `f.arithbr`, the
/// rest stays in the fast dispatch loop end to end.
fn arith_branch(iters: i64) -> Program {
    let mut p = Program::named("arith_branch");
    let main = p.add_method(MethodDef::new(
        "main",
        0,
        4,
        vec![
            Insn::Const { dst: 0, value: 0 },
            Insn::Const { dst: 1, value: 0 },
            // Loop head: xor into the accumulator, then count+test.
            Insn::Arith {
                op: ArithOp::Xor,
                dst: 1,
                a: Operand::Local(1),
                b: Operand::Local(0),
            },
            Insn::Arith {
                op: ArithOp::Add,
                dst: 0,
                a: Operand::Local(0),
                b: Operand::Imm(1),
            },
            Insn::Branch {
                cond: Cond::Lt,
                a: Operand::Local(0),
                b: Operand::Imm(iters),
                target: 2,
            },
            Insn::Return { value: None },
        ],
    ));
    p.set_entry(main);
    p
}

/// Records `program` under a passive collector with fusion set as given.
fn record_with(program: &Program, config: VmConfig, fusion: bool) -> cg_trace::Trace {
    let (trace, _, _) = record(
        program.name().to_string(),
        program.clone(),
        config.with_fusion(fusion),
        NoopCollector::new(),
    )
    .expect("program records");
    trace
}

/// The tentpole invariant, asserted before anything is timed: fusion on
/// and off record the same bytes.
fn assert_byte_identical(program: &Program, config: VmConfig) {
    let fused = record_with(program, config, true);
    let unfused = record_with(program, config, false);
    assert_eq!(
        fused,
        unfused,
        "{}: fused and unfused event streams must be byte-identical",
        program.name()
    );
}

/// Runs `program` live to completion, returning executed instructions.
fn run_live(program: &Program, config: VmConfig) -> u64 {
    let mut vm = Vm::new(program.clone(), config, NoopCollector::new());
    let outcome = vm.run().expect("program runs");
    outcome.stats.instructions
}

/// The fused-over-unfused speedup, measured as the median of per-round
/// ratios with the two configurations interleaved back-to-back.  The
/// sequential harness labels are seconds apart, so a load spike on a
/// shared runner lands on one side only and skews the ratio; a paired
/// round sees the same machine state on both sides.
fn paired_speedup(program: &Program, config: VmConfig, rounds: usize) -> f64 {
    let time = |fusion: bool| {
        let start = std::time::Instant::now();
        black_box(run_live(program, config.with_fusion(fusion)));
        start.elapsed().as_secs_f64()
    };
    time(true);
    time(false);
    let mut ratios: Vec<f64> = (0..rounds)
        .map(|_| {
            let fused = time(true);
            let unfused = time(false);
            unfused / fused
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

fn bench_kernels(h: &mut BenchHarness) -> f64 {
    let config = VmConfig::default();
    let kernels = [
        ("call_heavy", call_heavy(60_000)),
        ("field_heavy", field_heavy(60_000)),
        ("arith_branch", arith_branch(120_000)),
    ];
    for (name, program) in &kernels {
        assert_byte_identical(program, config);
        let fused = Vm::new(
            program.clone(),
            config.with_fusion(true),
            NoopCollector::new(),
        );
        assert!(
            fused.fuse_report().fused_pairs() > 0,
            "{name}: the kernel must actually fuse"
        );
        for fusion in [true, false] {
            let label = format!(
                "interp_dispatch/{name}/{}",
                if fusion { "fused" } else { "unfused" }
            );
            h.bench(&label, 5, || {
                black_box(run_live(program, config.with_fusion(fusion)))
            });
        }
        let fused_ns = h.ns_of(&format!("interp_dispatch/{name}/fused")).unwrap();
        let unfused_ns = h.ns_of(&format!("interp_dispatch/{name}/unfused")).unwrap();
        println!(
            "  {name}: fused is {:.2}x the unfused dispatch speed",
            unfused_ns / fused_ns
        );
    }

    // The acceptance gate: call-heavy dispatch — the pattern the inline
    // caches and pooled frame pushes exist for — must be at least 1.5x.
    // Measured paired (fused/unfused back-to-back per round) so load drift
    // on a shared runner cannot fake a regression.
    let speedup = paired_speedup(&kernels[0].1, config, 9);
    assert!(
        speedup >= 1.5,
        "call-heavy fused dispatch must be >= 1.5x the unfused loop (got {speedup:.2}x paired)"
    );
    println!("call_heavy: {speedup:.2}x fused over unfused, paired (gate: >= 1.5x)");
    speedup
}

/// The end-to-end leg: live interpretation of javac/1 under the canonical
/// contaminated collector, fused and unfused, against replaying the
/// recorded stream.  Returns the fused live-vs-replay gap.
fn bench_javac_gap(h: &mut BenchHarness) -> f64 {
    let workload = Workload::by_name("javac").expect("javac exists");
    let program = workload.program(Size::S1);
    let vm_config = VmConfig::default().with_heap(cg_bench::runner::experiment_heap());
    assert_byte_identical(&program, vm_config);

    let cg = CgConfig {
        verify_tainted: false,
        ..CgConfig::preferred()
    };
    let (trace, _, _) = record(
        "javac/1".to_string(),
        program.clone(),
        vm_config,
        NoopCollector::new(),
    )
    .expect("javac records");

    for fusion in [true, false] {
        let label = format!(
            "interp_dispatch/javac1/live_{}",
            if fusion { "fused" } else { "unfused" }
        );
        h.bench(&label, 3, || {
            let mut vm = Vm::new(
                program.clone(),
                vm_config.with_fusion(fusion),
                ContaminatedGc::with_config(cg),
            );
            vm.run().expect("javac runs");
            black_box(vm.collector().stats().objects_created)
        });
    }
    h.bench("interp_dispatch/javac1/replay_cg", 3, || {
        let outcome =
            replay(&trace, vm_config.heap, ContaminatedGc::with_config(cg)).expect("javac replays");
        black_box(outcome.collector.stats().objects_created)
    });

    let live_fused = h.ns_of("interp_dispatch/javac1/live_fused").unwrap();
    let live_unfused = h.ns_of("interp_dispatch/javac1/live_unfused").unwrap();
    let replay_ns = h.ns_of("interp_dispatch/javac1/replay_cg").unwrap();
    let gap_fused = live_fused / replay_ns;
    let gap_unfused = live_unfused / replay_ns;
    println!(
        "javac/1: live-vs-replay gap {gap_fused:.2}x fused, {gap_unfused:.2}x unfused \
         (the PR target is ~1.1x fused)"
    );
    if gap_fused > 1.2 {
        println!(
            "WARNING javac/1: fused live interpretation is {gap_fused:.2}x replay on this \
             machine (target ~1.1x)"
        );
    }
    gap_fused
}

/// One profiled fused run of the call-heavy kernel for the JSON section.
/// Opcode counts need the `profile` cargo feature; the inline-cache
/// counters are always maintained.
fn dispatch_profile_section() -> Json {
    let program = call_heavy(60_000);
    let mut vm = Vm::new(program, VmConfig::default(), NoopCollector::new());
    vm.run().expect("profiled run completes");
    let profile = vm.dispatch_profile();
    let opcodes: Vec<Json> = profile
        .hot_opcodes()
        .into_iter()
        .map(|(name, count)| {
            Json::Obj(vec![
                ("opcode".to_string(), Json::Str(name.to_string())),
                ("count".to_string(), Json::Num(count as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("kernel".to_string(), Json::Str("call_heavy".to_string())),
        (
            "opcode_counts_enabled".to_string(),
            Json::Bool(cfg!(feature = "profile")),
        ),
        ("hot_opcodes".to_string(), Json::Arr(opcodes)),
        (
            "call_site_hits".to_string(),
            Json::Num(profile.call_site_hits as f64),
        ),
        (
            "call_site_misses".to_string(),
            Json::Num(profile.call_site_misses as f64),
        ),
    ])
}

fn main() {
    let check = cg_bench::parse_check_arg();
    let mut harness = BenchHarness::new("interp_dispatch");
    harness.bench(CALIBRATION_LABEL, 200_000, || {
        (0..1000u64).fold(0u64, |acc, i| {
            acc.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(black_box(i))
        })
    });

    let call_heavy_speedup = bench_kernels(&mut harness);
    let live_replay_gap = bench_javac_gap(&mut harness);

    harness.write_json_with([
        ("call_heavy_speedup", Json::Num(call_heavy_speedup)),
        ("javac1_live_replay_gap", Json::Num(live_replay_gap)),
        ("dispatch_profile", dispatch_profile_section()),
    ]);

    if let Some(path) = check {
        cg_bench::check_against_baseline(&harness, &path, CALIBRATION_LABEL);
    }
}
