//! The collector's per-event hot path, measured in isolation.
//!
//! Every benchmark here drives the collector hooks directly — no interpreter
//! in the loop — so the numbers are the per-event costs the paper argues
//! about: the store barrier (§3.1.3), the frame-pop collection (§2.2), the
//! recycle-list search (§3.7) and the allocator's free-block search the
//! recycling argument is measured against (§4.8).
//!
//! Results land in `BENCH_gc_hot_path.json`.  CI replays the suite and
//! compares against the committed baseline
//! (`crates/bench/baselines/gc_hot_path.json`, refreshed whenever the hot
//! path intentionally changes): `--check <baseline>` exits non-zero if any
//! shared label regressed more than 2x.
//!
//! The suite also proves the optimisations are behaviour-preserving: before
//! timing anything it records a workload trace and asserts that replaying it
//! under every collector configuration × allocation policy pair produces
//! byte-identical `CgStats` (see `verify_replay_equivalence`).

use std::hint::black_box;

use cg_bench::BenchHarness;
use cg_core::{CgConfig, ContaminatedGc};
use cg_heap::{AllocPolicy, ClassId, Heap, HeapConfig, Value};
use cg_trace::{record, replay};
use cg_vm::{Collector, FrameId, FrameInfo, MethodId, NoopCollector, ThreadId, Vm, VmConfig};
use cg_workloads::{Size, Workload};

fn frame(id: u64, depth: usize) -> FrameInfo {
    FrameInfo {
        id: FrameId::new(id),
        depth,
        thread: ThreadId::MAIN,
        method: MethodId::new(0),
    }
}

fn class() -> ClassId {
    ClassId::new(0)
}

/// A heap plus collector with `count` registered singleton objects in
/// `frame`.
fn populated(
    config: CgConfig,
    heap_config: HeapConfig,
    count: usize,
    f: &FrameInfo,
) -> (Heap, ContaminatedGc, Vec<cg_heap::Handle>) {
    let mut heap = Heap::new(heap_config);
    let mut cg = ContaminatedGc::with_config(config);
    let handles: Vec<_> = (0..count)
        .map(|_| {
            let h = heap.allocate(class(), 2).expect("fits");
            cg.on_allocate(h, f, &heap);
            h
        })
        .collect();
    (heap, cg, handles)
}

/// The store barrier on an already-merged block: one `elem` lookup per
/// operand plus the root finds — the paper's "nearly constant work per
/// store".
fn bench_store_same_block(h: &mut BenchHarness, label: &str, config: CgConfig) {
    let f = frame(1, 1);
    let (mut heap, mut cg, handles) = populated(config, HeapConfig::spacious(), 2, &f);
    let (a, b) = (handles[0], handles[1]);
    heap.set_field(a, 0, Value::from(b)).unwrap();
    cg.on_reference_store(a, b, &f, &heap);
    h.bench(format!("stores/{label}/same_block"), 1_000_000, || {
        cg.on_reference_store(black_box(a), black_box(b), &f, &heap);
    });
}

/// A union-heavy store storm: 256 singletons chained into one block.  Every
/// store detaches two blocks from the frame index, unions them and
/// re-attaches the winner — the worst case for the per-frame bookkeeping.
fn bench_store_union_heavy(h: &mut BenchHarness, label: &str, config: CgConfig) {
    let f = frame(1, 1);
    h.bench(format!("stores/{label}/union_chain_256"), 2_000, || {
        let (mut heap, mut cg, handles) = populated(config, HeapConfig::spacious(), 256, &f);
        for pair in handles.windows(2) {
            heap.set_field(pair[0], 0, Value::from(pair[1])).unwrap();
            cg.on_reference_store(pair[0], pair[1], &f, &heap);
        }
        cg.stats().unions
    });
}

/// The collector-only union storm: the heap is populated once outside the
/// timing loop, so each iteration measures exactly the collector's work for
/// a reference-store-heavy event stream — 4096 registrations followed by
/// 4095 contaminating stores (the store barrier never reads the heap).
fn bench_store_storm_collector_only(h: &mut BenchHarness, label: &str, config: CgConfig) {
    let f = frame(1, 1);
    let mut heap = Heap::new(HeapConfig::spacious());
    let handles: Vec<_> = (0..4096)
        .map(|_| heap.allocate(class(), 2).expect("fits"))
        .collect();
    h.bench(format!("stores/{label}/union_storm_4096"), 500, || {
        let mut cg = ContaminatedGc::with_config(config);
        for &handle in &handles {
            cg.on_allocate(handle, &f, &heap);
        }
        for pair in handles.windows(2) {
            cg.on_reference_store(pair[0], pair[1], &f, &heap);
        }
        cg.stats().unions
    });
}

/// The §3.4 static-optimisation skip: storing a static object into a local
/// one costs two root probes and no union.
fn bench_store_static_skip(h: &mut BenchHarness, label: &str, config: CgConfig) {
    let f = frame(1, 1);
    let (mut heap, mut cg, handles) = populated(config, HeapConfig::spacious(), 2, &f);
    let (local, global) = (handles[0], handles[1]);
    cg.on_static_store(global, &heap);
    heap.set_field(local, 0, Value::from(global)).unwrap();
    h.bench(format!("stores/{label}/static_opt_skip"), 1_000_000, || {
        cg.on_reference_store(black_box(local), black_box(global), &f, &heap);
    });
}

/// Frame pop with many singleton blocks: the cost of draining the per-frame
/// block list and freeing every member.
fn bench_frame_pop(h: &mut BenchHarness, label: &str, config: CgConfig, count: usize) {
    let f = frame(2, 2);
    h.bench(
        format!("pops/{label}/pop_{count}_singletons"),
        200_000 / count as u64,
        || {
            let (mut heap, mut cg, _) = populated(config, HeapConfig::spacious(), count, &f);
            cg.on_frame_pop(&f, &mut heap).freed_objects
        },
    );
}

/// Allocator throughput: allocate-then-free churn straight against the
/// heap's object space (no collector), per allocation policy.
fn bench_alloc_churn(h: &mut BenchHarness, label: &str, heap_config: HeapConfig) {
    h.bench(
        format!("allocs/{label}/alloc_free_churn_256"),
        2_000,
        || {
            let mut heap = Heap::new(heap_config);
            let mut handles = Vec::with_capacity(256);
            for i in 0..256 {
                // Mixed sizes so a segregated policy has classes to separate.
                handles.push(heap.allocate(class(), 1 + (i % 8)).expect("fits"));
            }
            for handle in handles {
                heap.free(handle).expect("live");
            }
            heap.live_count()
        },
    );
}

/// Recycle-list miss: every probe scans the whole list and finds nothing
/// that fits (1024 one-field corpses, four-field requests).
fn bench_recycle_miss(h: &mut BenchHarness, label: &str, config: CgConfig) {
    let f = frame(2, 2);
    let mut heap = Heap::new(HeapConfig::spacious());
    let mut cg = ContaminatedGc::with_config(config);
    for _ in 0..1024 {
        let handle = heap.allocate(class(), 1).expect("fits");
        cg.on_allocate(handle, &f, &heap);
    }
    cg.on_frame_pop(&f, &mut heap);
    assert_eq!(cg.recycle_list_len(), 1024);
    h.bench(format!("recycle/{label}/miss_scan_1024"), 10_000, || {
        cg.try_recycled_alloc(class(), 4, &f, &mut heap)
    });
}

/// Recycle churn: a frame's worth of corpses is reused by the next frame,
/// over and over (the §3.7 steady state).
fn bench_recycle_churn(h: &mut BenchHarness, label: &str, config: CgConfig) {
    h.bench(format!("recycle/{label}/churn_hit_64"), 2_000, || {
        let mut heap = Heap::new(HeapConfig::spacious());
        let mut cg = ContaminatedGc::with_config(config);
        for round in 0..4u64 {
            let f = frame(10 + round, 2);
            for i in 0..64 {
                let handle = cg
                    .try_recycled_alloc(class(), 1 + (i % 4), &f, &mut heap)
                    .unwrap_or_else(|| heap.allocate(class(), 1 + (i % 4)).expect("fits"));
                cg.on_allocate(handle, &f, &heap);
            }
            cg.on_frame_pop(&f, &mut heap);
        }
        cg.stats().objects_recycled
    });
}

/// End-to-end replay throughput: events/sec driving the collector from a
/// recorded workload stream (the trace-driven evaluation mode of PR 1).
fn bench_trace_replay(h: &mut BenchHarness, trace: &cg_trace::Trace, policy: AllocPolicy) {
    let heap_config = VmConfig::default().heap.with_alloc_policy(policy);
    let events = trace.len() as f64;
    let label = format!("replay/cg/{}/db_s1", policy.label());
    let ns = h.bench(&label, 3, || {
        replay(trace, heap_config, ContaminatedGc::new())
            .expect("replay succeeds")
            .outcome
            .events_replayed
    });
    println!(
        "{label}: {:.1} ns per replayed event ({events} events)",
        ns / events
    );
}

/// Before timing anything: replaying the recorded stream must produce
/// byte-identical `CgStats` to a live interpreted run, for every collector
/// configuration × allocation policy pair.  This is the proof that the
/// hot-path rebuild changed costs, not behaviour.
fn verify_replay_equivalence(trace: &cg_trace::Trace, program: &cg_vm::Program) {
    for policy in [AllocPolicy::FirstFitRover, AllocPolicy::SegregatedFit] {
        for cg_config in [CgConfig::preferred(), CgConfig::without_static_opt()] {
            let vm_config =
                VmConfig::default().with_heap(VmConfig::default().heap.with_alloc_policy(policy));
            let mut live = Vm::new(
                program.clone(),
                vm_config,
                ContaminatedGc::with_config(cg_config),
            );
            live.run().expect("live run succeeds");
            let replayed = replay(
                trace,
                vm_config.heap,
                ContaminatedGc::with_config(cg_config),
            )
            .expect("replay succeeds");
            assert_eq!(
                live.collector().stats(),
                replayed.collector.stats(),
                "CgStats diverged for {policy:?} / {cg_config:?}"
            );
        }
    }
    println!("replay equivalence: CgStats byte-identical across 2 configs x 2 policies");
}

/// Label of the machine-speed calibration loop: a fixed integer workload
/// whose timing tracks the host's single-core speed.  The regression gate
/// compares each label's ratio to this loop rather than absolute
/// nanoseconds, so a committed baseline from one machine remains meaningful
/// on a slower or faster CI runner.
const CALIBRATION_LABEL: &str = "calibration/spin_1k";

fn bench_calibration(h: &mut BenchHarness) {
    h.bench(CALIBRATION_LABEL, 200_000, || {
        (0..1000u64).fold(0u64, |acc, i| {
            acc.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(black_box(i))
        })
    });
}

fn main() {
    let check = cg_bench::parse_check_arg();

    let workload = Workload::by_name("db").expect("known workload");
    let program = workload.program(Size::S1);
    let (trace, ..) = record(
        "db/1",
        program.clone(),
        VmConfig::default(),
        NoopCollector::new(),
    )
    .expect("recording succeeds");
    verify_replay_equivalence(&trace, &program);

    let mut harness = BenchHarness::new("gc_hot_path");
    let cg = CgConfig {
        verify_tainted: false,
        ..CgConfig::preferred()
    };
    let recycle = CgConfig {
        verify_tainted: false,
        ..CgConfig::with_recycling()
    };
    let recycle_seg = CgConfig {
        verify_tainted: false,
        ..CgConfig::with_segregated_recycling()
    };

    bench_calibration(&mut harness);
    bench_store_same_block(&mut harness, "cg", cg);
    bench_store_union_heavy(&mut harness, "cg", cg);
    bench_store_storm_collector_only(&mut harness, "cg", cg);
    bench_store_static_skip(&mut harness, "cg", cg);
    bench_frame_pop(&mut harness, "cg", cg, 64);
    bench_frame_pop(&mut harness, "cg", cg, 1024);
    for policy in [AllocPolicy::FirstFitRover, AllocPolicy::SegregatedFit] {
        bench_alloc_churn(
            &mut harness,
            policy.label(),
            HeapConfig::spacious().with_alloc_policy(policy),
        );
    }
    bench_recycle_miss(&mut harness, "first_fit", recycle);
    bench_recycle_miss(&mut harness, "segregated", recycle_seg);
    bench_recycle_churn(&mut harness, "first_fit", recycle);
    bench_recycle_churn(&mut harness, "segregated", recycle_seg);
    for policy in [AllocPolicy::FirstFitRover, AllocPolicy::SegregatedFit] {
        bench_trace_replay(&mut harness, &trace, policy);
    }

    harness.write_json();

    if let Some(path) = check {
        // Fails (exit 1) if any shared label regressed more than 2x against
        // the committed baseline, speed-normalised through the calibration
        // loop (see `cg_bench::gate`).
        cg_bench::check_against_baseline(&harness, &path, CALIBRATION_LABEL);
    }
}
