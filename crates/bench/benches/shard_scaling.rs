//! Shard-count scaling of the parallel trace evaluation.
//!
//! Two thread-heavy workload profiles — a `javac`-style one (shared AST
//! batch + per-method compile temporaries) and an `mtrt`-style one (private
//! rendering temporaries over a shared scene) — are recorded once, spread
//! over 8 VM threads, and then evaluated with 1, 2, 4 and 8 collector
//! shards on real OS threads (`cg_bench::parallel_eval`).
//!
//! Before timing anything the suite proves the point of the exercise: for
//! every shard count the aggregated `CgStats`/`ObjectBreakdown` are
//! byte-identical to a single-threaded replay.  The timings then show how
//! the evaluation scales with shards.  **The speedup is hardware-bound**: on
//! a multi-core machine the 4-shard run should approach the per-shard share
//! of the work (≥ 2x over 1 shard); on a single-core container the numbers
//! instead document the coordination overhead (progress counters, wait
//! edges, domain locks), which is the regression this bench's baseline
//! gates in CI.
//!
//! Results land in `BENCH_shard_scaling.json`; CI replays the suite with
//! `--check baselines/shard_scaling.json` (2x speed-normalised gate, same
//! mechanism as `gc_hot_path`).

use std::hint::black_box;

use cg_bench::{parallel_eval, BenchHarness};
use cg_core::{CgConfig, ContaminatedGc};
use cg_trace::{partition, record, replay, Trace};
use cg_vm::{NoopCollector, VmConfig};
use cg_workloads::{synthesize, Profile};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const CALIBRATION_LABEL: &str = "calibration/spin_1k";

/// A `javac`-style profile: a large shared batch handed to a loader thread
/// (over half the small run's objects go thread-shared, Appendix A.2) plus
/// per-method compile temporaries, spread over 7 worker threads.
fn javac_style() -> Profile {
    Profile {
        name: "javac_style".to_string(),
        description: "javac-style: shared AST batch + compile temporaries over 8 threads"
            .to_string(),
        static_setup: 1_000,
        interned: 32,
        iterations: 12_000,
        leaf_temps: 3,
        chained_temps: 4,
        static_touching_temps: 2,
        returned_temps: 1,
        escape_depth: 1,
        leaked_per_iteration: 0,
        compute_per_iteration: 8,
        shared_objects: 2_000,
        worker_threads: 7,
    }
}

/// An `mtrt`-style profile: thread-private rendering temporaries dominated
/// by singleton and small chained blocks, over a shared static scene, with 7
/// rendering threads (the paper's mtrt runs two; we scale the thread count
/// so 8 shards have work).
fn mtrt_style() -> Profile {
    Profile {
        name: "mtrt_style".to_string(),
        description: "mtrt-style: private ray temporaries over a shared scene, 8 threads"
            .to_string(),
        static_setup: 600,
        interned: 8,
        iterations: 16_000,
        leaf_temps: 5,
        chained_temps: 3,
        static_touching_temps: 1,
        returned_temps: 2,
        escape_depth: 2,
        leaked_per_iteration: 0,
        compute_per_iteration: 6,
        shared_objects: 200,
        worker_threads: 7,
    }
}

fn cg_config() -> CgConfig {
    CgConfig {
        verify_tainted: false,
        ..CgConfig::preferred()
    }
}

/// Records the profile's event stream once (passive collector).
fn record_profile(profile: &Profile, vm_config: VmConfig) -> Trace {
    let (trace, outcome, _) = record(
        profile.name.clone(),
        synthesize(profile),
        vm_config,
        NoopCollector::new(),
    )
    .expect("recording succeeds");
    println!(
        "{}: {} events, {} objects, {} threads",
        profile.name,
        trace.len(),
        outcome.stats.objects_allocated + outcome.stats.arrays_allocated,
        1 + outcome.stats.threads_spawned,
    );
    trace
}

/// Proves the invariant before timing it: aggregated sharded statistics are
/// byte-identical to the single-threaded replay for every shard count.
fn verify_equivalence(trace: &Trace, vm_config: VmConfig) {
    let single = replay(
        trace,
        vm_config.heap,
        ContaminatedGc::with_config(cg_config()),
    )
    .expect("single replay succeeds");
    for shards in SHARD_COUNTS {
        let pt = partition(trace, shards);
        let outcome = parallel_eval(&pt, vm_config.heap, cg_config()).expect("parallel succeeds");
        assert_eq!(
            outcome.stats,
            *single.collector.stats(),
            "CgStats diverged at {shards} shards"
        );
        assert_eq!(pt.merge(), *trace, "merge must reproduce the trace");
    }
    println!(
        "{}: sharded CgStats byte-identical across shard counts {SHARD_COUNTS:?}",
        trace.name()
    );
}

fn bench_scaling(h: &mut BenchHarness, name: &str, trace: &Trace, vm_config: VmConfig) {
    let mut one_shard_ns = None;
    for shards in SHARD_COUNTS {
        // Partitioning is a one-time preprocessing cost; the timed region is
        // the parallel evaluation itself.
        let pt = partition(trace, shards);
        let label = format!("shard_scaling/{name}/shards_{shards}");
        let ns = h.bench(&label, 3, || {
            parallel_eval(black_box(&pt), vm_config.heap, cg_config())
                .expect("parallel eval succeeds")
                .events_replayed
        });
        match one_shard_ns {
            None => one_shard_ns = Some(ns),
            Some(base) => println!(
                "  {name}: {shards} shards -> {:.2}x speedup over 1 shard",
                base / ns
            ),
        }
    }
}

fn main() {
    let check = cg_bench::parse_check_arg();
    let vm_config = VmConfig::default().with_heap(cg_bench::runner::experiment_heap());

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("shard_scaling: {cores} hardware thread(s) available");
    if cores < 4 {
        println!(
            "  note: speedup from sharding needs cores; on {cores} core(s) these numbers \
             measure coordination overhead, not parallelism"
        );
    }

    let mut harness = BenchHarness::new("shard_scaling");
    harness.bench(CALIBRATION_LABEL, 200_000, || {
        (0..1000u64).fold(0u64, |acc, i| {
            acc.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(black_box(i))
        })
    });

    for profile in [javac_style(), mtrt_style()] {
        let trace = record_profile(&profile, vm_config);
        verify_equivalence(&trace, vm_config);
        bench_scaling(&mut harness, &profile.name, &trace, vm_config);
    }

    harness.write_json();

    if let Some(path) = check {
        cg_bench::check_against_baseline(&harness, &path, CALIBRATION_LABEL);
    }
}
