//! The `cgtd` serving path, single-shard vs sharded: a recorded `.cgt`
//! spool evaluated whole-file (`replay_path_governed`, exactly what the
//! daemon's single-shard route runs) against the sharded route
//! (`partition_path_streaming` + `parallel_eval_streaming_governed` with
//! 4 shards, exactly what a `shards=4` budget buys).
//!
//! Before timing anything the suite proves the serving invariant: the
//! canonical `cg` footer section aggregated from 4 shards is
//! byte-identical to the whole-file replay — the daemon may answer from
//! either route.  The timings then document what the budget is worth:
//! on a ≥ 4-core runner the sharded evaluation (the timed region; the
//! one-pass partition is reported separately) must be **at least 1.5x**
//! faster than single-shard, and the bench asserts exactly that.  On
//! fewer cores the assertion disarms and the numbers instead track the
//! coordination overhead, which the committed baseline gates in CI.
//!
//! Results land in `BENCH_serving_shards.json`; CI replays the suite via
//! `cg-bench --check-all` against `baselines/serving_shards.json` (2x
//! speed-normalised gate, same mechanism as `gc_hot_path`).

use std::hint::black_box;
use std::path::{Path, PathBuf};

use cg_bench::BenchHarness;
use cg_trace::footer::{canonical_collector, canonical_config, cg_section};
use cg_trace::{
    parallel_eval_streaming_governed, partition_path_streaming, record, replay_path_governed,
    write_trace_to_path, Governor, ResourceLimits, TraceMeta,
};
use cg_vm::{NoopCollector, VmConfig};
use cg_workloads::{synthesize, Profile};

const SERVING_SHARDS: usize = 4;
const CALIBRATION_LABEL: &str = "calibration/spin_1k";

/// The same `javac`-style thread-heavy profile the `shard_scaling` bench
/// uses: a shared AST batch plus per-method compile temporaries over 8 VM
/// threads, so 4 shards all have real work.
fn javac_style() -> Profile {
    Profile {
        name: "javac_style".to_string(),
        description: "javac-style: shared AST batch + compile temporaries over 8 threads"
            .to_string(),
        static_setup: 1_000,
        interned: 32,
        iterations: 12_000,
        leaf_temps: 3,
        chained_temps: 4,
        static_touching_temps: 2,
        returned_temps: 1,
        escape_depth: 1,
        leaked_per_iteration: 0,
        compute_per_iteration: 8,
        shared_objects: 2_000,
        worker_threads: 7,
    }
}

/// Records the profile and spools it to a `.cgt` exactly as `cgtd` would
/// hold an upload on disk.
fn spool_profile(profile: &Profile, vm_config: VmConfig, dir: &Path) -> PathBuf {
    let (trace, outcome, _) = record(
        profile.name.clone(),
        synthesize(profile),
        vm_config,
        NoopCollector::new(),
    )
    .expect("recording succeeds");
    println!(
        "{}: {} events, {} threads",
        profile.name,
        trace.len(),
        1 + outcome.stats.threads_spawned,
    );
    let meta = TraceMeta {
        name: profile.name.clone(),
        heap: Some(vm_config.heap),
        declared_events: Some(trace.len() as u64),
        ..TraceMeta::default()
    };
    let path = dir.join(format!("{}.cgt", profile.name));
    write_trace_to_path(&path, &trace, &meta).expect("spool trace");
    path
}

/// The daemon's single-shard route on the spool.
fn eval_single(spool: &Path, governor: &Governor) -> (u64, cg_trace::FooterSection) {
    let evaluated = replay_path_governed(spool, None, canonical_collector(), governor)
        .expect("single replay succeeds");
    let mut collector = evaluated.replayed.collector;
    let breakdown = collector.breakdown();
    (
        evaluated.replayed.outcome.events_replayed as u64,
        cg_section(collector.stats(), &breakdown),
    )
}

fn main() {
    let check = cg_bench::parse_check_arg();
    let vm_config = VmConfig::default().with_heap(cg_bench::runner::experiment_heap());
    let governor = Governor::new(ResourceLimits::unlimited());

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("serving_shards: {cores} hardware thread(s) available");

    let dir = std::env::temp_dir().join(format!("cg-serving-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench spool dir");

    let profile = javac_style();
    let spool = spool_profile(&profile, vm_config, &dir);

    // The serving invariant first: both routes answer byte-identically.
    let (single_events, single_section) = eval_single(&spool, &governor);
    let shard_dir = dir.join("shards");
    std::fs::create_dir_all(&shard_dir).expect("shard dir");
    let parts =
        partition_path_streaming(&spool, SERVING_SHARDS, &shard_dir).expect("partition succeeds");
    let outcome = parallel_eval_streaming_governed(
        &parts.paths,
        vm_config.heap,
        canonical_config(),
        &governor,
    )
    .expect("sharded eval succeeds");
    assert_eq!(outcome.shard_count, SERVING_SHARDS);
    assert_eq!(outcome.events_replayed as u64, single_events);
    assert_eq!(
        cg_section(&outcome.stats, &outcome.breakdown),
        single_section,
        "sharded cg section diverged from the whole-file replay"
    );
    println!(
        "{}: {SERVING_SHARDS}-shard cg section byte-identical to single-shard",
        profile.name
    );

    let mut harness = BenchHarness::new("serving_shards");
    harness.bench(CALIBRATION_LABEL, 200_000, || {
        (0..1000u64).fold(0u64, |acc, i| {
            acc.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(black_box(i))
        })
    });

    // The one-pass partition is a per-upload preprocessing cost the
    // sharded route pays once; report it on its own label so the gate
    // tracks it without folding sequential I/O into the parallel timing.
    let name = &profile.name;
    harness.bench(format!("serving_shards/{name}/partition_4"), 3, || {
        let dir = shard_dir.join("timed");
        let parts =
            partition_path_streaming(black_box(&spool), SERVING_SHARDS, &dir).expect("partition");
        let _ = std::fs::remove_dir_all(&dir);
        parts.total_events
    });
    let single_ns = harness.bench(format!("serving_shards/{name}/single"), 3, || {
        eval_single(black_box(&spool), &governor).0
    });
    let sharded_ns = harness.bench(format!("serving_shards/{name}/sharded_4"), 3, || {
        parallel_eval_streaming_governed(
            black_box(&parts.paths),
            vm_config.heap,
            canonical_config(),
            &governor,
        )
        .expect("sharded eval succeeds")
        .events_replayed
    });
    let speedup = single_ns / sharded_ns;
    println!("  {name}: {SERVING_SHARDS} shards -> {speedup:.2}x speedup over single-shard");
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "a shards={SERVING_SHARDS} budget must buy >= 1.5x on {cores} cores, got {speedup:.2}x"
        );
    } else {
        println!("  note: < 4 cores, the 1.5x speedup assertion is disarmed");
    }

    harness.write_json_with([("cores", cg_stats::Json::Num(cores as f64))]);
    let _ = std::fs::remove_dir_all(&dir);

    if let Some(path) = check {
        cg_bench::check_against_baseline(&harness, &path, CALIBRATION_LABEL);
    }
}
