//! Micro-benchmarks of the contaminated collector's building blocks.
//!
//! The paper's performance argument rests on three cost claims: maintaining
//! the equilive sets is a nearly constant amount of work per reference store
//! (union/find with path compression), collecting at a frame pop is cheap
//! (no marking), and the traditional collector's marking pass is the
//! expensive part being avoided.  These benches measure each of those costs
//! in isolation, plus two interpreter-level comparisons introduced with the
//! event-stream refactor:
//!
//! * `step/old_clone_dispatch` vs `step/new_borrowed_dispatch` — the seed
//!   interpreter cloned every executed instruction out of the method's code
//!   (`Call` argument vectors included); the refactored `step` borrows the
//!   code.  The pair of benches dispatches the same `Call`-heavy code
//!   sequence both ways.
//! * `interp/jess_size1_noop_run` — end-to-end interpreter throughput on a
//!   call-heavy workload, tracking the real `step` path over time.
//!
//! Results land in `BENCH_microbench.json` (see `cg_bench::microbench`).

use cg_baseline::MarkSweep;
use cg_bench::BenchHarness;
use cg_core::ContaminatedGc;
use cg_heap::{ClassId, Heap, HeapConfig, Value};
use cg_unionfind::DisjointSets;
use cg_vm::{
    Collector, FrameId, FrameInfo, Insn, MethodId, NoopCollector, Operand, RootSet, ThreadId, Vm,
    VmConfig,
};
use cg_workloads::{Size, Workload};
use std::hint::black_box;

fn frame(id: u64, depth: usize) -> FrameInfo {
    FrameInfo {
        id: FrameId::new(id),
        depth,
        thread: ThreadId::MAIN,
        method: MethodId::new(0),
    }
}

fn bench_unionfind(h: &mut BenchHarness) {
    h.bench("unionfind/union_find_1024_elements", 2_000, || {
        let mut sets = DisjointSets::with_capacity(1024);
        for _ in 0..1024 {
            sets.make_set();
        }
        for i in 0..1023u32 {
            sets.union(i, i + 1);
        }
        sets.find(0)
    });
    let mut sets = DisjointSets::with_capacity(4096);
    for _ in 0..4096 {
        sets.make_set();
    }
    for i in 0..4095u32 {
        sets.union(i, i + 1);
    }
    h.bench("unionfind/find_after_compression", 1_000_000, || {
        sets.find(black_box(4095))
    });
}

fn bench_heap(h: &mut BenchHarness) {
    h.bench("heap/allocate_free_256_objects", 2_000, || {
        let mut heap = Heap::new(HeapConfig::small());
        let mut handles = Vec::with_capacity(256);
        for _ in 0..256 {
            handles.push(heap.allocate(ClassId::new(0), 2).expect("fits"));
        }
        for handle in handles {
            heap.free(handle).expect("live");
        }
        heap.live_count()
    });
}

/// The per-store cost the paper calls "extra work at every store operation".
fn bench_store_barrier(h: &mut BenchHarness) {
    let mut heap = Heap::new(HeapConfig::spacious());
    let mut cg = ContaminatedGc::new();
    let f = frame(1, 1);
    let a = heap.allocate(ClassId::new(0), 2).unwrap();
    let b = heap.allocate(ClassId::new(0), 2).unwrap();
    cg.on_allocate(a, &f, &heap);
    cg.on_allocate(b, &f, &heap);
    heap.set_field(a, 0, Value::from(b)).unwrap();
    h.bench("cg_barrier/reference_store_same_block", 1_000_000, || {
        cg.on_reference_store(black_box(a), black_box(b), &f, &heap);
    });

    h.bench("cg_barrier/frame_pop_with_64_singletons", 5_000, || {
        let mut heap = Heap::new(HeapConfig::spacious());
        let mut cg = ContaminatedGc::new();
        let f = frame(2, 2);
        for _ in 0..64 {
            let handle = heap.allocate(ClassId::new(0), 2).unwrap();
            cg.on_allocate(handle, &f, &heap);
        }
        cg.on_frame_pop(&f, &mut heap).freed_objects
    });
}

/// The mark cost the contaminated collector avoids.
fn bench_marksweep(h: &mut BenchHarness) {
    h.bench("msa/mark_sweep_4096_live_4096_dead", 200, || {
        let mut heap = Heap::new(HeapConfig::spacious());
        let mut previous = None;
        for i in 0..8192u32 {
            let handle = heap.allocate(ClassId::new(0), 2).unwrap();
            if i % 2 == 0 {
                // Half the objects form a list reachable from a root.
                if let Some(prev) = previous {
                    heap.set_field(handle, 0, Value::from(prev)).unwrap();
                }
                previous = Some(handle);
            }
        }
        let roots = RootSet {
            statics: vec![previous.unwrap()],
            ..RootSet::default()
        };
        let mut msa = MarkSweep::new();
        msa.collect(&roots, &mut heap)
    });
}

/// A `Call`-heavy code sequence of the shape the interpreter's hot loop
/// sees: the old dispatch cloned each instruction (argument vectors and
/// all), the new dispatch borrows it.
fn call_heavy_code() -> Vec<Insn> {
    (0..64)
        .map(|i| match i % 4 {
            0 => Insn::Call {
                method: MethodId::new(0),
                args: vec![0, 1, 2, 3],
                dst: Some(4),
            },
            1 => Insn::Arith {
                op: cg_vm::ArithOp::Add,
                dst: 0,
                a: Operand::Local(0),
                b: Operand::Imm(1),
            },
            2 => Insn::Move { dst: 1, src: 0 },
            _ => Insn::SpawnThread {
                method: MethodId::new(0),
                args: vec![0, 1],
            },
        })
        .collect()
}

/// A tiny stand-in for instruction dispatch: enough of a `match` to make
/// the clone-vs-borrow difference the only variable.
fn dispatch_weight(insn: &Insn) -> u64 {
    match insn {
        Insn::Call { args, .. } | Insn::SpawnThread { args, .. } => args.len() as u64,
        Insn::Arith { .. } => 2,
        _ => 1,
    }
}

fn bench_step_dispatch(h: &mut BenchHarness) {
    let code = call_heavy_code();
    let old = h.bench("step/old_clone_dispatch", 50_000, || {
        let mut acc = 0u64;
        for pc in 0..code.len() {
            // The seed interpreter's fetch: clone the instruction out of the
            // program so the borrow on the code ends before execution.
            let insn = black_box(&code)[pc].clone();
            acc += dispatch_weight(&insn);
        }
        acc
    });
    let new = h.bench("step/new_borrowed_dispatch", 50_000, || {
        let mut acc = 0u64;
        for pc in 0..code.len() {
            // The refactored fetch: borrow the instruction in place.
            let insn = &black_box(&code)[pc];
            acc += dispatch_weight(insn);
        }
        acc
    });
    println!(
        "step dispatch: borrowed fetch is {:.2}x the speed of the cloning fetch",
        old / new.max(f64::MIN_POSITIVE)
    );
}

fn bench_interpreter_throughput(h: &mut BenchHarness) {
    let workload = Workload::by_name("jess").expect("known benchmark");
    let program = workload.program(Size::S1);
    let instructions = {
        let mut vm = Vm::new(program.clone(), VmConfig::default(), NoopCollector::new());
        vm.run().expect("jess runs").stats.instructions
    };
    let ns = h.bench("interp/jess_size1_noop_run", 5, || {
        let mut vm = Vm::new(program.clone(), VmConfig::default(), NoopCollector::new());
        vm.run().expect("jess runs").stats.instructions
    });
    println!(
        "interp/jess_size1_noop_run: {:.1} ns per executed instruction ({instructions} instructions)",
        ns / instructions as f64
    );
}

fn main() {
    let mut harness = BenchHarness::new("microbench");
    bench_unionfind(&mut harness);
    bench_heap(&mut harness);
    bench_store_barrier(&mut harness);
    bench_marksweep(&mut harness);
    bench_step_dispatch(&mut harness);
    bench_interpreter_throughput(&mut harness);
    harness.write_json();
}
