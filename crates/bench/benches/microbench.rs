//! Micro-benchmarks of the contaminated collector's building blocks.
//!
//! The paper's performance argument rests on three cost claims: maintaining
//! the equilive sets is a nearly constant amount of work per reference store
//! (union/find with path compression), collecting at a frame pop is cheap
//! (no marking), and the traditional collector's marking pass is the
//! expensive part being avoided.  These benches measure each of those costs
//! in isolation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cg_baseline::MarkSweep;
use cg_core::ContaminatedGc;
use cg_heap::{ClassId, Heap, HeapConfig, Value};
use cg_unionfind::DisjointSets;
use cg_vm::{Collector, FrameId, FrameInfo, MethodId, RootSet, ThreadId};

fn frame(id: u64, depth: usize) -> FrameInfo {
    FrameInfo {
        id: FrameId::new(id),
        depth,
        thread: ThreadId::MAIN,
        method: MethodId::new(0),
    }
}

fn bench_unionfind(c: &mut Criterion) {
    let mut group = c.benchmark_group("unionfind");
    group.bench_function("union_find_1024_elements", |b| {
        b.iter_batched(
            || {
                let mut sets = DisjointSets::with_capacity(1024);
                for _ in 0..1024 {
                    sets.make_set();
                }
                sets
            },
            |mut sets| {
                for i in 0..1023u32 {
                    sets.union(i, i + 1);
                }
                black_box(sets.find(0))
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("find_after_compression", |b| {
        let mut sets = DisjointSets::with_capacity(4096);
        for _ in 0..4096 {
            sets.make_set();
        }
        for i in 0..4095u32 {
            sets.union(i, i + 1);
        }
        b.iter(|| black_box(sets.find(black_box(4095))));
    });
    group.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");
    group.bench_function("allocate_free_256_objects", |b| {
        b.iter_batched(
            || Heap::new(HeapConfig::small()),
            |mut heap| {
                let mut handles = Vec::with_capacity(256);
                for _ in 0..256 {
                    handles.push(heap.allocate(ClassId::new(0), 2).expect("fits"));
                }
                for handle in handles {
                    heap.free(handle).expect("live");
                }
                black_box(heap.live_count())
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The per-store cost the paper calls "extra work at every store operation".
fn bench_store_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_barrier");
    group.bench_function("reference_store_same_block", |b| {
        let mut heap = Heap::new(HeapConfig::spacious());
        let mut cg = ContaminatedGc::new();
        let f = frame(1, 1);
        let a = heap.allocate(ClassId::new(0), 2).unwrap();
        let b_obj = heap.allocate(ClassId::new(0), 2).unwrap();
        cg.on_allocate(a, &f, &heap);
        cg.on_allocate(b_obj, &f, &heap);
        heap.set_field(a, 0, Value::from(b_obj)).unwrap();
        b.iter(|| {
            cg.on_reference_store(black_box(a), black_box(b_obj), &f, &heap);
        });
    });
    group.bench_function("frame_pop_with_64_singletons", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::new(HeapConfig::spacious());
                let mut cg = ContaminatedGc::new();
                let f = frame(2, 2);
                for _ in 0..64 {
                    let h = heap.allocate(ClassId::new(0), 2).unwrap();
                    cg.on_allocate(h, &f, &heap);
                }
                (heap, cg, f)
            },
            |(mut heap, mut cg, f)| {
                let outcome = cg.on_frame_pop(&f, &mut heap);
                black_box(outcome.freed_objects)
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The mark cost the contaminated collector avoids.
fn bench_marksweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("msa");
    group.bench_function("mark_sweep_4096_live_4096_dead", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::new(HeapConfig::spacious());
                let mut roots = Vec::new();
                let mut previous = None;
                for i in 0..8192u32 {
                    let h = heap.allocate(ClassId::new(0), 2).unwrap();
                    if i % 2 == 0 {
                        // Half the objects form a list reachable from a root.
                        if let Some(prev) = previous {
                            heap.set_field(h, 0, Value::from(prev)).unwrap();
                        }
                        previous = Some(h);
                    }
                }
                roots.push(previous.unwrap());
                let root_set = RootSet {
                    statics: roots,
                    ..RootSet::default()
                };
                (heap, root_set)
            },
            |(mut heap, roots)| {
                let mut msa = MarkSweep::new();
                black_box(msa.collect(&roots, &mut heap))
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_unionfind,
    bench_heap,
    bench_store_barrier,
    bench_marksweep
);
criterion_main!(benches);
