//! Fuzz-throughput benchmarks: how fast the differential harness can
//! manufacture and check scenarios (`BENCH_fuzz.json`).
//!
//! Three figures per profile:
//!
//! * `gen/<profile>` — generating one program (pure generator cost);
//! * `record/<profile>` — generating + recording the collector-free
//!   baseline run (the oracle's fixed floor);
//! * `oracle/<profile>` — one full differential check: ground truth,
//!   contaminated GC live + replay + incremental, sharded at {1,2,4,8},
//!   parallel evaluation, recycling soundness.
//!
//! Before timing anything, every profile's seed-0 program is checked once —
//! a benchmark of a failing oracle would be measuring panic unwinding.
//!
//! CI re-runs the suite with `--check baselines/fuzz.json` and fails if any
//! shared label regressed more than 2x (speed-normalised through the
//! calibration loop) — the oracle's throughput is a feature: it bounds how
//! many programs a fixed fuzzing budget can cover.
//!
//! Two derived programs/sec figures are embedded in the JSON so the bench
//! trajectory accumulates comparable points across PRs:
//!
//! * `record_path` — generate + record one program (interpretation-bound;
//!   this is the figure the fused dispatch loop moves). Hard-asserted to
//!   stay above the PR 4 full-oracle figure of ~1000 programs/s: PR 4's
//!   whole differential check ran at ~1000/s, so its record leg was
//!   necessarily faster than that, and the interpreter must never fall
//!   back below it.
//! * `full_oracle` — one complete differential check. Slower per program
//!   than at PR 4 because the oracle has since roughly doubled its legs
//!   (domain differential, trace mutation, fusion differential), which is
//!   why the hard regression floor is on the record path, not here.

use std::hint::black_box;

use cg_bench::BenchHarness;
use cg_fuzz::{check_program, fuzz_vm_config, generate, GenProfile, OracleOptions};
use cg_stats::Json;
use cg_testutil::TestRng;
use cg_trace::record;
use cg_vm::NoopCollector;

const CALIBRATION_LABEL: &str = "calibration/spin_1k";

fn main() {
    let check = cg_bench::parse_check_arg();
    let mut harness = BenchHarness::new("fuzz");
    harness.bench(CALIBRATION_LABEL, 200_000, || {
        (0..1000u64).fold(0u64, |acc, i| {
            acc.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(black_box(i))
        })
    });
    let options = OracleOptions::default();

    // Correctness gate first.
    for profile in GenProfile::all() {
        let program = generate(0, profile);
        if let Err(failure) = check_program(&program, &options) {
            panic!(
                "oracle must pass before being timed: {}: {failure}",
                profile.name
            );
        }
    }

    for profile in GenProfile::all() {
        let mut seeds = TestRng::new(7);
        harness.bench(format!("gen/{}", profile.name), 64, || {
            generate(seeds.next_u64(), profile)
        });

        let mut seeds = TestRng::new(7);
        harness.bench(format!("record/{}", profile.name), 32, || {
            let program = generate(seeds.next_u64(), profile);
            record("bench", program, fuzz_vm_config(None), NoopCollector::new())
                .expect("generated programs record")
        });

        let mut seeds = TestRng::new(7);
        harness.bench(format!("oracle/{}", profile.name), 8, || {
            let program = generate(seeds.next_u64(), profile);
            check_program(&program, &options).expect("generated programs pass")
        });
    }

    // Aggregate programs/sec across the six profiles (total time for one
    // program of each, inverted), for the two pipeline depths described in
    // the module docs.
    let (mut record_ns, mut oracle_ns) = (0.0f64, 0.0f64);
    for profile in GenProfile::all() {
        record_ns += harness
            .ns_of(&format!("record/{}", profile.name))
            .expect("record leg benched");
        oracle_ns += harness
            .ns_of(&format!("oracle/{}", profile.name))
            .expect("oracle leg benched");
    }
    let profiles = GenProfile::all().len() as f64;
    let record_pps = profiles * 1e9 / record_ns;
    let oracle_pps = profiles * 1e9 / oracle_ns;

    // PR 4 measured ~1000 programs/s through its (shallower) full oracle;
    // the interpretation-bound record path must never regress below that.
    const PR4_FULL_ORACLE_PPS: f64 = 1000.0;
    println!(
        "fuzz programs/sec: record path {record_pps:.0}/s, full oracle {oracle_pps:.0}/s \
         (PR 4 full-oracle reference {PR4_FULL_ORACLE_PPS:.0}/s)"
    );
    assert!(
        record_pps > PR4_FULL_ORACLE_PPS,
        "generate+record throughput regressed below the PR 4 full-oracle figure: \
         {record_pps:.0} programs/s <= {PR4_FULL_ORACLE_PPS:.0} programs/s"
    );

    harness.write_json_with([(
        "fuzz_programs_per_sec",
        Json::Obj(vec![
            ("record_path".to_string(), Json::Num(record_pps)),
            ("full_oracle".to_string(), Json::Num(oracle_pps)),
            (
                "pr4_full_oracle_reference".to_string(),
                Json::Num(PR4_FULL_ORACLE_PPS),
            ),
        ]),
    )]);

    if let Some(path) = check {
        cg_bench::check_against_baseline(&harness, &path, CALIBRATION_LABEL);
    }
}
