//! Fuzz-throughput benchmarks: how fast the differential harness can
//! manufacture and check scenarios (`BENCH_fuzz.json`).
//!
//! Three figures per profile:
//!
//! * `gen/<profile>` — generating one program (pure generator cost);
//! * `record/<profile>` — generating + recording the collector-free
//!   baseline run (the oracle's fixed floor);
//! * `oracle/<profile>` — one full differential check: ground truth,
//!   contaminated GC live + replay + incremental, sharded at {1,2,4,8},
//!   parallel evaluation, recycling soundness.
//!
//! Before timing anything, every profile's seed-0 program is checked once —
//! a benchmark of a failing oracle would be measuring panic unwinding.

use cg_bench::BenchHarness;
use cg_fuzz::{check_program, fuzz_vm_config, generate, GenProfile, OracleOptions};
use cg_testutil::TestRng;
use cg_trace::record;
use cg_vm::NoopCollector;

fn main() {
    let mut harness = BenchHarness::new("fuzz");
    let options = OracleOptions::default();

    // Correctness gate first.
    for profile in GenProfile::all() {
        let program = generate(0, profile);
        if let Err(failure) = check_program(&program, &options) {
            panic!(
                "oracle must pass before being timed: {}: {failure}",
                profile.name
            );
        }
    }

    for profile in GenProfile::all() {
        let mut seeds = TestRng::new(7);
        harness.bench(format!("gen/{}", profile.name), 64, || {
            generate(seeds.next_u64(), profile)
        });

        let mut seeds = TestRng::new(7);
        harness.bench(format!("record/{}", profile.name), 32, || {
            let program = generate(seeds.next_u64(), profile);
            record("bench", program, fuzz_vm_config(None), NoopCollector::new())
                .expect("generated programs record")
        });

        let mut seeds = TestRng::new(7);
        harness.bench(format!("oracle/{}", profile.name), 8, || {
            let program = generate(seeds.next_u64(), profile);
            check_program(&program, &options).expect("generated programs pass")
        });
    }

    harness.write_json();
}
