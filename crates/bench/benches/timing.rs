//! End-to-end timing benches behind Figures 4.7, 4.8 and 4.12.
//!
//! Criterion measures three representative size-1 workloads under the
//! traditional collector, contaminated GC, and contaminated GC with
//! recycling.  The full per-benchmark timing tables (all eight workloads,
//! all three problem sizes, five repetitions) are produced by the
//! `repro_fig4_7`, `repro_fig4_8`, `repro_fig4_10` and `repro_fig4_12`
//! binaries, which print the paper-style tables; these benches exist so the
//! relative collector costs are tracked with Criterion's statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cg_bench::{run_once, CollectorChoice};
use cg_workloads::{Size, Workload};

/// Representative subset: one record-heavy benchmark (db), one
/// rule-engine-style allocator (jess) and one compute-bound benchmark
/// (compress).
const SUBSET: [&str; 3] = ["db", "jess", "compress"];

fn bench_collectors(c: &mut Criterion) {
    for name in SUBSET {
        let workload = Workload::by_name(name).expect("known benchmark");
        let mut group = c.benchmark_group(format!("timing_size1/{name}"));
        group.sample_size(10);
        for choice in [
            CollectorChoice::Baseline,
            CollectorChoice::Cg,
            CollectorChoice::CgRecycle,
        ] {
            group.bench_function(choice.label(), |b| {
                b.iter(|| {
                    let result = run_once(workload, Size::S1, choice).expect("run succeeds");
                    black_box(result.objects_created())
                });
            });
        }
        group.finish();
    }
}

criterion_group!(timing, bench_collectors);
criterion_main!(timing);
