//! End-to-end timing benches behind Figures 4.7, 4.8 and 4.12, plus the
//! live-vs-replay comparison of the trace runner.
//!
//! Three representative size-1 workloads run under the traditional
//! collector, contaminated GC, and contaminated GC with recycling.  The full
//! per-benchmark timing tables (all eight workloads, all three problem
//! sizes, five repetitions) are produced by the `repro_fig4_7`,
//! `repro_fig4_8`, `repro_fig4_10` and `repro_fig4_12` binaries; these
//! benches exist so the relative collector costs are tracked run over run
//! in `BENCH_timing.json`.
//!
//! The `trace/` group times the two halves of the trace-driven runner on
//! `db`: recording a workload (one interpretation) and replaying its stream
//! against the contaminated collector.  Replay must beat live interpretation
//! — that is the point of the event-stream layer: evaluating another
//! collector costs a replay, not a re-interpretation.

use cg_bench::{record_workload_trace, replay_run, run_once, BenchHarness, CollectorChoice};
use cg_workloads::{Size, Workload};

/// Representative subset: one record-heavy benchmark (db), one
/// rule-engine-style allocator (jess) and one compute-bound benchmark
/// (compress).
const SUBSET: [&str; 3] = ["db", "jess", "compress"];

fn bench_collectors(h: &mut BenchHarness) {
    for name in SUBSET {
        let workload = Workload::by_name(name).expect("known benchmark");
        for choice in [
            CollectorChoice::Baseline,
            CollectorChoice::Cg,
            CollectorChoice::CgRecycle,
        ] {
            h.bench(format!("timing_size1/{name}/{}", choice.label()), 3, || {
                let result = run_once(workload, Size::S1, choice).expect("run succeeds");
                result.objects_created()
            });
        }
    }
}

fn bench_trace_runner(h: &mut BenchHarness) {
    let workload = Workload::by_name("db").expect("known benchmark");
    let live = h.bench("trace/db_live_cg_run", 3, || {
        run_once(workload, Size::S1, CollectorChoice::Cg)
            .expect("live run succeeds")
            .objects_created()
    });
    h.bench("trace/db_record_once", 3, || {
        record_workload_trace(workload, Size::S1, None)
            .expect("recording succeeds")
            .trace
            .len()
    });
    let recorded = record_workload_trace(workload, Size::S1, None).expect("recording succeeds");
    let replay = h.bench("trace/db_replay_cg", 3, || {
        replay_run(&recorded, CollectorChoice::Cg)
            .expect("replay succeeds")
            .objects_created()
    });
    println!(
        "trace runner: replaying CG is {:.2}x the speed of live interpretation",
        live / replay.max(f64::MIN_POSITIVE)
    );
    if replay >= live {
        eprintln!("WARNING: replay was not faster than live interpretation on this machine");
    }
}

fn main() {
    let mut harness = BenchHarness::new("timing");
    bench_collectors(&mut harness);
    bench_trace_runner(&mut harness);
    harness.write_json();
}
