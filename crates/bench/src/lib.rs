//! Experiment harness reproducing every table and figure of the
//! contaminated-GC paper's evaluation (thesis Chapter 4 and Appendix A).
//!
//! The crate has three layers:
//!
//! * [`runner`] — runs one synthetic SPEC workload under one collector
//!   configuration and returns a uniform [`runner::RunResult`].
//! * [`paper`] — the values the paper reports, transcribed from the thesis,
//!   used to produce paper-vs-measured records in every report.
//! * [`experiments`] — one function per table/figure that runs the required
//!   configurations and renders the paper-style table plus comparison
//!   records.
//!
//! The `repro_*` binaries in `src/bin/` are thin wrappers around
//! [`experiments`]; `repro_all` runs everything, writes
//! `experiments_output.md`, and emits machine-readable `BENCH_repro.json`.
//! The `trace_eval` binary demonstrates the trace-driven runner mode:
//! each workload is interpreted once (recording its event stream via
//! `cg-trace`) and every collector is then evaluated by replay.  The benches
//! in `benches/` (hand-rolled harness in [`microbench`]; the build
//! environment has no crates.io access for criterion) cover the micro-costs
//! (union/find, store barrier, frame pop, allocation, interpreter dispatch)
//! and the end-to-end timing comparisons behind Figures 4.7, 4.8 and 4.12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod gate;
pub mod microbench;
pub mod paper;
pub mod parallel;
pub mod runner;

pub use cli::{parse_options, parse_trace_eval, TraceEvalOptions};
pub use experiments::{all_reports, report_by_id, ExperimentOptions, REPORT_IDS};
pub use gate::{check_against_baseline, discover_baselines, parse_check_arg};
pub use microbench::{BenchHarness, BenchResult};
pub use parallel::{
    parallel_eval, parallel_eval_governed, parallel_eval_streaming,
    parallel_eval_streaming_governed, ParallelError, ParallelOutcome,
};
pub use runner::{
    ensure_cached_trace, experiment_run_mode, quarantine_cache_entry, record_workload_trace,
    record_workload_trace_to_path, replay_run, replay_streaming, run_once, run_with_mode,
    set_experiment_run_mode, sweep_stale_tmps, trace_cache_dir, trace_cache_path, unique_tmp_path,
    CollectorChoice, RunMode, RunResult, RunnerError, TraceCache, WorkloadTrace, TMP_SWEEP_TTL,
};
