//! Experiment harness reproducing every table and figure of the
//! contaminated-GC paper's evaluation (thesis Chapter 4 and Appendix A).
//!
//! The crate has three layers:
//!
//! * [`runner`] — runs one synthetic SPEC workload under one collector
//!   configuration and returns a uniform [`runner::RunResult`].
//! * [`paper`] — the values the paper reports, transcribed from the thesis,
//!   used to produce paper-vs-measured records in every report.
//! * [`experiments`] — one function per table/figure that runs the required
//!   configurations and renders the paper-style table plus comparison
//!   records.
//!
//! The `repro_*` binaries in `src/bin/` are thin wrappers around
//! [`experiments`]; `repro_all` runs everything and writes
//! `experiments_output.md`.  The Criterion benches in `benches/` cover the
//! micro-costs (union/find, store barrier, frame pop, allocation) and the
//! end-to-end timing comparisons behind Figures 4.7, 4.8 and 4.12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod paper;
pub mod runner;

pub use cli::parse_options;
pub use experiments::{all_reports, report_by_id, ExperimentOptions, REPORT_IDS};
pub use runner::{run_once, CollectorChoice, RunResult};
