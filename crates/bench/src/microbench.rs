//! A tiny benchmarking harness.
//!
//! The build environment has no crates.io access, so the `benches/` targets
//! cannot use criterion; they use this harness instead (`harness = false` in
//! the manifest gives each bench its own `main`).  The harness does the two
//! things the workspace actually needs: a stable median-of-rounds
//! nanoseconds-per-iteration figure printed to stdout, and a machine-readable
//! `BENCH_<name>.json` file so the perf trajectory can be tracked run over
//! run.

use std::hint::black_box;
use std::time::Instant;

use cg_stats::Json;

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/name` label.
    pub label: String,
    /// Iterations per measurement round.
    pub iters: u64,
    /// Median nanoseconds per iteration across rounds.
    pub ns_per_iter: f64,
}

/// Collects results for one bench binary and writes the summary file.
#[derive(Debug, Default)]
pub struct BenchHarness {
    name: String,
    results: Vec<BenchResult>,
}

/// Number of timed rounds per benchmark; the reported figure is the median.
const ROUNDS: usize = 7;

impl BenchHarness {
    /// Creates a harness; `name` becomes the `BENCH_<name>.json` file stem.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            results: Vec::new(),
        }
    }

    /// Measures `f`, which performs **one** iteration per call.
    ///
    /// Runs one warm-up round plus `ROUNDS` (7) timed rounds of `iters`
    /// iterations and records the median.  The closure's result is passed
    /// through [`black_box`] so the optimizer cannot delete the work.
    ///
    /// # Panics
    ///
    /// Panics if `iters` is zero (the per-iteration figure would be NaN).
    pub fn bench<T>(
        &mut self,
        label: impl Into<String>,
        iters: u64,
        mut f: impl FnMut() -> T,
    ) -> f64 {
        assert!(iters > 0, "bench needs at least one iteration per round");
        let label = label.into();
        let mut round_ns = Vec::with_capacity(ROUNDS);
        for round in 0..=ROUNDS {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64 / iters as f64;
            // Round 0 is the warm-up.
            if round > 0 {
                round_ns.push(elapsed);
            }
        }
        round_ns.sort_by(f64::total_cmp);
        let median = round_ns[round_ns.len() / 2];
        println!("{label:<55} {median:>12.1} ns/iter   ({iters} iters x {ROUNDS} rounds)");
        self.results.push(BenchResult {
            label,
            iters,
            ns_per_iter: median,
        });
        median
    }

    /// The results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The median for a previously measured label.
    pub fn ns_of(&self, label: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.ns_per_iter)
    }

    /// The results as a JSON document.
    pub fn to_json(&self) -> Json {
        self.to_json_with([])
    }

    /// Like [`Self::to_json`] with extra top-level fields appended — benches
    /// use this to record environment facts (e.g. the core count) that are
    /// needed to interpret multi-threaded timings.
    pub fn to_json_with(&self, extra: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::obj(
            [
                ("bench", Json::Str(self.name.clone())),
                (
                    "results",
                    Json::Arr(
                        self.results
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("label", Json::Str(r.label.clone())),
                                    ("iters", Json::Num(r.iters as f64)),
                                    ("ns_per_iter", Json::Num(r.ns_per_iter)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]
            .into_iter()
            .chain(extra),
        )
    }

    /// Writes `BENCH_<name>.json` into the current directory and prints the
    /// path; failures are reported but not fatal (benches still ran).
    pub fn write_json(&self) {
        self.write_json_with([]);
    }

    /// Like [`Self::write_json`] with extra top-level fields appended.
    pub fn write_json_with(&self, extra: impl IntoIterator<Item = (&'static str, Json)>) {
        let path = format!("BENCH_{}.json", self.name);
        match std::fs::write(&path, self.to_json_with(extra).render_pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut harness = BenchHarness::new("selftest");
        let ns = harness.bench("group/busy_loop", 100, || {
            (0..100u64).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        assert!(ns >= 0.0);
        assert_eq!(harness.results().len(), 1);
        assert_eq!(harness.ns_of("group/busy_loop"), Some(ns));
        assert_eq!(harness.ns_of("missing"), None);
        let json = harness.to_json();
        assert_eq!(json.get("bench").and_then(Json::as_str), Some("selftest"));
        assert_eq!(
            json.get("results")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }
}
