//! Values reported by the paper, transcribed from the thesis figures, used
//! to generate paper-vs-measured comparison records.
//!
//! Only headline quantities are transcribed (one or two per benchmark per
//! figure); the point of the records is to audit the *shape* of the
//! reproduction — who wins, by roughly how much, where the extremes are —
//! not to chase absolute numbers measured on 1999 hardware and the real
//! SPECjvm98 inputs.

/// The eight benchmarks in the paper's order.
pub const BENCHMARKS: [&str; 8] = [
    "compress",
    "jess",
    "raytrace",
    "db",
    "javac",
    "mpegaudio",
    "mtrt",
    "jack",
];

/// Figure 4.1 (size 1): per benchmark, `(objects created, % collectable
/// without the §3.4 optimisation, % collectable with it)`.
pub const FIG4_1: [(&str, u64, f64, f64); 8] = [
    ("compress", 5_123, 9.0, 11.0),
    ("jess", 45_867, 35.0, 61.0),
    ("raytrace", 276_960, 98.0, 98.0),
    ("db", 7_608, 18.0, 36.0),
    ("javac", 26_116, 23.0, 24.0),
    ("mpegaudio", 7_550, 6.0, 7.0),
    ("mtrt", 276_084, 98.0, 98.0),
    ("jack", 393_742, 69.0, 89.0),
];

/// Figure 4.5 (size 1): per benchmark, the percentage of collectable objects
/// that sit in singleton ("exact") blocks.
pub const FIG4_5_PERCENT_EXACT: [(&str, f64); 8] = [
    ("compress", 3.0),
    ("jess", 7.0),
    ("raytrace", 15.0),
    ("db", 4.0),
    ("javac", 11.0),
    ("mpegaudio", 2.0),
    ("mtrt", 15.0),
    ("jack", 30.0),
];

/// Figure 4.7 (size 1): per benchmark, the speedup of CG over the JDK 1.1.8
/// base system (values below 1.0 are slowdowns).
pub const FIG4_7_SPEEDUP: [(&str, f64); 7] = [
    ("compress", 0.92),
    ("jess", 0.89),
    ("raytrace", 0.79),
    ("db", 0.95),
    ("javac", 1.11),
    ("mpegaudio", 0.97),
    ("jack", 0.91),
];

/// Figure 4.8 (size 10): speedup of CG over the base system.
pub const FIG4_8_SPEEDUP: [(&str, f64); 7] = [
    ("compress", 0.93),
    ("jess", 0.91),
    ("raytrace", 0.80),
    ("db", 0.91),
    ("javac", 0.92),
    ("mpegaudio", 0.97),
    ("jack", 0.92),
];

/// Figure 4.9 (size 100): per benchmark, `(objects created, % collectable
/// with the optimisation, % exactly collectable)`.
pub const FIG4_9: [(&str, u64, f64, f64); 8] = [
    ("compress", 6_959, 28.0, 27.0),
    ("jess", 7_924_661, 41.0, 42.0),
    ("raytrace", 6_346_978, 99.0, 82.0),
    ("db", 3_211_531, 99.0, 0.0),
    ("javac", 5_879_703, 91.0, 12.0),
    ("mpegaudio", 7_582, 9.0, 30.0),
    ("mtrt", 6_585_974, 99.0, 80.0),
    ("jack", 6_863_344, 90.0, 37.0),
];

/// Figure 4.10 (size 100): speedup of CG over the base system on the large
/// runs (the headline wins of the paper).
pub const FIG4_10_LARGE_SPEEDUP: [(&str, f64); 7] = [
    ("compress", 0.98),
    ("jess", 3.18),
    ("raytrace", 1.71),
    ("db", 0.94),
    ("javac", 2.77),
    ("mpegaudio", 1.30),
    ("jack", 1.98),
];

/// Figure 4.12 (size 1): speedup of CG-with-recycling over plain CG.
pub const FIG4_12_RECYCLE_SPEEDUP: [(&str, f64); 8] = [
    ("compress", 1.03),
    ("jess", 0.99),
    ("raytrace", 0.97),
    ("db", 1.01),
    ("javac", 0.99),
    ("mpegaudio", 1.02),
    ("mtrt", 1.02),
    ("jack", 1.00),
];

/// Figure 4.13 (size 1): percentage of allocated objects served from the
/// recycle list.
pub const FIG4_13_PERCENT_RECYCLED: [(&str, f64); 8] = [
    ("compress", 6.01),
    ("jess", 29.93),
    ("raytrace", 11.62),
    ("db", 9.23),
    ("javac", 21.83),
    ("mpegaudio", 4.15),
    ("mtrt", 11.38),
    ("jack", 56.47),
];

/// Appendix A.2 (size 1): per benchmark, `(popped, static, thread-shared)`.
pub const FIGA_2_BREAKDOWN_SMALL: [(&str, u64, u64, u64); 8] = [
    ("compress", 545, 4_576, 2),
    ("jess", 27_991, 17_874, 2),
    ("raytrace", 272_316, 4_599, 45),
    ("db", 2_701, 4_905, 2),
    ("javac", 6_366, 5_490, 14_255),
    ("mpegaudio", 547, 7_001, 2),
    ("mtrt", 271_456, 4_583, 45),
    ("jack", 349_936, 43_804, 2),
];

/// Looks up a per-benchmark value in one of the constant tables.
pub fn lookup<T: Copy>(table: &[(&str, T)], benchmark: &str) -> Option<T> {
    table
        .iter()
        .find(|(name, _)| *name == benchmark)
        .map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_the_benchmarks() {
        for (name, ..) in FIG4_1 {
            assert!(BENCHMARKS.contains(&name));
        }
        assert_eq!(FIG4_1.len(), 8);
        assert_eq!(FIG4_9.len(), 8);
        assert_eq!(FIGA_2_BREAKDOWN_SMALL.len(), 8);
        // The timing figures omit mtrt (the paper's Figures 4.7/4.8 do too).
        assert_eq!(FIG4_7_SPEEDUP.len(), 7);
    }

    #[test]
    fn lookup_finds_values() {
        assert_eq!(lookup(&FIG4_5_PERCENT_EXACT, "jack"), Some(30.0));
        assert_eq!(lookup(&FIG4_5_PERCENT_EXACT, "nonexistent"), None);
        assert_eq!(lookup(&FIG4_10_LARGE_SPEEDUP, "jess"), Some(3.18));
    }

    #[test]
    fn breakdown_rows_sum_to_roughly_the_created_objects() {
        for (name, created, _, _) in FIG4_1 {
            let (_, popped, statics, thread) = FIGA_2_BREAKDOWN_SMALL
                .iter()
                .copied()
                .find(|(n, ..)| *n == name)
                .unwrap();
            let total = popped + statics + thread;
            let diff = created.abs_diff(total);
            assert!(diff * 100 <= created * 2, "{name}: {created} vs {total}");
        }
    }
}
