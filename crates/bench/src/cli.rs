//! Tiny command-line parsing shared by the `repro_*` binaries.

use crate::experiments::ExperimentOptions;

/// Parses the flags the reproduction binaries accept:
///
/// * `--quick` — size 1 only, one repetition (smoke-test mode).
/// * `--reps N` — timing repetitions (default 3; the paper uses 5).
/// * `--no-medium` — skip the size-10 runs.
/// * `--no-large` — skip the size-100 runs (the slowest part).
///
/// Unrecognised arguments are returned so callers (such as `repro_all`) can
/// interpret them as experiment ids.
pub fn parse_options<I: IntoIterator<Item = String>>(args: I) -> (ExperimentOptions, Vec<String>) {
    let mut options = ExperimentOptions::default();
    let mut rest = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options = ExperimentOptions::quick(),
            "--no-large" => options.include_large = false,
            "--no-medium" => options.include_medium = false,
            "--reps" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .expect("--reps requires a positive integer");
                options.repetitions = value.max(1);
            }
            other => rest.push(other.to_string()),
        }
    }
    (options, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> (ExperimentOptions, Vec<String>) {
        parse_options(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_include_everything() {
        let (options, rest) = parse(&[]);
        assert_eq!(options, ExperimentOptions::default());
        assert!(rest.is_empty());
    }

    #[test]
    fn quick_flag_switches_to_smoke_mode() {
        let (options, _) = parse(&["--quick"]);
        assert_eq!(options, ExperimentOptions::quick());
    }

    #[test]
    fn reps_and_size_flags() {
        let (options, rest) = parse(&["--reps", "5", "--no-large", "fig4_1"]);
        assert_eq!(options.repetitions, 5);
        assert!(!options.include_large);
        assert!(options.include_medium);
        assert_eq!(rest, vec!["fig4_1".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--reps requires")]
    fn reps_without_value_panics() {
        let _ = parse(&["--reps"]);
    }
}
