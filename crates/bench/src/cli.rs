//! Tiny command-line parsing shared by the `repro_*` and `trace_eval`
//! binaries.

use crate::experiments::ExperimentOptions;
use crate::runner::CollectorChoice;
use cg_workloads::Size;

/// Parses the flags the reproduction binaries accept:
///
/// * `--quick` — size 1 only, one repetition (smoke-test mode).
/// * `--reps N` — timing repetitions (default 3; the paper uses 5).
/// * `--no-medium` — skip the size-10 runs.
/// * `--no-large` — skip the size-100 runs (the slowest part).
/// * `--streaming` — evaluate the stats experiments through the persisted
///   `.cgt` streaming path (record once to `target/trace-cache/`, replay
///   from disk) instead of live interpretation; timing figures stay live.
///
/// Unrecognised arguments are returned so callers (such as `repro_all`) can
/// interpret them as experiment ids.
pub fn parse_options<I: IntoIterator<Item = String>>(args: I) -> (ExperimentOptions, Vec<String>) {
    let mut options = ExperimentOptions::default();
    let mut rest = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options = ExperimentOptions::quick(),
            "--no-large" => options.include_large = false,
            "--no-medium" => options.include_medium = false,
            "--streaming" => {
                crate::runner::set_experiment_run_mode(crate::runner::RunMode::Streaming)
            }
            "--reps" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .expect("--reps requires a positive integer");
                options.repetitions = value.max(1);
            }
            other => rest.push(other.to_string()),
        }
    }
    (options, rest)
}

/// Options of the trace-driven runner (`trace_eval`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvalOptions {
    /// Workloads to evaluate (empty = all eight).
    pub workloads: Vec<String>,
    /// Problem size.
    pub size: Size,
    /// Collector configurations to drive from each recorded trace.
    pub collectors: Vec<CollectorChoice>,
}

impl Default for TraceEvalOptions {
    fn default() -> Self {
        Self {
            workloads: Vec::new(),
            size: Size::S1,
            collectors: vec![
                CollectorChoice::Baseline,
                CollectorChoice::Cg,
                CollectorChoice::CgNoOpt,
                CollectorChoice::CgReset,
            ],
        }
    }
}

/// Parses the `trace_eval` flags:
///
/// * `--size N` — SPEC problem size 1/10/100 (default 1).
/// * `--collectors a,b,c` — comma-separated [`CollectorChoice::label`]s.
/// * anything else — a workload name.
///
/// # Panics
///
/// Panics with a usage message on malformed sizes or unknown collector
/// labels (these binaries are developer tools; failing loudly beats running
/// the wrong experiment).
pub fn parse_trace_eval<I: IntoIterator<Item = String>>(args: I) -> TraceEvalOptions {
    let mut options = TraceEvalOptions::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => {
                let value = args.next().expect("--size requires 1, 10 or 100");
                options.size = Size::parse(&value)
                    .unwrap_or_else(|| panic!("--size must be 1, 10 or 100, got '{value}'"));
            }
            "--collectors" => {
                let value = args
                    .next()
                    .expect("--collectors requires a comma-separated list");
                options.collectors = value
                    .split(',')
                    .map(|label| {
                        CollectorChoice::parse(label.trim())
                            .unwrap_or_else(|| panic!("unknown collector label '{label}'"))
                    })
                    .collect();
            }
            workload => options.workloads.push(workload.to_string()),
        }
    }
    options
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> (ExperimentOptions, Vec<String>) {
        parse_options(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_include_everything() {
        let (options, rest) = parse(&[]);
        assert_eq!(options, ExperimentOptions::default());
        assert!(rest.is_empty());
    }

    #[test]
    fn quick_flag_switches_to_smoke_mode() {
        let (options, _) = parse(&["--quick"]);
        assert_eq!(options, ExperimentOptions::quick());
    }

    #[test]
    fn reps_and_size_flags() {
        let (options, rest) = parse(&["--reps", "5", "--no-large", "fig4_1"]);
        assert_eq!(options.repetitions, 5);
        assert!(!options.include_large);
        assert!(options.include_medium);
        assert_eq!(rest, vec!["fig4_1".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--reps requires")]
    fn reps_without_value_panics() {
        let _ = parse(&["--reps"]);
    }

    fn parse_eval(args: &[&str]) -> TraceEvalOptions {
        parse_trace_eval(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn trace_eval_defaults() {
        let options = parse_eval(&[]);
        assert!(options.workloads.is_empty());
        assert_eq!(options.size, Size::S1);
        assert!(options.collectors.contains(&CollectorChoice::Cg));
        assert!(!options.collectors.contains(&CollectorChoice::CgRecycle));
    }

    #[test]
    fn trace_eval_flags() {
        let options = parse_eval(&["db", "--size", "10", "--collectors", "cg, jdk-msa", "jess"]);
        assert_eq!(
            options.workloads,
            vec!["db".to_string(), "jess".to_string()]
        );
        assert_eq!(options.size, Size::S10);
        assert_eq!(
            options.collectors,
            vec![CollectorChoice::Cg, CollectorChoice::Baseline]
        );
    }

    #[test]
    #[should_panic(expected = "unknown collector label")]
    fn trace_eval_rejects_unknown_collectors() {
        let _ = parse_eval(&["--collectors", "zgc"]);
    }
}
