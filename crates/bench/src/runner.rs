//! Running one workload under one collector configuration — *live*
//! (interpret the program), by *replaying* an in-memory recorded event
//! trace, or by *streaming* a persisted `.cgt` trace from disk with
//! O(chunk) memory (see [`RunMode`]).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use cg_baseline::{MarkSweep, MarkSweepStats, NoopCollector};
use cg_core::{CgConfig, CgStats, HybridCollector, HybridConfig, ObjectBreakdown};
use cg_heap::{HeapConfig, HeapStats};
use cg_trace::footer::{vm_stats_from_section, VM_SECTION};
use cg_trace::{
    record, record_streaming, replay, ReplayError, ReplayOutcome, StreamReplayError, Trace,
    TraceIoError, TraceMeta, WorkloadRef,
};
use cg_vm::{Vm, VmConfig, VmError, VmStats};
use cg_workloads::{Size, Workload};

/// Which collector configuration to run a workload under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectorChoice {
    /// No collection at all (overhead-isolation runs of §4.5).
    Noop,
    /// The traditional mark-sweep collector alone (the "JDK" baseline).
    Baseline,
    /// Contaminated GC with the §3.4 static optimisation (the preferred
    /// configuration), backed by mark-sweep for allocation failures.
    Cg,
    /// Contaminated GC without the §3.4 optimisation (the "no opt" column of
    /// Figure 4.1).
    CgNoOpt,
    /// Contaminated GC with §3.7 recycling enabled.
    CgRecycle,
    /// Contaminated GC + mark-sweep with structure resetting (§3.6), run
    /// with a periodic forced collection as in §4.7.
    CgReset,
}

impl CollectorChoice {
    /// Every choice, in display order.
    pub const ALL: [CollectorChoice; 6] = [
        CollectorChoice::Noop,
        CollectorChoice::Baseline,
        CollectorChoice::Cg,
        CollectorChoice::CgNoOpt,
        CollectorChoice::CgRecycle,
        CollectorChoice::CgReset,
    ];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            CollectorChoice::Noop => "noop",
            CollectorChoice::Baseline => "jdk-msa",
            CollectorChoice::Cg => "cg",
            CollectorChoice::CgNoOpt => "cg-noopt",
            CollectorChoice::CgRecycle => "cg-recycle",
            CollectorChoice::CgReset => "cg-reset",
        }
    }

    /// Parses a [`CollectorChoice::label`] back into the choice.
    pub fn parse(label: &str) -> Option<CollectorChoice> {
        Self::ALL.into_iter().find(|c| c.label() == label)
    }

    /// Whether the choice can be evaluated by trace replay.
    ///
    /// Recycling reuses handles, which makes the allocation stream
    /// collector-dependent; it must run live (see the `cg-trace` docs).
    pub fn supports_replay(self) -> bool {
        self != CollectorChoice::CgRecycle
    }

    /// The periodic forced-collection interval the experiment configuration
    /// uses for this choice, if any.
    pub fn gc_every(self) -> Option<u64> {
        // §4.7 forces a traditional collection every 100 000 JVM
        // instructions; our synthetic workloads are scaled down roughly 4×,
        // so the interval is scaled the same way.
        (self == CollectorChoice::CgReset).then_some(25_000)
    }
}

/// Whether to interpret the workload, replay an in-memory recording, or
/// stream a persisted `.cgt` trace from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunMode {
    /// Interpret the program with the collector installed (the paper's own
    /// methodology; used for all timing figures).
    #[default]
    Live,
    /// Record the workload's event stream once (under a passive collector)
    /// and drive the chosen collector from the recording.  Much faster when
    /// evaluating several collectors over one workload, because the
    /// interpretation cost is paid once.
    Replay,
    /// Like [`RunMode::Replay`], but through the persistent `.cgt` layer:
    /// the recording is streamed to a file under `target/trace-cache/`
    /// (skipped entirely when a matching cache file already exists) and
    /// the collector is driven chunk-by-chunk from disk with O(chunk)
    /// trace memory.  Repeated bench runs skip re-interpretation across
    /// *processes*, not just within one.
    Streaming,
}

/// Errors from the runner: a live run's [`VmError`], a replay divergence,
/// or an unreadable/unwritable `.cgt` stream.
#[derive(Debug)]
pub enum RunnerError {
    /// The live (or recording) run failed.
    Vm(VmError),
    /// The replay diverged from the recorded heap history.
    Replay(ReplayError),
    /// The persisted trace could not be read or written.
    Trace(TraceIoError),
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunnerError::Vm(e) => write!(f, "{e}"),
            RunnerError::Replay(e) => write!(f, "{e}"),
            RunnerError::Trace(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<VmError> for RunnerError {
    fn from(e: VmError) -> Self {
        RunnerError::Vm(e)
    }
}

impl From<ReplayError> for RunnerError {
    fn from(e: ReplayError) -> Self {
        RunnerError::Replay(e)
    }
}

impl From<TraceIoError> for RunnerError {
    fn from(e: TraceIoError) -> Self {
        RunnerError::Trace(e)
    }
}

impl From<StreamReplayError> for RunnerError {
    fn from(e: StreamReplayError) -> Self {
        match e {
            StreamReplayError::Replay(e) => RunnerError::Replay(e),
            StreamReplayError::Trace(e) => RunnerError::Trace(e),
        }
    }
}

impl From<cg_trace::RecordError> for RunnerError {
    fn from(e: cg_trace::RecordError) -> Self {
        match e {
            cg_trace::RecordError::Vm(e) => RunnerError::Vm(e),
            cg_trace::RecordError::Trace(e) => RunnerError::Trace(e),
        }
    }
}

/// Contaminated-GC measurements extracted from a run, when the run used CG.
#[derive(Debug, Clone)]
pub struct CgSummary {
    /// The collector's raw statistics.
    pub stats: CgStats,
    /// Final object disposition (popped / static / thread-shared).
    pub breakdown: ObjectBreakdown,
}

/// The uniform result of one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub workload: &'static str,
    /// Problem size.
    pub size: Size,
    /// Collector configuration.
    pub collector: CollectorChoice,
    /// Wall-clock seconds inside `Vm::run`.
    pub elapsed_seconds: f64,
    /// Interpreter statistics.
    pub vm: VmStats,
    /// Heap statistics.
    pub heap: HeapStats,
    /// Objects still live when the program ended.
    pub live_at_exit: usize,
    /// CG measurements (None for the baseline and no-op runs).
    pub cg: Option<CgSummary>,
    /// Mark-sweep statistics (the baseline's own, or the hybrid's backstop).
    pub msa: Option<MarkSweepStats>,
}

impl RunResult {
    /// Objects the program allocated (instances + arrays).
    pub fn objects_created(&self) -> u64 {
        self.vm.objects_allocated + self.vm.arrays_allocated
    }

    /// Percentage of created objects CG collected (0 for non-CG runs).
    pub fn collectable_percent(&self) -> f64 {
        self.cg
            .as_ref()
            .map(|c| c.stats.collectable_percent())
            .unwrap_or(0.0)
    }
}

/// The heap sizing used by every experiment run: a 12 MiB object space, so
/// that the small problem sizes fit comfortably (the baseline hardly ever
/// collects, as in the paper's small runs) while the large problem sizes
/// overflow it many times over and retain sizable live structures (so the
/// baseline's repeated marking cost shows up, as in the paper's large runs).
/// The large javac/jack runs keep roughly half a million objects live at
/// once; the 64 MiB handle table gives them room so the experiments measure
/// object-space behaviour rather than handle-table exhaustion.
///
/// This is the same configuration golden-corpus `.cgt` recordings embed —
/// one definition, shared through `cg-trace`, so the bench harness and the
/// committed traces can never drift apart.
pub fn experiment_heap() -> HeapConfig {
    cg_trace::footer::canonical_heap()
}

/// The VM configuration used by experiment runs.
pub fn experiment_vm_config(choice: CollectorChoice) -> VmConfig {
    let mut config = VmConfig::default().with_heap(experiment_heap());
    if let Some(every) = choice.gc_every() {
        config = config.with_gc_every(every);
    }
    config
}

/// Runs `workload` at `size` under the chosen collector and returns the
/// uniform result.
///
/// # Errors
///
/// Returns the underlying [`VmError`] if the run fails (out of memory with a
/// non-collecting configuration, for example).
pub fn run_once(
    workload: Workload,
    size: Size,
    choice: CollectorChoice,
) -> Result<RunResult, VmError> {
    let program = workload.program(size);
    let config = experiment_vm_config(choice);

    let base = RunResult {
        workload: workload.name(),
        size,
        collector: choice,
        elapsed_seconds: 0.0,
        vm: VmStats::default(),
        heap: HeapStats::default(),
        live_at_exit: 0,
        cg: None,
        msa: None,
    };

    match choice {
        CollectorChoice::Noop => {
            let mut vm = Vm::new(program, config, NoopCollector::new());
            let outcome = vm.run()?;
            Ok(RunResult {
                elapsed_seconds: outcome.elapsed_seconds,
                vm: outcome.stats,
                heap: outcome.heap,
                live_at_exit: outcome.live_at_exit,
                ..base
            })
        }
        CollectorChoice::Baseline => {
            let mut vm = Vm::new(program, config, MarkSweep::new());
            let outcome = vm.run()?;
            let msa = *vm.collector().stats();
            Ok(RunResult {
                elapsed_seconds: outcome.elapsed_seconds,
                vm: outcome.stats,
                heap: outcome.heap,
                live_at_exit: outcome.live_at_exit,
                msa: Some(msa),
                ..base
            })
        }
        CollectorChoice::Cg
        | CollectorChoice::CgNoOpt
        | CollectorChoice::CgRecycle
        | CollectorChoice::CgReset => {
            let mut vm = Vm::new(program, config, hybrid_for(choice));
            let outcome = vm.run()?;
            let breakdown = vm.collector_mut().cg_mut().breakdown();
            let stats = vm.collector().cg().stats().clone();
            let msa = *vm.collector().msa_stats();
            Ok(RunResult {
                elapsed_seconds: outcome.elapsed_seconds,
                vm: outcome.stats,
                heap: outcome.heap,
                live_at_exit: outcome.live_at_exit,
                cg: Some(CgSummary { stats, breakdown }),
                msa: Some(msa),
                ..base
            })
        }
    }
}

/// The hybrid collector configuration a [`CollectorChoice`] maps to.
fn hybrid_for(choice: CollectorChoice) -> HybridCollector {
    let cg_config = match choice {
        CollectorChoice::CgNoOpt => CgConfig::without_static_opt(),
        CollectorChoice::CgRecycle => CgConfig::with_recycling(),
        _ => CgConfig::preferred(),
    };
    HybridCollector::new(HybridConfig {
        cg: CgConfig {
            // The verification pass is for tests; experiment runs measure
            // time, so it stays off.
            verify_tainted: false,
            ..cg_config
        },
        reset_on_collect: choice == CollectorChoice::CgReset,
    })
}

/// A workload's event stream recorded once, ready to be replayed against any
/// collector (the trace-driven runner mode).
#[derive(Debug, Clone)]
pub struct WorkloadTrace {
    /// Benchmark name.
    pub workload: &'static str,
    /// Problem size.
    pub size: Size,
    /// The recorded stream (captured under a passive collector).
    pub trace: Trace,
    /// The recording run's interpreter statistics (instruction counts and
    /// allocation totals are properties of the workload, not the collector).
    pub vm: VmStats,
    /// The heap configuration the recording ran with; replays use the same.
    pub heap: HeapConfig,
    /// The periodic forced-collection interval the recording ran with.  A
    /// trace is only valid for collector choices expecting the same interval
    /// (the `Collect` events are baked into the stream).
    pub gc_every: Option<u64>,
}

/// Records `workload` at `size` once, under a passive collector, with the
/// experiment heap.  `gc_every` adds the periodic §4.7 collection events
/// (required to replay [`CollectorChoice::CgReset`]).
///
/// # Errors
///
/// Returns the underlying [`VmError`] if the recording run fails.
pub fn record_workload_trace(
    workload: Workload,
    size: Size,
    gc_every: Option<u64>,
) -> Result<WorkloadTrace, VmError> {
    let mut config = VmConfig::default().with_heap(experiment_heap());
    if let Some(every) = gc_every {
        config = config.with_gc_every(every);
    }
    let name = format!("{}/{size}", workload.name());
    let (trace, outcome, _) = record(name, workload.program(size), config, NoopCollector::new())?;
    Ok(WorkloadTrace {
        workload: workload.name(),
        size,
        trace,
        vm: outcome.stats,
        heap: config.heap,
        gc_every,
    })
}

/// Where on-disk trace memoization lives: `$CG_TRACE_CACHE_DIR`, or
/// `target/trace-cache/` relative to the working directory.
pub fn trace_cache_dir() -> PathBuf {
    std::env::var_os("CG_TRACE_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("trace-cache"))
}

/// The cache file for one `(workload, size, gc_every)` recording.
pub fn trace_cache_path(workload: Workload, size: Size, gc_every: Option<u64>) -> PathBuf {
    let gc = gc_every.map_or_else(|| "none".to_string(), |n| n.to_string());
    trace_cache_dir().join(format!("{}-s{size}-gc{gc}.cgt", workload.name()))
}

/// How long an unpublished `.tmp.` sibling may sit in a cache directory
/// before [`sweep_stale_tmps`] treats it as an orphan from a dead writer.
/// Generous: a live recording of the largest workload finishes in minutes,
/// not hours.
pub const TMP_SWEEP_TTL: Duration = Duration::from_secs(60 * 60);

/// A process-unique, collision-proof temp sibling for atomically publishing
/// `path`: `<name>.<ext>.tmp.<pid>-<counter>`.
///
/// The PID alone is not enough — PIDs are recycled, so a sweeper (or an
/// unrelated crashed writer's successor) holding the same PID could clobber
/// a live tmp.  The monotonic per-process counter makes every tmp name this
/// process ever creates distinct, and distinct from any name a previous
/// holder of the PID plausibly left behind.
pub fn unique_tmp_path(path: &Path) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let ext = path
        .extension()
        .map_or_else(|| "tmp".to_string(), |e| e.to_string_lossy().into_owned());
    path.with_extension(format!("{ext}.tmp.{}-{n}", std::process::id()))
}

/// Removes `*.tmp.*` orphans older than `ttl` from `dir`, returning how
/// many were deleted.  Called on cache open: a recorder that dies between
/// `File::create` and the publishing `rename` leaks its tmp forever
/// otherwise.  The mtime TTL keeps the sweep from racing a *live* writer —
/// an in-progress recording's tmp is at most minutes old, while an orphan
/// only gets older.  Missing directories and unreadable entries are not
/// errors (the sweep is best-effort hygiene).
pub fn sweep_stale_tmps(dir: &Path, ttl: Duration) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let now = SystemTime::now();
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains(".tmp."));
        if !is_tmp {
            continue;
        }
        let Ok(modified) = entry.metadata().and_then(|m| m.modified()) else {
            continue;
        };
        // An mtime in the future (clock skew) reads as age zero.
        let age = now.duration_since(modified).unwrap_or(Duration::ZERO);
        if age >= ttl && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Records `workload` straight to a `.cgt` file with O(chunk) memory: the
/// header carries the workload identity, heap configuration and
/// `gc_every`; the footer carries the recording run's interpreter
/// statistics (everything [`replay_streaming`] and the disk cache need).
///
/// # Errors
///
/// Returns a [`RunnerError`] if the recording run or the write fails.
pub fn record_workload_trace_to_path(
    workload: Workload,
    size: Size,
    gc_every: Option<u64>,
    path: &Path,
) -> Result<(), RunnerError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(TraceIoError::Io)?;
    }
    let mut config = VmConfig::default().with_heap(experiment_heap());
    if let Some(every) = gc_every {
        config = config.with_gc_every(every);
    }
    let meta = TraceMeta {
        name: format!("{}/{size}", workload.name()),
        workload: Some(WorkloadRef {
            name: workload.name().to_string(),
            size: size.spec_number(),
        }),
        ..TraceMeta::default()
    };
    // Record into a collision-proof temp sibling, fsync, and rename into
    // place: a crash mid-write can never leave a truncated stream at the
    // published path, a crash between write and rename leaves only a
    // `.tmp` orphan (reclaimed by the TTL sweep on the next cache open),
    // and concurrent recorders cannot observe (or clobber) each other's
    // half-written files — whichever rename lands last wins, and both
    // renamed files are complete.
    let tmp = unique_tmp_path(path);
    let file = std::fs::File::create(&tmp).map_err(TraceIoError::Io)?;
    let recorded = record_streaming(
        &meta,
        workload.program(size),
        config,
        NoopCollector::new(),
        std::io::BufWriter::new(file),
    );
    let flushed = recorded
        .map_err(RunnerError::from)
        .and_then(|(_, _, _, w)| {
            w.into_inner()
                .map_err(|e| RunnerError::Trace(TraceIoError::Io(e.into_error())))
        })
        // Durability before visibility: the bytes must be on disk before
        // the rename publishes the path, or a power cut can publish an
        // empty (but fully renamed) cache entry.
        .and_then(|file| {
            file.sync_all()
                .map_err(|e| RunnerError::Trace(TraceIoError::Io(e)))
        });
    if let Err(e) = flushed {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path).map_err(TraceIoError::Io)?;
    // Persist the rename itself (the directory entry); best-effort, since
    // not every filesystem supports opening a directory for sync.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Moves a corrupt cache entry aside as `<name>.cgt.bad` instead of
/// deleting it, preserving the bytes for a post-mortem (`cgt info` on the
/// quarantined file shows how far it parses).  Any previous quarantined
/// entry for the same path is replaced.  Returns the quarantine path if
/// the move succeeded; falls back to deletion (and `None`) if rename
/// fails, so a corrupt entry never blocks re-recording.
pub fn quarantine_cache_entry(path: &Path) -> Option<PathBuf> {
    let bad = path.with_extension("cgt.bad");
    match std::fs::rename(path, &bad) {
        Ok(()) => Some(bad),
        Err(_) => {
            let _ = std::fs::remove_file(path);
            None
        }
    }
}

/// Ensures the disk cache holds a recording for `(workload, size,
/// gc_every)` and returns its path, recording on first use.
///
/// # Errors
///
/// Returns a [`RunnerError`] if a needed recording fails.
pub fn ensure_cached_trace(
    workload: Workload,
    size: Size,
    gc_every: Option<u64>,
) -> Result<PathBuf, RunnerError> {
    let path = trace_cache_path(workload, size, gc_every);
    if !path.exists() {
        record_workload_trace_to_path(workload, size, gc_every, &path)?;
    }
    Ok(path)
}

/// Streams a persisted `.cgt` workload trace through the chosen collector
/// — O(chunk) trace memory — and returns the same uniform [`RunResult`] a
/// live run would (interpreter statistics from the file's footer;
/// collector statistics and timing from the replay).
///
/// # Errors
///
/// Returns a [`RunnerError`] on unreadable streams, replay divergence, or
/// a file whose metadata does not match what the choice needs.
///
/// # Panics
///
/// Panics on choices where [`CollectorChoice::supports_replay`] is false.
pub fn replay_streaming(path: &Path, choice: CollectorChoice) -> Result<RunResult, RunnerError> {
    assert!(
        choice.supports_replay(),
        "{} cannot be evaluated by replay; run it live",
        choice.label()
    );
    let malformed = |detail: String| {
        RunnerError::Trace(TraceIoError::Malformed {
            chunk: None,
            detail,
        })
    };
    // One open: the header is validated against the choice before any
    // replay work starts, then the same reader drives the replay.
    let reader = cg_trace::open_trace(path)?;
    let meta = reader.meta().clone();
    if meta.gc_every != choice.gc_every() {
        return Err(malformed(format!(
            "{} was recorded with gc_every={:?}, but {} expects {:?}",
            path.display(),
            meta.gc_every,
            choice.label(),
            choice.gc_every(),
        )));
    }
    let workload = meta
        .workload
        .as_ref()
        .and_then(|w| Workload::by_name(&w.name))
        .ok_or_else(|| malformed(format!("{} names no known workload", path.display())))?;
    let size = meta
        .workload
        .as_ref()
        .and_then(|w| Size::parse(&w.size.to_string()))
        .ok_or_else(|| malformed(format!("{} has no valid size", path.display())))?;

    let vm_of = |footer: &cg_trace::TraceFooter| {
        footer
            .section(VM_SECTION)
            .and_then(vm_stats_from_section)
            .ok_or_else(|| {
                malformed(format!(
                    "{} has no \"{VM_SECTION}\" footer section",
                    path.display()
                ))
            })
    };
    let vm_with = |recorded: VmStats, outcome: &ReplayOutcome| {
        let mut vm = recorded;
        vm.gc_cycles = outcome.gc_cycles;
        vm.collector_freed_objects = outcome.collector_freed_objects;
        vm.collector_freed_bytes = outcome.collector_freed_bytes;
        vm.collector_marked_objects = outcome.collector_marked_objects;
        vm
    };
    let base = RunResult {
        workload: workload.name(),
        size,
        collector: choice,
        elapsed_seconds: 0.0,
        vm: VmStats::default(),
        heap: HeapStats::default(),
        live_at_exit: 0,
        cg: None,
        msa: None,
    };
    let heap_config = meta.heap.unwrap_or_else(experiment_heap);
    // Drives the already-open reader through one collector and hands back
    // the replay plus the footer (exactly one header parse per run).
    fn drive<C: cg_vm::Collector, R: std::io::Read>(
        mut reader: cg_trace::TraceReader<R>,
        heap_config: HeapConfig,
        collector: C,
    ) -> Result<(cg_trace::Replayed<C>, cg_trace::TraceFooter), RunnerError> {
        let replayed = cg_trace::replay_events(
            std::iter::from_fn(|| reader.next_event().transpose()),
            heap_config,
            collector,
        )?;
        let footer = reader
            .footer()
            .cloned()
            .expect("stream iterated to completion, so the footer was read");
        Ok((replayed, footer))
    }
    match choice {
        CollectorChoice::Noop => {
            let (replayed, footer) = drive(reader, heap_config, NoopCollector::new())?;
            let recorded = vm_of(&footer)?;
            Ok(RunResult {
                elapsed_seconds: replayed.outcome.elapsed_seconds,
                vm: vm_with(recorded, &replayed.outcome),
                heap: *replayed.heap.stats(),
                live_at_exit: replayed.outcome.live_at_exit,
                ..base
            })
        }
        CollectorChoice::Baseline => {
            let (replayed, footer) = drive(reader, heap_config, MarkSweep::new())?;
            let recorded = vm_of(&footer)?;
            Ok(RunResult {
                elapsed_seconds: replayed.outcome.elapsed_seconds,
                vm: vm_with(recorded, &replayed.outcome),
                heap: *replayed.heap.stats(),
                live_at_exit: replayed.outcome.live_at_exit,
                msa: Some(*replayed.collector.stats()),
                ..base
            })
        }
        _ => {
            let (replayed, footer) = drive(reader, heap_config, hybrid_for(choice))?;
            let recorded = vm_of(&footer)?;
            let mut collector = replayed.collector;
            let breakdown = collector.cg_mut().breakdown();
            Ok(RunResult {
                elapsed_seconds: replayed.outcome.elapsed_seconds,
                vm: vm_with(recorded, &replayed.outcome),
                heap: *replayed.heap.stats(),
                live_at_exit: replayed.outcome.live_at_exit,
                cg: Some(CgSummary {
                    stats: collector.cg().stats().clone(),
                    breakdown,
                }),
                msa: Some(*collector.msa_stats()),
                ..base
            })
        }
    }
}

/// Replays a recorded workload against the chosen collector and returns the
/// same uniform [`RunResult`] a live run would (interpreter statistics come
/// from the recording; collector statistics and timing from the replay).
///
/// # Errors
///
/// Returns [`RunnerError::Replay`] if the collector diverges from the
/// recorded heap history.
///
/// # Panics
///
/// Panics on choices where [`CollectorChoice::supports_replay`] is false,
/// and when the trace's recorded periodic-collection interval does not match
/// the one the choice's experiment configuration uses.
pub fn replay_run(
    recorded: &WorkloadTrace,
    choice: CollectorChoice,
) -> Result<RunResult, RunnerError> {
    assert!(
        choice.supports_replay(),
        "{} cannot be evaluated by replay; run it live",
        choice.label()
    );
    // Replaying a trace whose periodic-collection interval differs from the
    // choice's experiment configuration would silently produce statistics no
    // live run could (e.g. a CgReset evaluation with zero resets).
    assert_eq!(
        recorded.gc_every,
        choice.gc_every(),
        "trace for {}/{} was recorded with gc_every={:?}, but {} expects {:?}; \
         record with the matching interval (see record_workload_trace)",
        recorded.workload,
        recorded.size,
        recorded.gc_every,
        choice.label(),
        choice.gc_every(),
    );
    // The recording ran under a passive collector, so its VmStats carry
    // zeros in the collector-accounting fields; overwrite them with what
    // the replayed collector actually did, the way a live run would report.
    let vm_with = |outcome: &ReplayOutcome| {
        let mut vm = recorded.vm;
        vm.gc_cycles = outcome.gc_cycles;
        vm.collector_freed_objects = outcome.collector_freed_objects;
        vm.collector_freed_bytes = outcome.collector_freed_bytes;
        vm.collector_marked_objects = outcome.collector_marked_objects;
        vm
    };
    let base = RunResult {
        workload: recorded.workload,
        size: recorded.size,
        collector: choice,
        elapsed_seconds: 0.0,
        vm: recorded.vm,
        heap: HeapStats::default(),
        live_at_exit: 0,
        cg: None,
        msa: None,
    };
    match choice {
        CollectorChoice::Noop => {
            let replayed = replay(&recorded.trace, recorded.heap, NoopCollector::new())?;
            Ok(RunResult {
                elapsed_seconds: replayed.outcome.elapsed_seconds,
                vm: vm_with(&replayed.outcome),
                heap: *replayed.heap.stats(),
                live_at_exit: replayed.outcome.live_at_exit,
                ..base
            })
        }
        CollectorChoice::Baseline => {
            let replayed = replay(&recorded.trace, recorded.heap, MarkSweep::new())?;
            Ok(RunResult {
                elapsed_seconds: replayed.outcome.elapsed_seconds,
                vm: vm_with(&replayed.outcome),
                heap: *replayed.heap.stats(),
                live_at_exit: replayed.outcome.live_at_exit,
                msa: Some(*replayed.collector.stats()),
                ..base
            })
        }
        _ => {
            let replayed = replay(&recorded.trace, recorded.heap, hybrid_for(choice))?;
            let mut collector = replayed.collector;
            let breakdown = collector.cg_mut().breakdown();
            Ok(RunResult {
                elapsed_seconds: replayed.outcome.elapsed_seconds,
                vm: vm_with(&replayed.outcome),
                heap: *replayed.heap.stats(),
                live_at_exit: replayed.outcome.live_at_exit,
                cg: Some(CgSummary {
                    stats: collector.cg().stats().clone(),
                    breakdown,
                }),
                msa: Some(*collector.msa_stats()),
                ..base
            })
        }
    }
}

/// Runs one workload/collector configuration in the chosen [`RunMode`].
///
/// In [`RunMode::Replay`] the workload is recorded on the spot (recycling
/// configurations fall back to a live run — their allocation decisions are
/// collector-dependent).  Use a [`TraceCache`] to amortise the recording
/// over several collectors.
///
/// # Errors
///
/// Returns a [`RunnerError`] if the run or replay fails.
pub fn run_with_mode(
    workload: Workload,
    size: Size,
    choice: CollectorChoice,
    mode: RunMode,
) -> Result<RunResult, RunnerError> {
    match mode {
        RunMode::Live => Ok(run_once(workload, size, choice)?),
        RunMode::Replay | RunMode::Streaming if !choice.supports_replay() => {
            Ok(run_once(workload, size, choice)?)
        }
        RunMode::Replay => {
            let recorded = record_workload_trace(workload, size, choice.gc_every())?;
            replay_run(&recorded, choice)
        }
        RunMode::Streaming => {
            // Recording runs under a passive collector, which never frees:
            // a workload too large for the experiment heap without garbage
            // collection (the size-100 runs) cannot be captured as a
            // collector-independent stream at all, so it honestly falls
            // back to live interpretation.
            let gc_every = choice.gc_every();
            match ensure_cached_trace(workload, size, gc_every) {
                Ok(path) => match replay_streaming(&path, choice) {
                    Ok(result) => Ok(result),
                    // A stale or corrupt cache file (older format, crash
                    // leftovers, wrong metadata) only costs a re-recording.
                    // The bad bytes are quarantined, not destroyed, and the
                    // retry happens exactly once — a corruption that
                    // survives a fresh recording is a real bug to surface,
                    // not something to loop on.
                    Err(RunnerError::Trace(_)) => {
                        quarantine_cache_entry(&path);
                        let path = ensure_cached_trace(workload, size, gc_every)?;
                        replay_streaming(&path, choice)
                    }
                    Err(e) => Err(e),
                },
                Err(RunnerError::Vm(_)) => Ok(run_once(workload, size, choice)?),
                Err(e) => Err(e),
            }
        }
    }
}

/// The process-wide default [`RunMode`] for the stats experiments (the
/// `repro_*` binaries' non-timing figures).  Timing experiments always run
/// live regardless — replay timings measure the replayer, not the paper's
/// methodology.
static EXPERIMENT_RUN_MODE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Sets the default run mode used by the experiment suite (`repro_all
/// --streaming` selects [`RunMode::Streaming`] to prove stats parity
/// through the persisted-trace path).
pub fn set_experiment_run_mode(mode: RunMode) {
    let raw = match mode {
        RunMode::Live => 0,
        RunMode::Replay => 1,
        RunMode::Streaming => 2,
    };
    EXPERIMENT_RUN_MODE.store(raw, std::sync::atomic::Ordering::Relaxed);
}

/// The current default run mode for the experiment suite.
pub fn experiment_run_mode() -> RunMode {
    match EXPERIMENT_RUN_MODE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => RunMode::Replay,
        2 => RunMode::Streaming,
        _ => RunMode::Live,
    }
}

/// Caches recorded workload traces keyed by `(workload, size, gc_every)`, so
/// a batch evaluation (many collectors × one workload) interprets each
/// workload once.
///
/// With [`TraceCache::with_disk_cache`] the memoization extends across
/// processes: recordings are persisted as `.cgt` files under
/// [`trace_cache_dir`] and loaded back instead of re-interpreted on the
/// next run.  A stale or unreadable cache file is silently re-recorded
/// (and overwritten) — the cache can only cost a re-recording, never
/// correctness.  Delete `target/trace-cache/` (or `cargo clean`) after
/// changing workload definitions.
#[derive(Debug, Default)]
pub struct TraceCache {
    traces: HashMap<(&'static str, Size, Option<u64>), Rc<WorkloadTrace>>,
    use_disk: bool,
}

impl TraceCache {
    /// Creates an empty in-memory cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache that additionally memoizes recordings on disk under
    /// [`trace_cache_dir`].
    ///
    /// Opening the disk cache also sweeps `.tmp.` orphans older than
    /// [`TMP_SWEEP_TTL`] — leftovers from recorders that died between
    /// creating the temp file and renaming it into place.
    pub fn with_disk_cache() -> Self {
        sweep_stale_tmps(&trace_cache_dir(), TMP_SWEEP_TTL);
        Self {
            traces: HashMap::new(),
            use_disk: true,
        }
    }

    /// The recorded trace for the workload the given choice needs,
    /// recording it — or loading it from the disk cache — on first use.
    ///
    /// # Errors
    ///
    /// Returns the recording run's [`VmError`] on failure.
    pub fn for_choice(
        &mut self,
        workload: Workload,
        size: Size,
        choice: CollectorChoice,
    ) -> Result<Rc<WorkloadTrace>, VmError> {
        let gc_every = choice.gc_every();
        let key = (workload.name(), size, gc_every);
        if let Some(trace) = self.traces.get(&key) {
            return Ok(Rc::clone(trace));
        }
        if self.use_disk {
            let path = trace_cache_path(workload, size, gc_every);
            if let Some(loaded) = load_cached_workload_trace(&path, workload, size, gc_every) {
                let loaded = Rc::new(loaded);
                self.traces.insert(key, Rc::clone(&loaded));
                return Ok(loaded);
            }
            let recorded = Rc::new(record_workload_trace(workload, size, gc_every)?);
            if let Err(e) = write_cached_workload_trace(&path, &recorded) {
                // The cache is an optimization; a failed write only costs
                // the next process a re-recording.
                eprintln!(
                    "warning: could not write trace cache {}: {e}",
                    path.display()
                );
            }
            self.traces.insert(key, Rc::clone(&recorded));
            return Ok(recorded);
        }
        let recorded = Rc::new(record_workload_trace(workload, size, gc_every)?);
        self.traces.insert(key, Rc::clone(&recorded));
        Ok(recorded)
    }

    /// Number of distinct recordings held in memory.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

/// Persists a recorded workload trace as a `.cgt` cache file (header:
/// workload identity + heap + `gc_every`; footer: the recording run's
/// interpreter statistics).
fn write_cached_workload_trace(path: &Path, wt: &WorkloadTrace) -> Result<(), TraceIoError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let meta = TraceMeta {
        name: wt.trace.name().to_string(),
        workload: Some(WorkloadRef {
            name: wt.workload.to_string(),
            size: wt.size.spec_number(),
        }),
        gc_every: wt.gc_every,
        heap: Some(wt.heap),
        declared_events: Some(wt.trace.len() as u64),
        stream: cg_trace::StreamKind::Plain,
    };
    // Same atomic-publish discipline as [`record_workload_trace_to_path`]:
    // a crash or concurrent writer can never leave a torn file at the
    // published path, and the bytes are on disk before the rename.
    let tmp = unique_tmp_path(path);
    let write = || -> Result<(), TraceIoError> {
        let file = std::fs::File::create(&tmp)?;
        let mut writer = cg_trace::TraceWriter::new(std::io::BufWriter::new(file), &meta)?;
        for event in wt.trace.events() {
            writer.push(event)?;
        }
        writer.add_section(cg_trace::footer::vm_section(&wt.vm));
        let (w, _) = writer.finish()?;
        let file = w
            .into_inner()
            .map_err(|e| TraceIoError::Io(e.into_error()))?;
        file.sync_all()?;
        Ok(())
    };
    if let Err(e) = write() {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Loads a cached workload trace, returning `None` when the file is
/// missing, unreadable, or does not describe the requested recording.
fn load_cached_workload_trace(
    path: &Path,
    workload: Workload,
    size: Size,
    gc_every: Option<u64>,
) -> Option<WorkloadTrace> {
    if !path.exists() {
        return None;
    }
    let (trace, meta, footer) = match cg_trace::read_trace_from_path(path) {
        Ok(read) => read,
        Err(e) => {
            // Quarantine rather than delete: the corrupt bytes are the
            // evidence (`cgt info <file>.bad` shows how far they parse).
            let kept = quarantine_cache_entry(path).map_or_else(
                || "discarded".to_string(),
                |bad| format!("kept as {}", bad.display()),
            );
            eprintln!(
                "warning: ignoring unreadable trace cache {} ({kept}): {e}",
                path.display()
            );
            return None;
        }
    };
    let matches = meta
        .workload
        .as_ref()
        .is_some_and(|w| w.name == workload.name() && w.size == size.spec_number())
        && meta.gc_every == gc_every;
    if !matches {
        return None;
    }
    let vm = footer.section(VM_SECTION).and_then(vm_stats_from_section)?;
    Some(WorkloadTrace {
        workload: workload.name(),
        size,
        trace,
        vm,
        heap: meta.heap?,
        gc_every,
    })
}

/// Runs a workload `repetitions` times under the chosen collector and
/// returns every result (the timing figures average them, as the paper's
/// Appendix A does over five runs).
///
/// # Errors
///
/// Returns the first [`VmError`] encountered.
pub fn run_repeated(
    workload: Workload,
    size: Size,
    choice: CollectorChoice,
    repetitions: usize,
) -> Result<Vec<RunResult>, VmError> {
    (0..repetitions.max(1))
        .map(|_| run_once(workload, size, choice))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Workload {
        Workload::by_name("db").expect("db exists")
    }

    #[test]
    fn baseline_and_cg_allocate_the_same_objects() {
        let baseline = run_once(db(), Size::S1, CollectorChoice::Baseline).unwrap();
        let cg = run_once(db(), Size::S1, CollectorChoice::Cg).unwrap();
        assert_eq!(baseline.objects_created(), cg.objects_created());
        assert!(baseline.cg.is_none());
        assert!(cg.cg.is_some());
        assert!(cg.collectable_percent() > 0.0);
        assert_eq!(baseline.collectable_percent(), 0.0);
    }

    #[test]
    fn no_opt_collects_fewer_objects_than_preferred() {
        let with_opt = run_once(db(), Size::S1, CollectorChoice::Cg).unwrap();
        let no_opt = run_once(db(), Size::S1, CollectorChoice::CgNoOpt).unwrap();
        assert!(
            with_opt.collectable_percent() > no_opt.collectable_percent() + 5.0,
            "with {:.1}% vs without {:.1}%",
            with_opt.collectable_percent(),
            no_opt.collectable_percent()
        );
    }

    #[test]
    fn recycling_run_recycles_objects() {
        let result = run_once(db(), Size::S1, CollectorChoice::CgRecycle).unwrap();
        let cg = result.cg.as_ref().unwrap();
        assert!(cg.stats.objects_recycled > 0);
        assert_eq!(result.vm.recycled_allocations, cg.stats.objects_recycled);
    }

    #[test]
    fn reset_run_performs_resets() {
        // jess executes well over 25k instructions at size 1, so the
        // periodic traditional collections (and resets) must fire.
        let jess = Workload::by_name("jess").expect("jess exists");
        let result = run_once(jess, Size::S1, CollectorChoice::CgReset).unwrap();
        let cg = result.cg.as_ref().unwrap();
        assert!(cg.stats.resets > 0);
        assert!(result.msa.unwrap().cycles > 0);
        assert_eq!(cg.stats.resets, result.msa.unwrap().cycles);
    }

    #[test]
    fn repeated_runs_are_deterministic_in_object_counts() {
        let runs = run_repeated(db(), Size::S1, CollectorChoice::Cg, 2).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].objects_created(), runs[1].objects_created());
    }

    #[test]
    fn labels_are_distinct_and_parse_back() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = CollectorChoice::ALL
            .into_iter()
            .map(CollectorChoice::label)
            .collect();
        assert_eq!(labels.len(), 6);
        for choice in CollectorChoice::ALL {
            assert_eq!(CollectorChoice::parse(choice.label()), Some(choice));
        }
        assert_eq!(CollectorChoice::parse("shenandoah"), None);
    }

    #[test]
    fn replay_mode_reproduces_live_cg_statistics_exactly() {
        let live = run_once(db(), Size::S1, CollectorChoice::Cg).unwrap();
        let replayed = run_with_mode(db(), Size::S1, CollectorChoice::Cg, RunMode::Replay).unwrap();
        assert_eq!(
            live.cg.as_ref().unwrap().stats,
            replayed.cg.as_ref().unwrap().stats
        );
        assert_eq!(
            live.cg.as_ref().unwrap().breakdown,
            replayed.cg.as_ref().unwrap().breakdown
        );
        assert_eq!(live.objects_created(), replayed.objects_created());
        assert_eq!(live.live_at_exit, replayed.live_at_exit);
        // The whole VmStats must match — including the collector-accounting
        // fields, which come from the replay rather than the recording.
        assert_eq!(live.vm, replayed.vm);
        assert!(replayed.vm.collector_freed_objects > 0);
    }

    #[test]
    fn replay_mode_covers_the_baseline_collector() {
        let live = run_once(db(), Size::S1, CollectorChoice::Baseline).unwrap();
        let replayed =
            run_with_mode(db(), Size::S1, CollectorChoice::Baseline, RunMode::Replay).unwrap();
        // Without memory pressure neither run collects, so both see the full
        // allocated population live.
        assert_eq!(live.live_at_exit, replayed.live_at_exit);
        assert_eq!(live.msa.unwrap().cycles, replayed.msa.unwrap().cycles);
    }

    #[test]
    fn recycling_falls_back_to_live_execution() {
        assert!(!CollectorChoice::CgRecycle.supports_replay());
        let result =
            run_with_mode(db(), Size::S1, CollectorChoice::CgRecycle, RunMode::Replay).unwrap();
        assert!(result.cg.unwrap().stats.objects_recycled > 0);
    }

    #[test]
    fn trace_cache_records_each_workload_once() {
        let mut cache = TraceCache::new();
        assert!(cache.is_empty());
        let a = cache
            .for_choice(db(), Size::S1, CollectorChoice::Cg)
            .unwrap();
        let b = cache
            .for_choice(db(), Size::S1, CollectorChoice::Baseline)
            .unwrap();
        assert!(
            Rc::ptr_eq(&a, &b),
            "same (workload, size, gc_every) key must share"
        );
        assert_eq!(cache.len(), 1);
        // CgReset needs periodic Collect events, so it records separately.
        let c = cache
            .for_choice(db(), Size::S1, CollectorChoice::CgReset)
            .unwrap();
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        assert!(c.trace.stats().collects > 0);
        assert_eq!(a.trace.stats().collects, 0);
    }
}
