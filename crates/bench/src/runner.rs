//! Running one workload under one collector configuration.

use cg_baseline::{MarkSweep, MarkSweepStats, NoopCollector};
use cg_core::{CgConfig, CgStats, HybridCollector, HybridConfig, ObjectBreakdown};
use cg_heap::{HandleRepr, HeapConfig, HeapStats};
use cg_vm::{Vm, VmConfig, VmError, VmStats};
use cg_workloads::{Size, Workload};

/// Which collector configuration to run a workload under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectorChoice {
    /// No collection at all (overhead-isolation runs of §4.5).
    Noop,
    /// The traditional mark-sweep collector alone (the "JDK" baseline).
    Baseline,
    /// Contaminated GC with the §3.4 static optimisation (the preferred
    /// configuration), backed by mark-sweep for allocation failures.
    Cg,
    /// Contaminated GC without the §3.4 optimisation (the "no opt" column of
    /// Figure 4.1).
    CgNoOpt,
    /// Contaminated GC with §3.7 recycling enabled.
    CgRecycle,
    /// Contaminated GC + mark-sweep with structure resetting (§3.6), run
    /// with a periodic forced collection as in §4.7.
    CgReset,
}

impl CollectorChoice {
    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            CollectorChoice::Noop => "noop",
            CollectorChoice::Baseline => "jdk-msa",
            CollectorChoice::Cg => "cg",
            CollectorChoice::CgNoOpt => "cg-noopt",
            CollectorChoice::CgRecycle => "cg-recycle",
            CollectorChoice::CgReset => "cg-reset",
        }
    }
}

/// Contaminated-GC measurements extracted from a run, when the run used CG.
#[derive(Debug, Clone)]
pub struct CgSummary {
    /// The collector's raw statistics.
    pub stats: CgStats,
    /// Final object disposition (popped / static / thread-shared).
    pub breakdown: ObjectBreakdown,
}

/// The uniform result of one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub workload: &'static str,
    /// Problem size.
    pub size: Size,
    /// Collector configuration.
    pub collector: CollectorChoice,
    /// Wall-clock seconds inside `Vm::run`.
    pub elapsed_seconds: f64,
    /// Interpreter statistics.
    pub vm: VmStats,
    /// Heap statistics.
    pub heap: HeapStats,
    /// Objects still live when the program ended.
    pub live_at_exit: usize,
    /// CG measurements (None for the baseline and no-op runs).
    pub cg: Option<CgSummary>,
    /// Mark-sweep statistics (the baseline's own, or the hybrid's backstop).
    pub msa: Option<MarkSweepStats>,
}

impl RunResult {
    /// Objects the program allocated (instances + arrays).
    pub fn objects_created(&self) -> u64 {
        self.vm.objects_allocated + self.vm.arrays_allocated
    }

    /// Percentage of created objects CG collected (0 for non-CG runs).
    pub fn collectable_percent(&self) -> f64 {
        self.cg.as_ref().map(|c| c.stats.collectable_percent()).unwrap_or(0.0)
    }
}

/// The heap sizing used by every experiment run: a 12 MiB object space, so
/// that the small problem sizes fit comfortably (the baseline hardly ever
/// collects, as in the paper's small runs) while the large problem sizes
/// overflow it many times over and retain sizable live structures (so the
/// baseline's repeated marking cost shows up, as in the paper's large runs).
pub fn experiment_heap() -> HeapConfig {
    let mut config = HeapConfig::with_object_space(12 * 1024 * 1024, HandleRepr::CgWide);
    // The large javac/jack runs keep roughly half a million objects live at
    // once; give the handle table room for them so the experiments measure
    // object-space behaviour rather than handle-table exhaustion.
    config.handle_space_bytes = 64 * 1024 * 1024;
    config
}

/// The VM configuration used by experiment runs.
pub fn experiment_vm_config(choice: CollectorChoice) -> VmConfig {
    let mut config = VmConfig::default().with_heap(experiment_heap());
    if choice == CollectorChoice::CgReset {
        // §4.7 forces a traditional collection every 100 000 JVM
        // instructions.  Our synthetic workloads are scaled down roughly 4×
        // relative to the real SPEC runs, so the interval is scaled down the
        // same way to produce a comparable number of collection cycles.
        config = config.with_gc_every(25_000);
    }
    config
}

/// Runs `workload` at `size` under the chosen collector and returns the
/// uniform result.
///
/// # Errors
///
/// Returns the underlying [`VmError`] if the run fails (out of memory with a
/// non-collecting configuration, for example).
pub fn run_once(workload: Workload, size: Size, choice: CollectorChoice) -> Result<RunResult, VmError> {
    let program = workload.program(size);
    let config = experiment_vm_config(choice);

    let base = RunResult {
        workload: workload.name(),
        size,
        collector: choice,
        elapsed_seconds: 0.0,
        vm: VmStats::default(),
        heap: HeapStats::default(),
        live_at_exit: 0,
        cg: None,
        msa: None,
    };

    match choice {
        CollectorChoice::Noop => {
            let mut vm = Vm::new(program, config, NoopCollector::new());
            let outcome = vm.run()?;
            Ok(RunResult {
                elapsed_seconds: outcome.elapsed_seconds,
                vm: outcome.stats,
                heap: outcome.heap,
                live_at_exit: outcome.live_at_exit,
                ..base
            })
        }
        CollectorChoice::Baseline => {
            let mut vm = Vm::new(program, config, MarkSweep::new());
            let outcome = vm.run()?;
            let msa = *vm.collector().stats();
            Ok(RunResult {
                elapsed_seconds: outcome.elapsed_seconds,
                vm: outcome.stats,
                heap: outcome.heap,
                live_at_exit: outcome.live_at_exit,
                msa: Some(msa),
                ..base
            })
        }
        CollectorChoice::Cg | CollectorChoice::CgNoOpt | CollectorChoice::CgRecycle | CollectorChoice::CgReset => {
            let cg_config = match choice {
                CollectorChoice::CgNoOpt => CgConfig::without_static_opt(),
                CollectorChoice::CgRecycle => CgConfig::with_recycling(),
                _ => CgConfig::preferred(),
            };
            let hybrid_config = HybridConfig {
                cg: CgConfig {
                    // The verification pass is for tests; experiment runs
                    // measure time, so it stays off.
                    verify_tainted: false,
                    ..cg_config
                },
                reset_on_collect: choice == CollectorChoice::CgReset,
            };
            let mut vm = Vm::new(program, config, HybridCollector::new(hybrid_config));
            let outcome = vm.run()?;
            let breakdown = vm.collector_mut().cg_mut().breakdown();
            let stats = vm.collector().cg().stats().clone();
            let msa = *vm.collector().msa_stats();
            Ok(RunResult {
                elapsed_seconds: outcome.elapsed_seconds,
                vm: outcome.stats,
                heap: outcome.heap,
                live_at_exit: outcome.live_at_exit,
                cg: Some(CgSummary { stats, breakdown }),
                msa: Some(msa),
                ..base
            })
        }
    }
}

/// Runs a workload `repetitions` times under the chosen collector and
/// returns every result (the timing figures average them, as the paper's
/// Appendix A does over five runs).
///
/// # Errors
///
/// Returns the first [`VmError`] encountered.
pub fn run_repeated(
    workload: Workload,
    size: Size,
    choice: CollectorChoice,
    repetitions: usize,
) -> Result<Vec<RunResult>, VmError> {
    (0..repetitions.max(1)).map(|_| run_once(workload, size, choice)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Workload {
        Workload::by_name("db").expect("db exists")
    }

    #[test]
    fn baseline_and_cg_allocate_the_same_objects() {
        let baseline = run_once(db(), Size::S1, CollectorChoice::Baseline).unwrap();
        let cg = run_once(db(), Size::S1, CollectorChoice::Cg).unwrap();
        assert_eq!(baseline.objects_created(), cg.objects_created());
        assert!(baseline.cg.is_none());
        assert!(cg.cg.is_some());
        assert!(cg.collectable_percent() > 0.0);
        assert_eq!(baseline.collectable_percent(), 0.0);
    }

    #[test]
    fn no_opt_collects_fewer_objects_than_preferred() {
        let with_opt = run_once(db(), Size::S1, CollectorChoice::Cg).unwrap();
        let no_opt = run_once(db(), Size::S1, CollectorChoice::CgNoOpt).unwrap();
        assert!(
            with_opt.collectable_percent() > no_opt.collectable_percent() + 5.0,
            "with {:.1}% vs without {:.1}%",
            with_opt.collectable_percent(),
            no_opt.collectable_percent()
        );
    }

    #[test]
    fn recycling_run_recycles_objects() {
        let result = run_once(db(), Size::S1, CollectorChoice::CgRecycle).unwrap();
        let cg = result.cg.as_ref().unwrap();
        assert!(cg.stats.objects_recycled > 0);
        assert_eq!(result.vm.recycled_allocations, cg.stats.objects_recycled);
    }

    #[test]
    fn reset_run_performs_resets() {
        // jess executes well over 25k instructions at size 1, so the
        // periodic traditional collections (and resets) must fire.
        let jess = Workload::by_name("jess").expect("jess exists");
        let result = run_once(jess, Size::S1, CollectorChoice::CgReset).unwrap();
        let cg = result.cg.as_ref().unwrap();
        assert!(cg.stats.resets > 0);
        assert!(result.msa.unwrap().cycles > 0);
        assert_eq!(cg.stats.resets, result.msa.unwrap().cycles);
    }

    #[test]
    fn repeated_runs_are_deterministic_in_object_counts() {
        let runs = run_repeated(db(), Size::S1, CollectorChoice::Cg, 2).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].objects_created(), runs[1].objects_created());
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = [
            CollectorChoice::Noop,
            CollectorChoice::Baseline,
            CollectorChoice::Cg,
            CollectorChoice::CgNoOpt,
            CollectorChoice::CgRecycle,
            CollectorChoice::CgReset,
        ]
        .into_iter()
        .map(CollectorChoice::label)
        .collect();
        assert_eq!(labels.len(), 6);
    }
}
