//! Reproduces Figure 4.11: resetting CG structures during periodic traditional collections (size 1).
//!
//! Flags: `--quick`, `--reps N`, `--no-medium`, `--no-large` (see `cg_bench::cli`).

fn main() {
    let (options, _) = cg_bench::parse_options(std::env::args().skip(1));
    let report = cg_bench::report_by_id("fig4_11", options);
    println!("{}", report.render_text());
}
