//! Reproduces every table and figure of the paper's evaluation in one run.
//!
//! Usage:
//!
//! ```text
//! repro_all [--quick] [--reps N] [--no-medium] [--no-large] [ids...]
//! ```
//!
//! With no ids, every experiment is run in paper order.  The rendered
//! reports are printed to stdout and also written to
//! `experiments_output.md` in the current directory so `EXPERIMENTS.md` can
//! be cross-checked against a fresh run.

use std::fs;
use std::io::Write as _;

fn main() {
    let (options, ids) = cg_bench::parse_options(std::env::args().skip(1));
    let ids: Vec<String> = if ids.is_empty() {
        cg_bench::REPORT_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };

    let mut rendered = String::new();
    rendered.push_str("# Contaminated GC — reproduced experiments\n\n");
    rendered.push_str(&format!(
        "Options: repetitions={}, medium={}, large={}\n\n",
        options.repetitions, options.include_medium, options.include_large
    ));

    for id in &ids {
        eprintln!("running {id} ...");
        let report = cg_bench::report_by_id(id, options);
        let text = report.render_text();
        println!("{text}");
        rendered.push_str(&text);
        rendered.push('\n');
    }

    let path = "experiments_output.md";
    match fs::File::create(path) {
        Ok(mut file) => {
            if let Err(e) = file.write_all(rendered.as_bytes()) {
                eprintln!("could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
        Err(e) => eprintln!("could not create {path}: {e}"),
    }
}
