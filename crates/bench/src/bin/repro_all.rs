//! Reproduces every table and figure of the paper's evaluation in one run.
//!
//! Usage:
//!
//! ```text
//! repro_all [--quick] [--reps N] [--no-medium] [--no-large] [ids...]
//! ```
//!
//! With no ids, every experiment is run in paper order.  The rendered
//! reports are printed to stdout and also written to
//! `experiments_output.md` in the current directory so `EXPERIMENTS.md` can
//! be cross-checked against a fresh run.  The same reports — every table
//! cell and every paper-vs-measured record — are additionally written as
//! machine-readable `BENCH_repro.json`, so the reproduction's perf and
//! accuracy trajectory can be tracked mechanically from run to run.

use std::fs;
use std::io::Write as _;

use cg_stats::Json;

fn main() {
    let (options, ids) = cg_bench::parse_options(std::env::args().skip(1));
    let ids: Vec<String> = if ids.is_empty() {
        cg_bench::REPORT_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };

    let mut rendered = String::new();
    rendered.push_str("# Contaminated GC — reproduced experiments\n\n");
    rendered.push_str(&format!(
        "Options: repetitions={}, medium={}, large={}\n\n",
        options.repetitions, options.include_medium, options.include_large
    ));
    let mut report_json = Vec::new();

    for id in &ids {
        eprintln!("running {id} ...");
        let report = cg_bench::report_by_id(id, options);
        let text = report.render_text();
        println!("{text}");
        rendered.push_str(&text);
        rendered.push('\n');
        report_json.push(report.to_json_value());
    }

    let path = "experiments_output.md";
    match fs::File::create(path) {
        Ok(mut file) => {
            if let Err(e) = file.write_all(rendered.as_bytes()) {
                eprintln!("could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
        Err(e) => eprintln!("could not create {path}: {e}"),
    }

    let json = Json::obj([
        (
            "options",
            Json::obj([
                ("repetitions", Json::Num(options.repetitions as f64)),
                ("include_medium", Json::Bool(options.include_medium)),
                ("include_large", Json::Bool(options.include_large)),
            ]),
        ),
        ("reports", Json::Arr(report_json)),
    ]);
    let json_path = "BENCH_repro.json";
    match fs::write(json_path, json.render_pretty()) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
