//! Reproduces Figure 4.9: object counts and collectable percentages on the large (size 100) runs.
//!
//! Flags: `--quick`, `--reps N`, `--no-medium`, `--no-large` (see `cg_bench::cli`).

fn main() {
    let (options, _) = cg_bench::parse_options(std::env::args().skip(1));
    let report = cg_bench::report_by_id("fig4_9", options);
    println!("{}", report.render_text());
}
