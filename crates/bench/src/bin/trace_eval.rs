//! The trace-driven runner: interpret each workload once, evaluate every
//! collector by replay.
//!
//! Usage:
//!
//! ```text
//! trace_eval [workload...] [--size 1|10|100] [--collectors cg,jdk-msa,...]
//! ```
//!
//! With no workloads, all eight SPEC-like benchmarks run.  For each workload
//! the event stream is recorded under a passive collector (one
//! interpretation), then each requested collector is driven from the
//! recording — no re-interpretation.  The table reports each collector's
//! headline statistics plus the recording and replay times, and the raw
//! numbers are written to `BENCH_trace_eval.json`.

use cg_bench::{replay_run, TraceCache};
use cg_stats::{Cell, Json, Table};
use cg_workloads::Workload;

fn main() {
    let options = cg_bench::parse_trace_eval(std::env::args().skip(1));
    let workloads: Vec<Workload> = if options.workloads.is_empty() {
        Workload::all()
    } else {
        options
            .workloads
            .iter()
            .map(|name| {
                Workload::by_name(name).unwrap_or_else(|| panic!("unknown workload '{name}'"))
            })
            .collect()
    };

    // Disk-backed: recordings persist under target/trace-cache/, so a
    // repeated trace_eval run skips re-interpretation entirely.
    let mut cache = TraceCache::with_disk_cache();
    let mut table = Table::new(
        format!("Trace-driven evaluation (size {})", options.size),
        &[
            "benchmark",
            "collector",
            "objects",
            "collectable",
            "GC cycles",
            "trace events",
            "replay (s)",
        ],
    );
    let mut json_runs = Vec::new();

    for workload in &workloads {
        for &choice in &options.collectors {
            if !choice.supports_replay() {
                eprintln!("skipping {}: recycling runs must be live", choice.label());
                continue;
            }
            let recorded = cache
                .for_choice(*workload, options.size, choice)
                .unwrap_or_else(|e| panic!("{}: recording failed: {e}", workload.name()));
            let result = replay_run(&recorded, choice)
                .unwrap_or_else(|e| panic!("{}: replay failed: {e}", workload.name()));
            table.push_row(vec![
                Cell::text(workload.name()),
                Cell::text(choice.label()),
                Cell::count(result.objects_created()),
                Cell::percent(result.collectable_percent()),
                Cell::count(result.msa.map(|m| m.cycles).unwrap_or(0)),
                Cell::count(recorded.trace.len() as u64),
                Cell::seconds(result.elapsed_seconds),
            ]);
            json_runs.push(Json::obj([
                ("workload", Json::Str(workload.name().to_string())),
                ("size", Json::Num(options.size.spec_number() as f64)),
                ("collector", Json::Str(choice.label().to_string())),
                (
                    "objects_created",
                    Json::Num(result.objects_created() as f64),
                ),
                (
                    "collectable_percent",
                    Json::Num(result.collectable_percent()),
                ),
                ("trace_events", Json::Num(recorded.trace.len() as f64)),
                ("replay_seconds", Json::Num(result.elapsed_seconds)),
                ("live_at_exit", Json::Num(result.live_at_exit as f64)),
            ]));
        }
    }

    println!("{}", table.render_text());
    println!(
        "{} workload recording(s) served {} collector evaluation(s)",
        cache.len(),
        json_runs.len()
    );

    let json = Json::obj([("runs", Json::Arr(json_runs))]);
    let path = "BENCH_trace_eval.json";
    match std::fs::write(path, json.render_pretty()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
