//! Reproduces Appendix A.5-A.7: raw per-repetition timings behind the timing figures.
//!
//! Flags: `--quick`, `--reps N`, `--no-medium`, `--no-large` (see `cg_bench::cli`).

fn main() {
    let (options, _) = cg_bench::parse_options(std::env::args().skip(1));
    let report = cg_bench::report_by_id("figA_5_7", options);
    println!("{}", report.render_text());
}
