//! Reproduces Figure 4.10: speedup of CG over the traditional collector across problem sizes.
//!
//! Flags: `--quick`, `--reps N`, `--no-medium`, `--no-large` (see `cg_bench::cli`).

fn main() {
    let (options, _) = cg_bench::parse_options(std::env::args().skip(1));
    let report = cg_bench::report_by_id("fig4_10", options);
    println!("{}", report.render_text());
}
