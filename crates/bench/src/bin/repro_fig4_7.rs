//! Reproduces Figure 4.7: timing of CG vs the traditional collector at size 1.
//!
//! Flags: `--quick`, `--reps N`, `--no-medium`, `--no-large` (see `cg_bench::cli`).

fn main() {
    let (options, _) = cg_bench::parse_options(std::env::args().skip(1));
    let report = cg_bench::report_by_id("fig4_7", options);
    println!("{}", report.render_text());
}
