//! Reproduces Appendix A.1: share of static objects that are static because of thread sharing (size 1).
//!
//! Flags: `--quick`, `--reps N`, `--no-medium`, `--no-large` (see `cg_bench::cli`).

fn main() {
    let (options, _) = cg_bench::parse_options(std::env::args().skip(1));
    let report = cg_bench::report_by_id("figA_1", options);
    println!("{}", report.render_text());
}
