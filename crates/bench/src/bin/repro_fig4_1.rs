//! Reproduces Figure 4.1: percentage of objects collectable by CG, with and without the static optimisation (size 1).
//!
//! Flags: `--quick`, `--reps N`, `--no-medium`, `--no-large` (see `cg_bench::cli`).

fn main() {
    let (options, _) = cg_bench::parse_options(std::env::args().skip(1));
    let report = cg_bench::report_by_id("fig4_1", options);
    println!("{}", report.render_text());
}
