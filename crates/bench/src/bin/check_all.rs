//! `cg-bench` — the consolidated baseline gate.
//!
//! ```text
//! cg-bench --check-all [--baselines DIR]
//! ```
//!
//! Discovers every committed `<family>.json` under the baselines
//! directory (default: this crate's `baselines/`) and replays each bench
//! family with `cargo bench -p cg-bench --bench <family> -- --check
//! <baseline>`, so adding a baseline file is all it takes to put a new
//! bench under the CI gate.  Per-family output is wrapped in GitHub
//! Actions `::group::` markers; the process exits non-zero if any family
//! fails its gate.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn usage() -> ! {
    eprintln!("usage: cg-bench --check-all [--baselines DIR]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut check_all = false;
    let mut baselines: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check-all" => check_all = true,
            "--baselines" => {
                baselines = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("cg-bench: --baselines wants a directory");
                    usage();
                })));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("cg-bench: unknown flag '{other}'");
                usage();
            }
        }
    }
    if !check_all {
        usage();
    }
    // The compiled-in manifest dir makes the default work from any cwd —
    // CI invokes this from the repository root.
    let dir =
        baselines.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines"));
    let found = cg_bench::discover_baselines(&dir);
    if found.is_empty() {
        eprintln!("cg-bench: no baselines under {}", dir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "cg-bench: {} baseline-gated famil{} under {}",
        found.len(),
        if found.len() == 1 { "y" } else { "ies" },
        dir.display()
    );
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut failed = Vec::new();
    for (family, baseline) in &found {
        println!("::group::{family} (--check {})", baseline.display());
        let status = Command::new(&cargo)
            .args(["bench", "-p", "cg-bench", "--bench", family, "--"])
            .arg("--check")
            .arg(baseline)
            .status();
        let ok = matches!(&status, Ok(s) if s.success());
        if !ok {
            match status {
                Ok(s) => eprintln!("cg-bench: {family} gate failed ({s})"),
                Err(e) => eprintln!("cg-bench: could not run {family}: {e}"),
            }
            failed.push(family.clone());
        }
        println!("::endgroup::");
    }
    if failed.is_empty() {
        println!(
            "cg-bench: all {} families within their baselines",
            found.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("cg-bench: {} famil{} FAILED: {failed:?}", failed.len(), {
            if failed.len() == 1 {
                "y"
            } else {
                "ies"
            }
        });
        ExitCode::FAILURE
    }
}
