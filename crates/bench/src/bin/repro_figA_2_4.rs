//! Reproduces Appendix A.2-A.4: popped / static / thread-shared object breakdown at sizes 1, 10 and 100.
//!
//! Flags: `--quick`, `--reps N`, `--no-medium`, `--no-large` (see `cg_bench::cli`).

fn main() {
    let (options, _) = cg_bench::parse_options(std::env::args().skip(1));
    let report = cg_bench::report_by_id("figA_2_4", options);
    println!("{}", report.render_text());
}
