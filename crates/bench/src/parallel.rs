//! Re-exports of the parallel sharded evaluator, which lives in
//! [`cg_trace::eval`] since the serving daemon started routing sessions
//! through it.
//!
//! The evaluator was born in this crate as bench-only machinery; the
//! benches, the `shard_equivalence` suite and downstream callers still
//! import it from here, so this module stays as a façade.  The
//! integration-grade tests that need bench-side helpers (the experiment
//! heap, quiet panic hooks from `cg-fuzz`) also remain here rather than
//! moving into `cg-trace`, whose dev-dependencies don't include them.

pub use cg_trace::eval::{
    parallel_eval, parallel_eval_governed, parallel_eval_streaming,
    parallel_eval_streaming_governed, ParallelError, ParallelOutcome,
};

#[cfg(test)]
mod tests {
    use super::*;
    use cg_core::{CgConfig, ContaminatedGc};
    use cg_trace::{partition, record, replay, EvalError};
    use cg_vm::{NoopCollector, VmConfig};
    use cg_workloads::{Size, Workload};

    /// A panic in one shard must come back as a structured
    /// [`EvalError::ShardPanicked`] report (the abort guard releases the
    /// siblings during unwinding) instead of deadlocking the evaluation or
    /// re-raising the panic in the caller.
    #[test]
    fn shard_panic_reports_instead_of_hanging() {
        use cg_trace::Trace;
        use cg_vm::{
            AllocKind, ClassId, FrameId, FrameInfo, GcEvent, Handle, MethodId, RootSet, ThreadId,
        };
        let frame = |id: u64, thread: u32| FrameInfo {
            id: FrameId::new(id),
            depth: 1,
            thread: ThreadId::new(thread),
            method: MethodId::new(0),
        };
        let alloc = |handle: u32, thread: u32| GcEvent::Allocate {
            handle: Handle::from_index(handle),
            class: ClassId::new(0),
            kind: AllocKind::Instance { field_count: 1 },
            frame: frame(1 + thread as u64, thread),
            recycled: false,
        };
        // An ill-formed stream: thread 1 stores thread 0's object without
        // the preceding cross-thread ObjectAccess, so shard 1 panics on the
        // §3.3 invariant — while shard 0's ProgramEnd barrier waits on it.
        let mut trace = Trace::new("ill-formed");
        trace.push(alloc(0, 0));
        trace.push(alloc(1, 1));
        trace.push(GcEvent::ReferenceStore {
            source: Handle::from_index(1),
            target: Handle::from_index(0),
            frame: frame(2, 1),
        });
        trace.push(GcEvent::ProgramEnd {
            roots: Box::new(RootSet::default()),
        });
        let pt = partition(&trace, 2);
        let _quiet = cg_fuzz::QuietPanics::install();
        let err = parallel_eval(&pt, cg_heap::HeapConfig::small(), CgConfig::default())
            .expect_err("the ill-formed stream must fail");
        match &err {
            ParallelError::Shards { shard_errors, .. } => {
                assert_eq!(shard_errors.len(), 1, "exactly one shard fails: {err}");
                let (shard, eval) = &shard_errors[0];
                assert_eq!(*shard, 1, "the storing shard is the one that panics");
                match eval {
                    EvalError::ShardPanicked { shard: 1, message } => {
                        assert!(
                            message.contains("pre-escalation invariant"),
                            "panic message survives: {message}"
                        );
                    }
                    other => panic!("expected ShardPanicked, got {other}"),
                }
            }
            ParallelError::Rejected(other) => panic!("expected shard failures, got {other}"),
        }
    }

    #[test]
    fn parallel_eval_matches_single_threaded_replay_on_mtrt() {
        let workload = Workload::by_name("mtrt").expect("mtrt exists");
        let config = VmConfig::default().with_heap(crate::runner::experiment_heap());
        let (trace, ..) = record(
            "mtrt/1",
            workload.program(Size::S1),
            config,
            NoopCollector::new(),
        )
        .expect("recording succeeds");
        let cg_config = CgConfig {
            verify_tainted: false,
            ..CgConfig::preferred()
        };
        let single = replay(&trace, config.heap, ContaminatedGc::with_config(cg_config))
            .expect("single replay succeeds");
        let mut single_collector = single.collector;
        let single_breakdown = single_collector.breakdown();
        for shards in [1, 2, 4] {
            let pt = partition(&trace, shards);
            let outcome = parallel_eval(&pt, config.heap, cg_config).expect("parallel succeeds");
            assert_eq!(outcome.stats, *single_collector.stats(), "{shards} shards");
            assert_eq!(outcome.breakdown, single_breakdown, "{shards} shards");
            assert_eq!(outcome.events_replayed, trace.len());
            assert_eq!(
                outcome.collector_freed_objects,
                single.outcome.collector_freed_objects
            );
            assert_eq!(outcome.live_at_exit, single.outcome.live_at_exit);
        }
    }
}
