//! The speed-normalised baseline regression gate shared by the bench
//! binaries (`gc_hot_path`, `shard_scaling`).
//!
//! A bench suite commits a `baselines/<name>.json` snapshot; CI re-runs the
//! suite with `--check <path>` and fails if any label shared with the
//! baseline regressed more than 2x.  Timings are normalised by an in-run
//! calibration loop (a fixed integer workload whose timing tracks the
//! host's single-core speed) before comparing, so a baseline committed from
//! one machine gates a CI runner of a different speed without false alarms.

use std::path::{Path, PathBuf};

use crate::microbench::BenchHarness;

/// Discovers every committed baseline under `dir`: each `<family>.json`
/// names the bench target its snapshot gates.  Sorted by family so
/// `cg-bench --check-all` runs (and logs) in a stable order.
///
/// # Panics
///
/// Panics if `dir` cannot be read — a missing baselines directory means
/// the gate would silently check nothing.
pub fn discover_baselines(dir: &Path) -> Vec<(String, PathBuf)> {
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read baselines dir {}: {e}", dir.display()));
    let mut found: Vec<(String, PathBuf)> = entries
        .map(|e| e.expect("baselines dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .map(|p| {
            let family = p
                .file_stem()
                .expect("baseline file has a stem")
                .to_string_lossy()
                .into_owned();
            (family, p)
        })
        .collect();
    found.sort();
    found
}

/// Parses a `--check <path>` pair out of the bench binary's arguments.
pub fn parse_check_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    while let Some(arg) = args.next() {
        if arg == "--check" {
            path = args.next();
        }
    }
    path
}

/// Compares `harness` against the committed baseline at `path`, exiting the
/// process with status 1 if any shared label is more than 2x slower
/// (speed-normalised through `calibration_label` when both sides have it).
///
/// # Panics
///
/// Panics if the baseline file cannot be read or parsed.
pub fn check_against_baseline(harness: &BenchHarness, path: &str, calibration_label: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let json = cg_stats::Json::parse(&text)
        .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
    let results = json
        .get("results")
        .and_then(cg_stats::Json::as_arr)
        .expect("baseline has a results array");
    let baseline_ns_of = |label: &str| {
        results
            .iter()
            .find(|e| e.get("label").and_then(cg_stats::Json::as_str) == Some(label))
            .and_then(|e| e.get("ns_per_iter").and_then(cg_stats::Json::as_f64))
    };
    // Machine-speed normalisation: ratios to the calibration loop.
    let (current_unit, baseline_unit, normalised) = match (
        harness.ns_of(calibration_label),
        baseline_ns_of(calibration_label),
    ) {
        (Some(current), Some(baseline)) if current > 0.0 && baseline > 0.0 => {
            (current, baseline, true)
        }
        _ => (1.0, 1.0, false),
    };
    let mut failures = Vec::new();
    let mut compared = 0;
    for entry in results {
        let label = entry
            .get("label")
            .and_then(cg_stats::Json::as_str)
            .expect("baseline entry has a label");
        if label == calibration_label {
            continue;
        }
        let baseline_ns = entry
            .get("ns_per_iter")
            .and_then(cg_stats::Json::as_f64)
            .expect("baseline entry has ns_per_iter");
        let Some(current_ns) = harness.ns_of(label) else {
            continue; // Labels may come and go; only shared ones gate.
        };
        compared += 1;
        let ratio = (current_ns / current_unit) / (baseline_ns / baseline_unit);
        if ratio > 2.0 {
            failures.push(format!(
                "{label}: {current_ns:.1} ns/iter vs baseline {baseline_ns:.1} \
                 ({ratio:.1}x speed-normalised)"
            ));
        }
    }
    if compared == 0 {
        eprintln!("baseline check: no shared labels between run and {path}");
        std::process::exit(1);
    }
    let mode = if normalised {
        "speed-normalised"
    } else {
        "raw ns (no calibration label in baseline)"
    };
    if failures.is_empty() {
        eprintln!("baseline check: {compared} labels within 2x of {path} ({mode})");
    } else {
        eprintln!("baseline check FAILED against {path} ({mode}):");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_finds_every_committed_baseline_sorted() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines");
        let found = discover_baselines(&dir);
        let families: Vec<&str> = found.iter().map(|(f, _)| f.as_str()).collect();
        let mut sorted = families.clone();
        sorted.sort_unstable();
        assert_eq!(families, sorted, "stable run order");
        for family in [
            "fuzz",
            "gc_hot_path",
            "interp_dispatch",
            "serving_shards",
            "shard_scaling",
            "static_domain",
        ] {
            assert!(
                families.contains(&family),
                "missing committed baseline for {family}: {families:?}"
            );
        }
        for (_, path) in &found {
            assert!(path.is_file());
        }
    }
}
