//! One function per table/figure of the paper's evaluation.
//!
//! Every function runs the required workload/collector configurations and
//! returns an [`ExperimentReport`] containing the paper-style table(s) plus
//! paper-vs-measured records.  The `repro_*` binaries print these reports;
//! `EXPERIMENTS.md` is generated from them.

use cg_stats::{percent, Cell, ExperimentRecord, ExperimentReport, RunTimings, Table};
use cg_workloads::{Size, Workload};

use crate::paper;
use crate::runner::{run_repeated, CollectorChoice, RunResult};

/// Options controlling how much work the experiment functions do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Timing repetitions per configuration (the paper uses 5).
    pub repetitions: usize,
    /// Include the size-10 ("medium") runs.
    pub include_medium: bool,
    /// Include the size-100 ("large") runs (the slowest part of the suite).
    pub include_large: bool,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            repetitions: 3,
            include_medium: true,
            include_large: true,
        }
    }
}

impl ExperimentOptions {
    /// A quick configuration for smoke tests: size 1 only, one repetition.
    pub fn quick() -> Self {
        Self {
            repetitions: 1,
            include_medium: false,
            include_large: false,
        }
    }

    /// The sizes selected by these options.
    pub fn sizes(&self) -> Vec<Size> {
        let mut sizes = vec![Size::S1];
        if self.include_medium {
            sizes.push(Size::S10);
        }
        if self.include_large {
            sizes.push(Size::S100);
        }
        sizes
    }
}

fn workloads() -> Vec<Workload> {
    Workload::all()
}

fn cg_run(workload: Workload, size: Size, choice: CollectorChoice) -> RunResult {
    // Stats experiments honour the process-wide run mode (`repro_all
    // --streaming` drives them from persisted `.cgt` traces to prove stats
    // parity with live interpretation); timing experiments always call
    // `run_once`/`run_repeated` directly and stay live.
    crate::runner::run_with_mode(workload, size, choice, crate::runner::experiment_run_mode())
        .unwrap_or_else(|e| {
            panic!(
                "{} (size {size}, {:?}) failed: {e}",
                workload.name(),
                choice
            )
        })
}

// ----------------------------------------------------------------------
// Figure 4.1 — collectable objects, with and without the §3.4 optimisation
// ----------------------------------------------------------------------

/// Figure 4.1: percentage of objects collectable by CG, without and with the
/// static optimisation, at SPEC size 1.
pub fn fig4_1() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Fig 4.1",
        "Percentage of objects collectable by CG, without and with the §3.4 optimisation (size 1)",
    );
    let mut table = Table::new(
        "Figure 4.1 — collectable objects (size 1)",
        &[
            "benchmark",
            "objects created",
            "collectable (no opt)",
            "collectable (with opt)",
        ],
    );
    for workload in workloads() {
        let with_opt = cg_run(workload, Size::S1, CollectorChoice::Cg);
        let no_opt = cg_run(workload, Size::S1, CollectorChoice::CgNoOpt);
        table.push_row(vec![
            Cell::text(workload.name()),
            Cell::count(with_opt.objects_created()),
            Cell::percent(no_opt.collectable_percent()),
            Cell::percent(with_opt.collectable_percent()),
        ]);
        if let Some((_, _, paper_noopt, paper_opt)) = paper::FIG4_1
            .iter()
            .copied()
            .find(|(n, ..)| *n == workload.name())
        {
            report.add_record(ExperimentRecord::with_paper(
                "Fig 4.1",
                format!("{} % collectable (with opt)", workload.name()),
                paper_opt,
                with_opt.collectable_percent(),
            ));
            report.add_record(ExperimentRecord::with_paper(
                "Fig 4.1",
                format!("{} % collectable (no opt)", workload.name()),
                paper_noopt,
                no_opt.collectable_percent(),
            ));
        }
    }
    report.add_table(table);
    report
}

// ----------------------------------------------------------------------
// Figures 4.2–4.4 — static / thread-shared / collectable shares by size
// ----------------------------------------------------------------------

/// Figures 4.2–4.4: per benchmark and problem size, the percentage of
/// objects that end up collectable, static, and thread-shared.
pub fn fig4_2_4(options: ExperimentOptions) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Fig 4.2-4.4",
        "Share of objects collectable vs static vs thread-shared, by problem size",
    );
    for size in options.sizes() {
        let mut table = Table::new(
            format!(
                "Figure 4.{} — object disposition (size {size})",
                match size {
                    Size::S1 => 2,
                    Size::S10 => 3,
                    Size::S100 => 4,
                }
            ),
            &[
                "benchmark",
                "objects",
                "collectable %",
                "static %",
                "thread-shared %",
            ],
        );
        for workload in workloads() {
            let run = cg_run(workload, size, CollectorChoice::Cg);
            let cg = run.cg.as_ref().expect("cg run");
            let total = cg.breakdown.total().max(1);
            table.push_row(vec![
                Cell::text(workload.name()),
                Cell::count(run.objects_created()),
                Cell::percent(percent(cg.breakdown.popped, total)),
                Cell::percent(percent(cg.breakdown.static_objects, total)),
                Cell::percent(percent(cg.breakdown.thread_shared, total)),
            ]);
            if size == Size::S1 && workload.name() == "javac" {
                report.add_record(
                    ExperimentRecord::with_paper(
                        "Fig 4.2",
                        "javac % thread-shared (size 1)",
                        percent(14_255, 26_111),
                        percent(cg.breakdown.thread_shared, total),
                    )
                    .note("javac's class-loader thread dominates the small run"),
                );
            }
        }
        report.add_table(table);
    }
    report
}

// ----------------------------------------------------------------------
// Figure 4.5 — distribution of equilive block sizes
// ----------------------------------------------------------------------

/// Figure 4.5: distribution of collected block sizes and the percentage of
/// collectable objects in singleton (exact) blocks, at size 1.
pub fn fig4_5() -> ExperimentReport {
    let mut report =
        ExperimentReport::new("Fig 4.5", "Distribution of equilive block sizes (size 1)");
    let mut table = Table::new(
        "Figure 4.5 — block sizes at collection (size 1)",
        &[
            "benchmark",
            "collectable",
            "1",
            "2",
            "3",
            "4",
            "5",
            "6-10",
            ">10",
            "percent exact",
        ],
    );
    for workload in workloads() {
        let run = cg_run(workload, Size::S1, CollectorChoice::Cg);
        let cg = run.cg.as_ref().expect("cg run");
        let h = &cg.stats.block_sizes;
        let exact_percent = percent(
            cg.stats.objects_collected_exactly,
            cg.stats.objects_collected,
        );
        table.push_row(vec![
            Cell::text(workload.name()),
            Cell::count(cg.stats.objects_collected),
            Cell::count(h.bucket_count(0)),
            Cell::count(h.bucket_count(1)),
            Cell::count(h.bucket_count(2)),
            Cell::count(h.bucket_count(3)),
            Cell::count(h.bucket_count(4)),
            Cell::count(h.bucket_count(5)),
            Cell::count(h.overflow()),
            Cell::percent(exact_percent),
        ]);
        if let Some(paper_exact) = paper::lookup(&paper::FIG4_5_PERCENT_EXACT, workload.name()) {
            report.add_record(ExperimentRecord::with_paper(
                "Fig 4.5",
                format!("{} % exact", workload.name()),
                paper_exact,
                exact_percent,
            ));
        }
    }
    report.add_table(table);
    report
}

// ----------------------------------------------------------------------
// Figure 4.6 — age at death
// ----------------------------------------------------------------------

/// Figure 4.6: frame distance between an object's birth and the frame whose
/// pop collects it, at size 1.
pub fn fig4_6() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Fig 4.6",
        "Age at death of collected objects, in frames (size 1)",
    );
    let mut table = Table::new(
        "Figure 4.6 — distance from birth to death frame (size 1)",
        &["benchmark", "0", "1", "2", "3", "4", "5", ">5"],
    );
    for workload in workloads() {
        let run = cg_run(workload, Size::S1, CollectorChoice::Cg);
        let cg = run.cg.as_ref().expect("cg run");
        let h = &cg.stats.age_at_death;
        table.push_row(vec![
            Cell::text(workload.name()),
            Cell::count(h.bucket_count(0)),
            Cell::count(h.bucket_count(1)),
            Cell::count(h.bucket_count(2)),
            Cell::count(h.bucket_count(3)),
            Cell::count(h.bucket_count(4)),
            Cell::count(h.bucket_count(5)),
            Cell::count(h.overflow()),
        ]);
        if workload.name() == "raytrace" {
            let total = h.total().max(1);
            report.add_record(
                ExperimentRecord::with_paper(
                    "Fig 4.6",
                    "raytrace % dying >5 frames from birth",
                    percent(152_133, 272_316),
                    percent(h.overflow(), total),
                )
                .note("deep shading recursion carries results far from their birth frame"),
            );
        }
        if workload.name() == "jack" {
            let total = h.total().max(1);
            report.add_record(
                ExperimentRecord::with_paper(
                    "Fig 4.6",
                    "jack % dying within 1 frame of birth",
                    percent(63_230 + 263_574, 349_936),
                    percent(h.bucket_count(0) + h.bucket_count(1), total),
                )
                .note("token temporaries die almost immediately"),
            );
        }
    }
    report.add_table(table);
    report
}

// ----------------------------------------------------------------------
// Figures 4.7 / 4.8 / 4.10 / A.5–A.7 — timing
// ----------------------------------------------------------------------

/// Timing of one benchmark under CG and under the baseline, averaged over
/// repetitions.
struct TimingRow {
    benchmark: &'static str,
    cg: RunTimings,
    jdk: RunTimings,
}

fn time_benchmarks(size: Size, repetitions: usize) -> Vec<TimingRow> {
    workloads()
        .into_iter()
        .map(|workload| {
            let cg_runs = run_repeated(workload, size, CollectorChoice::Cg, repetitions)
                .unwrap_or_else(|e| panic!("{} cg timing failed: {e}", workload.name()));
            let jdk_runs = run_repeated(workload, size, CollectorChoice::Baseline, repetitions)
                .unwrap_or_else(|e| panic!("{} baseline timing failed: {e}", workload.name()));
            let mut cg = RunTimings::new(format!("{}/cg", workload.name()));
            let mut jdk = RunTimings::new(format!("{}/jdk", workload.name()));
            for run in &cg_runs {
                cg.push_seconds(run.elapsed_seconds);
            }
            for run in &jdk_runs {
                jdk.push_seconds(run.elapsed_seconds);
            }
            TimingRow {
                benchmark: workload.name(),
                cg,
                jdk,
            }
        })
        .collect()
}

fn timing_report(
    id: &str,
    description: &str,
    size: Size,
    repetitions: usize,
    paper_speedups: &[(&str, f64)],
) -> ExperimentReport {
    let mut report = ExperimentReport::new(id, description);
    let mut table = Table::new(
        format!("{id} — timing, size {size} ({repetitions} repetitions)"),
        &["benchmark", "CG (s)", "JDK (s)", "speedup"],
    );
    for row in time_benchmarks(size, repetitions) {
        let speedup = cg_stats::speedup(row.jdk.mean_seconds(), row.cg.mean_seconds());
        table.push_row(vec![
            Cell::text(row.benchmark),
            Cell::seconds(row.cg.mean_seconds()),
            Cell::seconds(row.jdk.mean_seconds()),
            Cell::ratio(speedup),
        ]);
        if let Some(paper_speedup) = paper::lookup(paper_speedups, row.benchmark) {
            report.add_record(
                ExperimentRecord::with_paper(
                    id,
                    format!("{} speedup (size {size})", row.benchmark),
                    paper_speedup,
                    speedup,
                )
                .note(
                    "ratios of wall-clock time; absolute times are not comparable to 1999 hardware",
                ),
            );
        }
    }
    report.add_table(table);
    report
}

/// Figure 4.7: CG vs base-system timing at size 1.
pub fn fig4_7(options: ExperimentOptions) -> ExperimentReport {
    timing_report(
        "Fig 4.7",
        "Timing of CG vs the traditional collector, size 1",
        Size::S1,
        options.repetitions,
        &paper::FIG4_7_SPEEDUP,
    )
}

/// Figure 4.8: CG vs base-system timing at size 10.
pub fn fig4_8(options: ExperimentOptions) -> ExperimentReport {
    timing_report(
        "Fig 4.8",
        "Timing of CG vs the traditional collector, size 10",
        Size::S10,
        options.repetitions,
        &paper::FIG4_8_SPEEDUP,
    )
}

/// Figure 4.10: speedup of CG over the base system across all problem sizes.
pub fn fig4_10(options: ExperimentOptions) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Fig 4.10",
        "Speedup of CG over the traditional collector across problem sizes",
    );
    let mut table = Table::new(
        "Figure 4.10 — speedup by size",
        &["benchmark", "size 1", "size 10", "size 100"],
    );
    let sizes = options.sizes();
    let mut per_size: Vec<(Size, Vec<(String, f64)>)> = Vec::new();
    for &size in &sizes {
        let rows = time_benchmarks(size, options.repetitions);
        let speedups = rows
            .iter()
            .map(|row| {
                (
                    row.benchmark.to_string(),
                    cg_stats::speedup(row.jdk.mean_seconds(), row.cg.mean_seconds()),
                )
            })
            .collect();
        per_size.push((size, speedups));
    }
    for workload in workloads() {
        let mut cells = vec![Cell::text(workload.name())];
        for size in [Size::S1, Size::S10, Size::S100] {
            let value = per_size
                .iter()
                .find(|(s, _)| *s == size)
                .and_then(|(_, rows)| rows.iter().find(|(n, _)| n == workload.name()))
                .map(|(_, v)| *v);
            cells.push(value.map(Cell::ratio).unwrap_or(Cell::Missing));
        }
        table.push_row(cells);
        if sizes.contains(&Size::S100) {
            if let Some(paper_speedup) =
                paper::lookup(&paper::FIG4_10_LARGE_SPEEDUP, workload.name())
            {
                let measured = per_size
                    .iter()
                    .find(|(s, _)| *s == Size::S100)
                    .and_then(|(_, rows)| rows.iter().find(|(n, _)| n == workload.name()))
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
                report.add_record(
                    ExperimentRecord::with_paper(
                        "Fig 4.10",
                        format!("{} speedup (size 100)", workload.name()),
                        paper_speedup,
                        measured,
                    )
                    .note("allocation-heavy benchmarks should favour CG on large runs"),
                );
            }
        }
    }
    report.add_table(table);
    report
}

/// Appendix A.5–A.7: the raw per-repetition timings behind the timing
/// figures.
pub fn fig_a5_7(options: ExperimentOptions) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Fig A.5-A.7",
        "Raw per-repetition timings for CG and the traditional collector",
    );
    for size in options.sizes() {
        let mut table = Table::new(
            format!("Appendix A — raw timings, size {size}"),
            &["benchmark", "repetition", "CG (s)", "JDK (s)"],
        );
        for row in time_benchmarks(size, options.repetitions) {
            for (i, (cg, jdk)) in row.cg.seconds().iter().zip(row.jdk.seconds()).enumerate() {
                table.push_row(vec![
                    Cell::text(row.benchmark),
                    Cell::count(i as u64 + 1),
                    Cell::seconds(*cg),
                    Cell::seconds(*jdk),
                ]);
            }
        }
        report.add_table(table);
    }
    report
}

// ----------------------------------------------------------------------
// Figure 4.9 — large runs
// ----------------------------------------------------------------------

/// Figure 4.9: object counts and collectable percentages on the large
/// (size 100) runs.
pub fn fig4_9() -> ExperimentReport {
    let mut report = ExperimentReport::new("Fig 4.9", "SPEC benchmarks, large runs (size 100)");
    let mut table = Table::new(
        "Figure 4.9 — large runs",
        &[
            "benchmark",
            "objects created",
            "collectable (with opt)",
            "exactly collectable",
        ],
    );
    for workload in workloads() {
        let run = cg_run(workload, Size::S100, CollectorChoice::Cg);
        let cg = run.cg.as_ref().expect("cg run");
        table.push_row(vec![
            Cell::text(workload.name()),
            Cell::count(run.objects_created()),
            Cell::percent(cg.stats.collectable_percent()),
            Cell::percent(cg.stats.exactly_collectable_percent()),
        ]);
        if let Some((_, _, paper_collectable, _)) = paper::FIG4_9
            .iter()
            .copied()
            .find(|(n, ..)| *n == workload.name())
        {
            report.add_record(ExperimentRecord::with_paper(
                "Fig 4.9",
                format!("{} % collectable (size 100)", workload.name()),
                paper_collectable,
                cg.stats.collectable_percent(),
            ));
        }
    }
    report.add_table(table);
    report
}

// ----------------------------------------------------------------------
// Figure 4.11 — resetting during traditional collection
// ----------------------------------------------------------------------

/// Figure 4.11: the resetting experiment — run the traditional collector
/// every 100 000 instructions, resetting CG structures during its mark phase.
pub fn fig4_11() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Fig 4.11",
        "Resetting CG structures during traditional collection (periodic forced MSA, size 1)",
    );
    let mut table = Table::new(
        "Figure 4.11 — resetting results (size 1)",
        &["benchmark", "collected by MSA", "less live", "GC cycles"],
    );
    for workload in workloads() {
        let run = cg_run(workload, Size::S1, CollectorChoice::CgReset);
        let cg = run.cg.as_ref().expect("cg run");
        let msa = run.msa.expect("hybrid run has MSA stats");
        table.push_row(vec![
            Cell::text(workload.name()),
            Cell::count(cg.stats.reset_collected_by_msa),
            Cell::count(cg.stats.reset_less_live),
            Cell::count(msa.cycles),
        ]);
        report.add_record(ExperimentRecord::measured_only(
            "Fig 4.11",
            format!("{} objects collected by MSA", workload.name()),
            cg.stats.reset_collected_by_msa as f64,
        ));
    }
    report.add_table(table);
    report
}

// ----------------------------------------------------------------------
// Figures 4.12 / 4.13 — recycling
// ----------------------------------------------------------------------

/// Figure 4.12: timing of CG with object recycling vs plain CG, at size 1.
pub fn fig4_12(options: ExperimentOptions) -> ExperimentReport {
    let mut report = ExperimentReport::new("Fig 4.12", "Recycle timing, small runs (size 1)");
    let mut table = Table::new(
        "Figure 4.12 — recycling timing (size 1)",
        &["benchmark", "CG (s)", "CG + recycling (s)", "speedup"],
    );
    for workload in workloads() {
        let plain: Vec<RunResult> =
            run_repeated(workload, Size::S1, CollectorChoice::Cg, options.repetitions)
                .expect("cg run");
        let recycled: Vec<RunResult> = run_repeated(
            workload,
            Size::S1,
            CollectorChoice::CgRecycle,
            options.repetitions,
        )
        .expect("recycle run");
        let plain_mean = plain.iter().map(|r| r.elapsed_seconds).sum::<f64>() / plain.len() as f64;
        let recycled_mean =
            recycled.iter().map(|r| r.elapsed_seconds).sum::<f64>() / recycled.len() as f64;
        let speedup = cg_stats::speedup(plain_mean, recycled_mean);
        table.push_row(vec![
            Cell::text(workload.name()),
            Cell::seconds(plain_mean),
            Cell::seconds(recycled_mean),
            Cell::ratio(speedup),
        ]);
        if let Some(paper_speedup) = paper::lookup(&paper::FIG4_12_RECYCLE_SPEEDUP, workload.name())
        {
            report.add_record(ExperimentRecord::with_paper(
                "Fig 4.12",
                format!("{} recycling speedup", workload.name()),
                paper_speedup,
                speedup,
            ));
        }
    }
    report.add_table(table);
    report
}

/// Figure 4.13: how many objects the recycling allocator reused, at size 1.
pub fn fig4_13() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Fig 4.13",
        "Number of objects recycled, small runs (size 1)",
    );
    let mut table = Table::new(
        "Figure 4.13 — objects recycled (size 1)",
        &["benchmark", "objects recycled", "percent of total"],
    );
    for workload in workloads() {
        let run = cg_run(workload, Size::S1, CollectorChoice::CgRecycle);
        let cg = run.cg.as_ref().expect("cg run");
        let recycled_percent = cg.stats.recycled_percent();
        table.push_row(vec![
            Cell::text(workload.name()),
            Cell::count(cg.stats.objects_recycled),
            Cell::percent(recycled_percent),
        ]);
        if let Some(paper_percent) =
            paper::lookup(&paper::FIG4_13_PERCENT_RECYCLED, workload.name())
        {
            report.add_record(ExperimentRecord::with_paper(
                "Fig 4.13",
                format!("{} % recycled", workload.name()),
                paper_percent,
                recycled_percent,
            ));
        }
    }
    report.add_table(table);
    report
}

// ----------------------------------------------------------------------
// Appendix A.1–A.4 — static and thread-shared breakdowns
// ----------------------------------------------------------------------

/// Appendix A.1: share of static objects that are static only because of
/// thread sharing, at size 1.
pub fn fig_a1() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Fig A.1",
        "Percentage of static objects that are static because of thread sharing (size 1)",
    );
    let mut table = Table::new(
        "Appendix A.1 — thread-shared share of static objects (size 1)",
        &["benchmark", "static objects", "% due to threads"],
    );
    for workload in workloads() {
        let run = cg_run(workload, Size::S1, CollectorChoice::Cg);
        let cg = run.cg.as_ref().expect("cg run");
        let static_total = cg.breakdown.static_objects + cg.breakdown.thread_shared;
        let thread_percent = percent(cg.breakdown.thread_shared, static_total);
        table.push_row(vec![
            Cell::text(workload.name()),
            Cell::count(static_total),
            Cell::percent(thread_percent),
        ]);
        if workload.name() == "javac" {
            report.add_record(ExperimentRecord::with_paper(
                "Fig A.1",
                "javac % of static objects due to threads",
                72.0,
                thread_percent,
            ));
        }
    }
    report.add_table(table);
    report
}

/// Appendix A.2–A.4: the popped / static / thread-shared breakdown per size.
pub fn fig_a2_4(options: ExperimentOptions) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Fig A.2-A.4",
        "Object breakdown (popped / static / thread-shared) by problem size",
    );
    for size in options.sizes() {
        let mut table = Table::new(
            format!("Appendix A — object breakdown, size {size}"),
            &["benchmark", "popped", "static", "thread"],
        );
        for workload in workloads() {
            let run = cg_run(workload, size, CollectorChoice::Cg);
            let cg = run.cg.as_ref().expect("cg run");
            table.push_row(vec![
                Cell::text(workload.name()),
                Cell::count(cg.breakdown.popped),
                Cell::count(cg.breakdown.static_objects),
                Cell::count(cg.breakdown.thread_shared),
            ]);
            if size == Size::S1 {
                if let Some((_, popped, statics, _thread)) = paper::FIGA_2_BREAKDOWN_SMALL
                    .iter()
                    .copied()
                    .find(|(n, ..)| *n == workload.name())
                {
                    report.add_record(ExperimentRecord::with_paper(
                        "Fig A.2",
                        format!("{} popped share (size 1)", workload.name()),
                        percent(popped, popped + statics + _thread),
                        percent(cg.breakdown.popped, cg.breakdown.total().max(1)),
                    ));
                }
            }
        }
        report.add_table(table);
    }
    report
}

// ----------------------------------------------------------------------
// registry
// ----------------------------------------------------------------------

/// Identifiers accepted by [`report_by_id`] and the `repro_all` binary.
pub const REPORT_IDS: [&str; 14] = [
    "fig4_1", "fig4_2_4", "fig4_5", "fig4_6", "fig4_7", "fig4_8", "fig4_9", "fig4_10", "fig4_11",
    "fig4_12", "fig4_13", "figA_1", "figA_2_4", "figA_5_7",
];

/// Runs the experiment with the given identifier.
///
/// # Panics
///
/// Panics if `id` is not one of [`REPORT_IDS`].
pub fn report_by_id(id: &str, options: ExperimentOptions) -> ExperimentReport {
    match id {
        "fig4_1" => fig4_1(),
        "fig4_2_4" => fig4_2_4(options),
        "fig4_5" => fig4_5(),
        "fig4_6" => fig4_6(),
        "fig4_7" => fig4_7(options),
        "fig4_8" => fig4_8(options),
        "fig4_9" => fig4_9(),
        "fig4_10" => fig4_10(options),
        "fig4_11" => fig4_11(),
        "fig4_12" => fig4_12(options),
        "fig4_13" => fig4_13(),
        "figA_1" => fig_a1(),
        "figA_2_4" => fig_a2_4(options),
        "figA_5_7" => fig_a5_7(options),
        other => panic!("unknown experiment id '{other}' (expected one of {REPORT_IDS:?})"),
    }
}

/// Runs every experiment and returns the reports in paper order.
pub fn all_reports(options: ExperimentOptions) -> Vec<ExperimentReport> {
    REPORT_IDS
        .iter()
        .map(|id| report_by_id(id, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_1_has_all_benchmarks_and_opt_never_hurts() {
        let report = fig4_1();
        let table = &report.tables()[0];
        assert_eq!(table.len(), 8);
        for row in table.rows() {
            let no_opt = match row[2] {
                Cell::Percent(p) => p,
                _ => panic!("expected percent"),
            };
            let with_opt = match row[3] {
                Cell::Percent(p) => p,
                _ => panic!("expected percent"),
            };
            assert!(
                with_opt + 1e-9 >= no_opt,
                "optimisation must never collect less"
            );
        }
        assert!(!report.records().is_empty());
    }

    #[test]
    fn fig4_5_percent_exact_is_within_range() {
        let report = fig4_5();
        for record in report.records() {
            assert!(record.measured >= 0.0 && record.measured <= 100.0);
        }
    }

    #[test]
    fn fig4_13_recycles_objects_for_allocation_heavy_benchmarks() {
        let report = fig4_13();
        let table = &report.tables()[0];
        let jack = table.row_by_label("jack").expect("jack row");
        match jack[1] {
            Cell::Count(n) => assert!(n > 1_000, "jack should recycle many objects, got {n}"),
            _ => panic!("expected count"),
        }
    }

    #[test]
    fn report_registry_is_consistent() {
        assert_eq!(REPORT_IDS.len(), 14);
        // Quick structural check on one cheap report via the registry.
        let report = report_by_id("figA_1", ExperimentOptions::quick());
        assert_eq!(report.id(), "Fig A.1");
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_report_id_panics() {
        let _ = report_by_id("fig9_9", ExperimentOptions::quick());
    }
}
