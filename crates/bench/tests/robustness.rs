//! Failure isolation under hostile or unlucky conditions: a panicking
//! shard must become a structured report (with the surviving shards'
//! partial statistics), a dead sibling must not hang its waiters, a
//! cancelled evaluation must stop, and a lying header must be rejected
//! before a single byte of heap is allocated.

use std::time::{Duration, Instant};

use cg_bench::{parallel_eval_governed, ParallelError};
use cg_core::CgConfig;
use cg_heap::HeapConfig;
use cg_trace::footer::canonical_collector;
use cg_trace::{
    partition, record, replay_governed, replay_path_governed, write_trace, CancelToken, EvalError,
    Governor, LimitKind, ResourceLimits, ShardWait, Trace, TraceMeta,
};
use cg_vm::{
    AllocKind, ClassId, FrameId, FrameInfo, GcEvent, Handle, MethodId, NoopCollector, RootSet,
    ThreadId, VmConfig,
};
use cg_workloads::{Size, Workload};

fn frame(id: u64, thread: u32) -> FrameInfo {
    FrameInfo {
        id: FrameId::new(id),
        depth: 1,
        thread: ThreadId::new(thread),
        method: MethodId::new(0),
    }
}

fn alloc(handle: u32, thread: u32) -> GcEvent {
    GcEvent::Allocate {
        handle: Handle::from_index(handle),
        class: ClassId::new(0),
        kind: AllocKind::Instance { field_count: 1 },
        frame: frame(1 + u64::from(thread), thread),
        recycled: false,
    }
}

/// A ten-second budget: generous enough that trips in these tests always
/// mean a real failure path fired, tight enough that a hang would fail
/// the test run instead of wedging it.
fn test_limits() -> ResourceLimits {
    ResourceLimits {
        deadline: Some(Duration::from_secs(10)),
        ..ResourceLimits::unlimited()
    }
}

/// A two-thread stream whose second shard panics on the §3.3
/// pre-escalation invariant (a foreign store with no preceding
/// cross-thread access), while the first shard's stream is complete and
/// self-contained.  No trailing `ProgramEnd` barrier: shard 0 must not
/// owe shard 1 anything, so its statistics survive the wreck.
fn trace_with_poisoned_second_shard() -> Trace {
    let mut trace = Trace::new("poisoned-shard");
    trace.push(alloc(0, 0));
    trace.push(alloc(1, 1));
    trace.push(GcEvent::ReferenceStore {
        source: Handle::from_index(1),
        target: Handle::from_index(0),
        frame: frame(2, 1),
    });
    trace
}

#[test]
fn a_panicking_shard_becomes_a_report_with_partial_stats() {
    let trace = trace_with_poisoned_second_shard();
    let pt = partition(&trace, 2);
    let _quiet = cg_fuzz::QuietPanics::install();

    let started = Instant::now();
    let err = parallel_eval_governed(
        &pt,
        HeapConfig::small(),
        CgConfig::default(),
        &Governor::new(test_limits()),
    )
    .expect_err("the poisoned shard must fail the evaluation");
    let elapsed = started.elapsed();

    // The panic was caught at the shard boundary and nothing hung: the
    // call returned well inside the deadline, as an error value.
    assert!(
        elapsed < Duration::from_secs(10),
        "returned in {elapsed:?}, not by deadline trip"
    );
    let ParallelError::Shards {
        shard_errors,
        partial,
    } = &err
    else {
        panic!("expected per-shard failures, got {err}");
    };
    assert_eq!(shard_errors.len(), 1, "exactly one shard fails: {err}");
    let (shard, eval) = &shard_errors[0];
    assert_eq!(*shard, 1);
    let EvalError::ShardPanicked { shard: 1, message } = eval else {
        panic!("expected ShardPanicked, got {eval}");
    };
    assert!(
        message.contains("pre-escalation invariant"),
        "panic payload survives into the report: {message}"
    );

    // The healthy shard's work is reported, not discarded.
    let partial = partial.as_deref().expect("shard 0 completed");
    assert_eq!(partial.shard_count, 1, "one shard completed");
    assert_eq!(
        partial.events_replayed, 1,
        "shard 0 replayed its allocation"
    );
    assert_eq!(partial.stats.objects_created, 1);
}

#[test]
fn a_dead_sibling_stalls_the_waiter_into_a_structured_error() {
    // A healthy two-shard stream (one allocation per thread)...
    let mut trace = Trace::new("stalled");
    trace.push(alloc(0, 0));
    trace.push(alloc(1, 1));
    let mut pt = partition(&trace, 2);
    // ...except shard 0's event now demands progress shard 1 will never
    // make — the partitioned equivalent of a sibling that died mid-file.
    pt.streams[0].events[0].waits.push(ShardWait {
        shard: 1,
        processed: u64::MAX,
    });

    let deadline = Duration::from_millis(300);
    let limits = ResourceLimits {
        deadline: Some(deadline),
        ..ResourceLimits::unlimited()
    };
    let started = Instant::now();
    let err = parallel_eval_governed(
        &pt,
        HeapConfig::small(),
        CgConfig::default(),
        &Governor::new(limits),
    )
    .expect_err("the unsatisfiable wait must fail the evaluation");
    let elapsed = started.elapsed();

    assert!(
        elapsed < Duration::from_secs(10),
        "the stalled shard gave up at the deadline, not never: {elapsed:?}"
    );
    let ParallelError::Shards { shard_errors, .. } = &err else {
        panic!("expected per-shard failures, got {err}");
    };
    let stalled = shard_errors
        .iter()
        .find_map(|(_, e)| match e {
            EvalError::ShardStalled {
                shard, waiting_on, ..
            } => Some((*shard, *waiting_on)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected a ShardStalled report, got {err}"));
    assert_eq!(stalled, (0, 1), "shard 0 reports the sibling it waited on");
}

#[test]
fn cancellation_interrupts_a_governed_replay() {
    let db = Workload::by_name("db").expect("db exists");
    let config = VmConfig::default();
    let (trace, ..) = record(
        "db/cancel".to_string(),
        db.program(Size::S1),
        config,
        NoopCollector::new(),
    )
    .expect("recording db/1");

    let cancel = CancelToken::new();
    cancel.cancel();
    let governor = Governor::with_cancel(ResourceLimits::unlimited(), cancel);
    let err = replay_governed(&trace, config.heap, canonical_collector(), &governor)
        .expect_err("a cancelled evaluation must not complete");
    assert!(
        matches!(err, EvalError::Cancelled),
        "expected Cancelled, got {err}"
    );
}

#[test]
fn an_oversized_header_heap_is_rejected_before_allocation() {
    // A tiny, perfectly valid event stream whose header demands an
    // absurd heap.  If admission control ever ran *after* heap
    // construction, this test would not fail an assertion — it would
    // take the test process down with it.
    let mut trace = Trace::new("liar");
    trace.push(alloc(0, 0));
    trace.push(GcEvent::ProgramEnd {
        roots: Box::new(RootSet::default()),
    });
    let huge = HeapConfig {
        object_space_bytes: usize::MAX / 4,
        handle_space_bytes: usize::MAX / 4,
        ..HeapConfig::small()
    };
    let meta = TraceMeta {
        name: "liar".to_string(),
        heap: Some(huge),
        ..TraceMeta::default()
    };
    let bytes = write_trace(Vec::new(), &trace, &meta).expect("serialize");
    let dir = std::env::temp_dir().join(format!("cg-robustness-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("liar.cgt");
    std::fs::write(&path, &bytes).expect("write trace");

    let governor = Governor::new(ResourceLimits::untrusted());
    let started = Instant::now();
    let err = replay_path_governed(&path, None, canonical_collector(), &governor)
        .expect_err("the lying header must be rejected");
    assert!(
        matches!(
            err,
            EvalError::LimitExceeded {
                kind: LimitKind::HeapBytes,
                ..
            }
        ),
        "expected a heap-byte budget rejection, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "rejection happened at admission, not after an allocation attempt"
    );

    // The parallel entry point applies the same admission check.
    let pt = partition(&trace, 2);
    let err = parallel_eval_governed(&pt, huge, CgConfig::default(), &governor)
        .expect_err("the oversized config must be rejected");
    let ParallelError::Rejected(EvalError::LimitExceeded {
        kind: LimitKind::HeapBytes,
        ..
    }) = &err
    else {
        panic!("expected a pre-spawn rejection, got {err}");
    };

    let _ = std::fs::remove_dir_all(&dir);
}
