//! The disk-backed `TraceCache`: recordings persist as `.cgt` files and a
//! second cache (a stand-in for a second process) loads them back instead
//! of re-interpreting — with identical traces and statistics.  A corrupted
//! cache file silently falls back to re-recording.

use cg_bench::{replay_run, CollectorChoice, TraceCache};
use cg_workloads::{Size, Workload};

#[test]
fn disk_cache_round_trips_across_cache_instances() {
    // One env var for the whole process: this is the only test in this
    // file, so nothing races the cache directory.
    let dir = std::env::temp_dir().join(format!("cg-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("CG_TRACE_CACHE_DIR", &dir);

    let db = Workload::by_name("db").expect("db exists");

    // First "process": records and persists.
    let mut first = TraceCache::with_disk_cache();
    let recorded = first
        .for_choice(db, Size::S1, CollectorChoice::Cg)
        .expect("record");
    let cache_file = cg_bench::trace_cache_path(db, Size::S1, None);
    assert!(
        cache_file.exists(),
        "disk cache file must exist at {}",
        cache_file.display()
    );

    // Second "process": loads from disk — same trace, same statistics.
    let mut second = TraceCache::with_disk_cache();
    let loaded = second
        .for_choice(db, Size::S1, CollectorChoice::Cg)
        .expect("load");
    assert_eq!(loaded.trace, recorded.trace, "persisted trace is identical");
    assert_eq!(loaded.vm, recorded.vm, "persisted interpreter stats match");
    assert_eq!(loaded.heap, recorded.heap);
    assert_eq!(loaded.gc_every, recorded.gc_every);
    let a = replay_run(&recorded, CollectorChoice::Cg).expect("replay");
    let b = replay_run(&loaded, CollectorChoice::Cg).expect("replay");
    assert_eq!(
        a.cg.as_ref().map(|c| (&c.stats, &c.breakdown)),
        b.cg.as_ref().map(|c| (&c.stats, &c.breakdown))
    );

    // A corrupt cache file is quarantined (not destroyed) and re-recorded.
    std::fs::write(&cache_file, b"garbage").expect("corrupt the cache");
    let mut third = TraceCache::with_disk_cache();
    let rerecorded = third
        .for_choice(db, Size::S1, CollectorChoice::Cg)
        .expect("fall back to recording");
    assert_eq!(rerecorded.trace, recorded.trace);
    // The re-recorded file is valid again...
    let (reread, ..) = cg_trace::read_trace_from_path(&cache_file).expect("cache file restored");
    assert_eq!(reread, recorded.trace);
    // ...and the corrupt bytes moved aside for a post-mortem.
    let quarantined = cache_file.with_extension("cgt.bad");
    assert_eq!(
        std::fs::read(&quarantined).expect("corrupt entry quarantined"),
        b"garbage",
        "the quarantined file holds the original corrupt bytes"
    );
    // No temp leftovers from the atomic rewrite.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir listable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

    // Different gc_every keys get their own files.
    let mut with_gc = TraceCache::with_disk_cache();
    let reset = with_gc
        .for_choice(db, Size::S1, CollectorChoice::CgReset)
        .expect("record with gc_every");
    assert!(reset.gc_every.is_some());
    assert!(cg_bench::trace_cache_path(db, Size::S1, reset.gc_every).exists());

    let _ = std::fs::remove_dir_all(&dir);
}
