//! The streaming path must be invisible in the numbers: for every
//! workload, driving a collector from a persisted `.cgt` file
//! chunk-by-chunk produces `CgStats`/`ObjectBreakdown` (and interpreter
//! statistics) byte-identical to the in-memory replay path — and the
//! parallel evaluator fed from per-shard `.cgt` files matches the
//! in-memory partitioned evaluation exactly.

use std::path::PathBuf;

use cg_bench::{
    parallel_eval, parallel_eval_streaming, record_workload_trace, record_workload_trace_to_path,
    replay_run, replay_streaming, CollectorChoice,
};
use cg_core::CgConfig;
use cg_trace::{partition, partition_path_streaming, read_partitioned};
use cg_workloads::{Size, Workload};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cg-bench-stream-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn streaming_replay_matches_in_memory_replay_for_all_workloads() {
    let dir = scratch("replay");
    for workload in Workload::all() {
        let path = dir.join(format!("{}.cgt", workload.name()));
        record_workload_trace_to_path(workload, Size::S1, None, &path)
            .unwrap_or_else(|e| panic!("{}: record failed: {e}", workload.name()));
        let recorded = record_workload_trace(workload, Size::S1, None)
            .unwrap_or_else(|e| panic!("{}: record failed: {e}", workload.name()));
        for choice in [
            CollectorChoice::Cg,
            CollectorChoice::CgNoOpt,
            CollectorChoice::Baseline,
        ] {
            let streamed = replay_streaming(&path, choice)
                .unwrap_or_else(|e| panic!("{}: streaming failed: {e}", workload.name()));
            let in_memory = replay_run(&recorded, choice)
                .unwrap_or_else(|e| panic!("{}: replay failed: {e}", workload.name()));
            assert_eq!(
                streamed.vm,
                in_memory.vm,
                "{}/{}: interpreter statistics",
                workload.name(),
                choice.label()
            );
            assert_eq!(
                streamed.cg.as_ref().map(|c| (&c.stats, &c.breakdown)),
                in_memory.cg.as_ref().map(|c| (&c.stats, &c.breakdown)),
                "{}/{}: collector statistics",
                workload.name(),
                choice.label()
            );
            assert_eq!(streamed.live_at_exit, in_memory.live_at_exit);
            assert_eq!(streamed.heap, in_memory.heap);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_replay_honours_the_recorded_gc_interval() {
    let dir = scratch("gc-interval");
    let workload = Workload::by_name("jess").expect("jess exists");
    let path = dir.join("jess-reset.cgt");
    record_workload_trace_to_path(
        workload,
        Size::S1,
        CollectorChoice::CgReset.gc_every(),
        &path,
    )
    .expect("record with gc_every");
    // The matching choice replays...
    let result = replay_streaming(&path, CollectorChoice::CgReset).expect("replay CgReset");
    assert!(result.cg.as_ref().unwrap().stats.resets > 0);
    // ...a mismatching one is rejected before any replay work.
    let err = replay_streaming(&path, CollectorChoice::Cg).unwrap_err();
    assert!(err.to_string().contains("gc_every"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_eval_streaming_rejects_an_incomplete_shard_set_cleanly() {
    let dir = scratch("partial-shards");
    let workload = Workload::by_name("db").expect("db exists");
    let src = dir.join("db.cgt");
    record_workload_trace_to_path(workload, Size::S1, None, &src).expect("record");
    let placed = partition_path_streaming(&src, 4, dir.join("shards")).expect("partition");
    let cg_config = CgConfig {
        verify_tainted: false,
        ..CgConfig::preferred()
    };
    let heap = cg_bench::runner::experiment_heap();
    // Feeding only half the shard files must be a clean error (the files
    // declare a 4-shard topology), not an index-out-of-bounds panic.
    let err = parallel_eval_streaming(&placed.paths[..2], heap, cg_config).unwrap_err();
    assert!(err.to_string().contains("shard"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_eval_from_disk_matches_in_memory_partition() {
    let dir = scratch("parallel");
    let workload = Workload::by_name("mtrt").expect("mtrt exists");
    let src = dir.join("mtrt.cgt");
    record_workload_trace_to_path(workload, Size::S1, None, &src).expect("record");
    let recorded = record_workload_trace(workload, Size::S1, None).expect("record");
    let cg_config = CgConfig {
        verify_tainted: false,
        ..CgConfig::preferred()
    };
    let heap = cg_bench::runner::experiment_heap();
    for shards in [1, 2, 4] {
        let shard_dir = dir.join(format!("shards-{shards}"));
        let placed = partition_path_streaming(&src, shards, &shard_dir).expect("partition to disk");
        assert_eq!(placed.total_events, recorded.trace.len() as u64);

        // Disk round-trip reproduces the in-memory partition exactly.
        let loaded = read_partitioned(&placed.paths).expect("load partition");
        let in_memory_partition = partition(&recorded.trace, shards);
        assert_eq!(loaded, in_memory_partition, "{shards} shards");

        // And the parallel evaluators agree byte-for-byte.
        let from_disk =
            parallel_eval_streaming(&placed.paths, heap, cg_config).expect("streaming eval");
        let from_memory = parallel_eval(&in_memory_partition, heap, cg_config).expect("eval");
        assert_eq!(from_disk.stats, from_memory.stats, "{shards} shards");
        assert_eq!(from_disk.breakdown, from_memory.breakdown);
        assert_eq!(from_disk.events_replayed, from_memory.events_replayed);
        assert_eq!(from_disk.live_at_exit, from_memory.live_at_exit);
        assert_eq!(
            from_disk.collector_freed_objects,
            from_memory.collector_freed_objects
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
