//! Regression tests for the `.cgt.tmp.*` orphan leak: a recorder that dies
//! between `File::create` and the publishing `rename` used to leak its temp
//! file forever, and the pid-only suffix let an unrelated process (after
//! PID reuse) clobber a live tmp.  Now the suffix is pid + monotonic
//! counter and opening the disk cache sweeps expired tmps by mtime TTL.

use std::fs::File;
use std::time::{Duration, SystemTime};

use cg_bench::{sweep_stale_tmps, unique_tmp_path, TraceCache, TMP_SWEEP_TTL};

fn age(path: &std::path::Path, by: Duration) {
    let old = SystemTime::now() - by;
    File::options()
        .write(true)
        .open(path)
        .expect("open for utimes")
        .set_modified(old)
        .expect("set mtime");
}

#[test]
fn sweep_removes_expired_orphans_and_spares_live_tmps() {
    let dir = std::env::temp_dir().join(format!("cg-tmp-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    // A planted orphan from a "dead recorder": old enough to be expired.
    let orphan = dir.join("db-s1-gcnone.cgt.tmp.12345-0");
    std::fs::write(&orphan, b"half-written").expect("plant orphan");
    age(&orphan, TMP_SWEEP_TTL + Duration::from_secs(60));

    // A fresh tmp from a recorder that is still alive.
    let live = dir.join("jess-s1-gcnone.cgt.tmp.777-3");
    std::fs::write(&live, b"in progress").expect("plant live tmp");

    // A published cache entry must never be touched, however old.
    let published = dir.join("db-s1-gcnone.cgt");
    std::fs::write(&published, b"published").expect("plant entry");
    age(&published, TMP_SWEEP_TTL * 10);

    let removed = sweep_stale_tmps(&dir, TMP_SWEEP_TTL);
    assert_eq!(removed, 1, "exactly the expired orphan goes");
    assert!(!orphan.exists(), "expired orphan swept");
    assert!(live.exists(), "fresh tmp (live writer) spared");
    assert!(published.exists(), "published entries are never swept");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_of_missing_directory_is_a_noop() {
    let dir = std::env::temp_dir().join("cg-tmp-sweep-does-not-exist");
    assert_eq!(sweep_stale_tmps(&dir, TMP_SWEEP_TTL), 0);
}

#[test]
fn opening_the_disk_cache_sweeps_planted_orphans() {
    // Own process (integration test binary), so the env var is private.
    let dir = std::env::temp_dir().join(format!("cg-cache-open-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::env::set_var("CG_TRACE_CACHE_DIR", &dir);

    let orphan = dir.join("mtrt-s1-gcnone.cgt.tmp.424242-0");
    std::fs::write(&orphan, b"dead recorder leftovers").expect("plant orphan");
    age(&orphan, TMP_SWEEP_TTL + Duration::from_secs(1));

    let _cache = TraceCache::with_disk_cache();
    assert!(
        !orphan.exists(),
        "cache open must reclaim expired tmp orphans"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unique_tmp_paths_never_collide_within_a_process() {
    // PID reuse made the old `<pid>`-only suffix clobber-prone; the
    // monotonic counter makes every tmp name distinct even for one path.
    let path = std::path::Path::new("/tmp/cache/entry.cgt");
    let a = unique_tmp_path(path);
    let b = unique_tmp_path(path);
    assert_ne!(a, b, "same path, same pid, still distinct");
    for tmp in [&a, &b] {
        let name = tmp.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("entry.cgt.tmp."),
            "tmp keeps the published name as prefix: {name}"
        );
        assert!(
            name.contains(&format!(".tmp.{}-", std::process::id())),
            "tmp embeds pid and counter: {name}"
        );
    }
}
