//! The sharded-evaluation invariant, pinned down end to end:
//!
//! for **every** recorded workload trace and **every** shard count in
//! {1, 2, 4, 8}, the parallel sharded evaluation's aggregated `CgStats` and
//! `ObjectBreakdown` are byte-identical to a single-threaded replay of the
//! same trace — and the partitioner's deterministic merge reproduces the
//! original event order exactly.

use cg_bench::parallel_eval;
use cg_core::{CgConfig, ContaminatedGc};
use cg_trace::{partition, record, replay};
use cg_vm::{NoopCollector, VmConfig};
use cg_workloads::{Size, Workload};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cg_config() -> CgConfig {
    CgConfig {
        // The soundness verifier is a debug aid; equivalence is about the
        // statistics.
        verify_tainted: false,
        ..CgConfig::preferred()
    }
}

#[test]
fn sharded_evaluation_is_byte_identical_for_every_workload_and_shard_count() {
    let vm_config = VmConfig::default().with_heap(cg_bench::runner::experiment_heap());
    for workload in Workload::all() {
        let (trace, ..) = record(
            format!("{}/1", workload.name()),
            workload.program(Size::S1),
            vm_config,
            NoopCollector::new(),
        )
        .unwrap_or_else(|e| panic!("{} records: {e}", workload.name()));

        let single = replay(
            &trace,
            vm_config.heap,
            ContaminatedGc::with_config(cg_config()),
        )
        .unwrap_or_else(|e| panic!("{} replays: {e}", workload.name()));
        let mut single_collector = single.collector;
        let single_breakdown = single_collector.breakdown();

        for shards in SHARD_COUNTS {
            let pt = partition(&trace, shards);

            // Partition -> deterministic merge is the identity.
            assert_eq!(
                pt.merge(),
                trace,
                "{}: merge must reproduce the original order ({shards} shards)",
                workload.name()
            );

            // Parallel aggregated statistics are byte-identical.
            let outcome = parallel_eval(&pt, vm_config.heap, cg_config())
                .unwrap_or_else(|e| panic!("{} parallel ({shards} shards): {e}", workload.name()));
            assert_eq!(
                outcome.stats,
                *single_collector.stats(),
                "{}: CgStats diverged at {shards} shards",
                workload.name()
            );
            assert_eq!(
                outcome.breakdown,
                single_breakdown,
                "{}: ObjectBreakdown diverged at {shards} shards",
                workload.name()
            );
            assert_eq!(outcome.events_replayed, trace.len());
            assert_eq!(
                outcome.collector_freed_objects,
                single.outcome.collector_freed_objects
            );
            assert_eq!(
                outcome.collector_freed_bytes,
                single.outcome.collector_freed_bytes
            );
            assert_eq!(outcome.live_at_exit, single.outcome.live_at_exit);
        }
    }
}

#[test]
fn sharded_evaluation_matches_without_the_static_optimisation() {
    // The §3.4-off configuration exercises the drag-into-static union paths
    // the optimisation normally skips.
    let vm_config = VmConfig::default().with_heap(cg_bench::runner::experiment_heap());
    let config = CgConfig {
        verify_tainted: false,
        ..CgConfig::without_static_opt()
    };
    let workload = Workload::by_name("javac").expect("javac exists");
    let (trace, ..) = record(
        "javac/1",
        workload.program(Size::S1),
        vm_config,
        NoopCollector::new(),
    )
    .expect("recording succeeds");
    let single = replay(&trace, vm_config.heap, ContaminatedGc::with_config(config))
        .expect("single replay succeeds");
    for shards in SHARD_COUNTS {
        let pt = partition(&trace, shards);
        let outcome = parallel_eval(&pt, vm_config.heap, config).expect("parallel succeeds");
        assert_eq!(
            outcome.stats,
            *single.collector.stats(),
            "no-opt CgStats diverged at {shards} shards"
        );
    }
}
