//! One session's evaluation: spool the uploaded `.cgt` byte stream to
//! disk with O(chunk) memory, answer repeated workloads from the memoized
//! result cache, otherwise replay under the session's [`Governor`] via the
//! governed streaming path and publish the result for next time.
//!
//! The result cache lives under the same directory tree as the benchmark
//! harness's disk trace cache and uses the same atomic-publish discipline
//! (collision-proof tmp sibling + rename, expired tmps swept on startup).
//! Entries are keyed by content — `(length, CRC32, FNV-1a 64)` of the full
//! uploaded byte stream — so a repeated upload of the same workload trace
//! is answered without replaying a single event, and a trace that differs
//! anywhere (header, events, footer) can never collide into a wrong
//! answer short of a simultaneous 96-bit hash collision.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use cg_bench::{sweep_stale_tmps, unique_tmp_path, TMP_SWEEP_TTL};
use cg_trace::footer::{canonical_collector, cg_section};
use cg_trace::proto::{session_error, ErrorClass, ProtoError, SessionReader};
use cg_trace::{replay_path_governed, EvalError, Governor};

/// How a session's evaluation is configured (shared by all workers).
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Root directory for spools and memoized results.
    pub cache_dir: PathBuf,
    /// Whether to memoize results (on by default; off forces re-replay).
    pub memoize: bool,
    /// Hard cap on the uploaded byte stream.
    pub max_upload_bytes: u64,
}

impl EvalConfig {
    /// Creates the spool/result directories and sweeps expired tmps left
    /// by evaluators that died mid-publish.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn prepare(&self) -> io::Result<()> {
        for sub in ["uploads", "results"] {
            let dir = self.cache_dir.join(sub);
            std::fs::create_dir_all(&dir)?;
            sweep_stale_tmps(&dir, TMP_SWEEP_TTL);
        }
        Ok(())
    }

    fn result_path(&self, len: u64, crc: u32, fnv: u64) -> PathBuf {
        self.cache_dir
            .join("results")
            .join(format!("{len:x}-{crc:08x}-{fnv:016x}.stats"))
    }
}

/// A successful evaluation, ready to frame as `STATS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionResult {
    /// The plaintext stats body: `events N` then `cg.<counter> <value>`
    /// lines in the canonical footer-section order.
    pub text: String,
    /// Whether it came from the memoized result cache.
    pub cached: bool,
    /// Events replayed (from the `events` line; the recorded count when
    /// answered from cache).
    pub events: u64,
}

/// Why a session failed, with enough structure to pick the wire
/// [`ErrorClass`] and a metrics bucket.
#[derive(Debug)]
pub enum SessionError {
    /// The client broke the frame protocol mid-body.
    Proto(ProtoError),
    /// The client stopped sending bytes (socket idle timeout).
    Stalled,
    /// The upload exceeded the configured byte cap.
    UploadTooLarge {
        /// The configured cap.
        limit: u64,
    },
    /// The server's own disk I/O failed.
    Io(io::Error),
    /// The governed replay rejected or aborted the trace.
    Eval(EvalError),
}

impl SessionError {
    /// The wire error class this failure reports as.
    pub fn class(&self) -> ErrorClass {
        match self {
            SessionError::Proto(_) => ErrorClass::Protocol,
            SessionError::Stalled => ErrorClass::Deadline,
            SessionError::UploadTooLarge { .. } => ErrorClass::Limit,
            SessionError::Io(_) => ErrorClass::Io,
            SessionError::Eval(e) => ErrorClass::from_eval(e),
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Proto(e) => write!(f, "{e}"),
            SessionError::Stalled => write!(f, "session stalled: no bytes within the idle timeout"),
            SessionError::UploadTooLarge { limit } => {
                write!(f, "upload exceeds the {limit}-byte cap")
            }
            SessionError::Io(e) => write!(f, "server i/o: {e}"),
            SessionError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Classifies a [`SessionReader`] read failure: a wrapped [`ProtoError`]
/// is a protocol violation, a timeout is a stalled client, anything else
/// is transport I/O (mid-stream disconnects arrive as `Truncated`).
fn classify_read(e: io::Error) -> SessionError {
    if matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    ) {
        return SessionError::Stalled;
    }
    match session_error(&e) {
        Some(_) => {
            // Take the ProtoError back out of the io::Error wrapper.
            let inner = e
                .into_inner()
                .expect("session_error saw an inner error")
                .downcast::<ProtoError>()
                .expect("session_error checked the type");
            SessionError::Proto(*inner)
        }
        None => SessionError::Proto(ProtoError::Io(e)),
    }
}

/// Runs one session body to completion: spools, memoizes, evaluates.
///
/// The governor's deadline covers the whole session — a client that
/// uploads slowly eats into its own evaluation budget, so a worker slot
/// is always reclaimed within the deadline plus one idle timeout.
///
/// # Errors
///
/// A [`SessionError`]; the worker frames it as an `ERROR` response.
pub fn evaluate_session<R: Read>(
    body: &mut SessionReader<R>,
    governor: &Governor,
    config: &EvalConfig,
) -> Result<SessionResult, SessionError> {
    let uploads = config.cache_dir.join("uploads");
    std::fs::create_dir_all(&uploads).map_err(SessionError::Io)?;
    let spool_path = unique_tmp_path(&uploads.join("session.cgt"));
    let result = spool_and_eval(body, governor, config, &spool_path);
    let _ = std::fs::remove_file(&spool_path);
    result
}

fn spool_and_eval<R: Read>(
    body: &mut SessionReader<R>,
    governor: &Governor,
    config: &EvalConfig,
    spool_path: &Path,
) -> Result<SessionResult, SessionError> {
    // Spool the framed byte stream to disk: memory stays at one frame
    // plus this copy buffer regardless of trace size.
    let spool = File::create(spool_path).map_err(SessionError::Io)?;
    let mut spool = BufWriter::new(spool);
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        governor.check_deadline().map_err(SessionError::Eval)?;
        governor.check_cancelled().map_err(SessionError::Eval)?;
        let n = body.read(&mut buf).map_err(classify_read)?;
        if n == 0 {
            break;
        }
        if body.bytes_read() > config.max_upload_bytes {
            return Err(SessionError::UploadTooLarge {
                limit: config.max_upload_bytes,
            });
        }
        spool.write_all(&buf[..n]).map_err(SessionError::Io)?;
    }
    spool
        .into_inner()
        .map_err(|e| SessionError::Io(e.into_error()))?;

    // Memoization: same bytes, same answer — skip the replay entirely.
    let result_path = config.result_path(body.bytes_read(), body.crc32(), body.fnv64());
    if config.memoize {
        if let Some(hit) = load_result(&result_path) {
            return Ok(SessionResult {
                cached: true,
                ..hit
            });
        }
    }

    let evaluated = replay_path_governed(spool_path, None, canonical_collector(), governor)
        .map_err(SessionError::Eval)?;
    let mut collector = evaluated.replayed.collector;
    let breakdown = collector.breakdown();
    let section = cg_section(collector.stats(), &breakdown);
    let events = evaluated.replayed.outcome.events_replayed as u64;
    let mut text = format!("events {events}\n");
    for (name, value) in &section.entries {
        text.push_str(&format!("cg.{name} {value}\n"));
    }
    if config.memoize {
        store_result(&result_path, &text);
    }
    Ok(SessionResult {
        text,
        cached: false,
        events,
    })
}

/// Loads a memoized result; `None` on absence or any damage (a damaged
/// entry just costs a re-replay, exactly like the trace cache).
fn load_result(path: &Path) -> Option<SessionResult> {
    let text = std::fs::read_to_string(path).ok()?;
    let events = text
        .lines()
        .next()?
        .strip_prefix("events ")?
        .parse::<u64>()
        .ok()?;
    if !text.lines().skip(1).all(|l| l.starts_with("cg.")) || text.lines().count() < 2 {
        return None;
    }
    Some(SessionResult {
        text,
        cached: true,
        events,
    })
}

/// Publishes a result atomically (tmp sibling + rename).  Best-effort: a
/// failure here only loses the memoization, never the response.
fn store_result(path: &Path, text: &str) {
    let tmp = unique_tmp_path(path);
    let publish = || -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    if publish().is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_trace::proto::{write_session_body, Frame};
    use cg_trace::ResourceLimits;

    fn test_config(tag: &str) -> EvalConfig {
        let dir = std::env::temp_dir().join(format!("cgtd-eval-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EvalConfig {
            cache_dir: dir,
            memoize: true,
            max_upload_bytes: 64 << 20,
        };
        config.prepare().expect("prepare");
        config
    }

    /// A tiny but real `.cgt` stream: record one workload at size 1.
    fn small_trace_bytes() -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!("cgtd-eval-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("jess-s1.cgt");
        if !path.exists() {
            let workload = cg_workloads::Workload::by_name("jess").expect("jess exists");
            cg_bench::record_workload_trace_to_path(workload, cg_workloads::Size::S1, None, &path)
                .expect("record");
        }
        std::fs::read(&path).expect("read trace")
    }

    fn frame_body(bytes: &[u8]) -> Vec<u8> {
        let mut framed = Vec::new();
        write_session_body(&mut io::Cursor::new(bytes), &mut framed).expect("frame");
        framed
    }

    #[test]
    fn evaluates_then_memoizes_byte_identically() {
        let config = test_config("memo");
        let governor = Governor::new(ResourceLimits::untrusted());
        let bytes = small_trace_bytes();

        let mut first = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let a = evaluate_session(&mut first, &governor, &config).expect("first eval");
        assert!(!a.cached);
        assert!(a.events > 0);
        assert!(a.text.starts_with("events "));
        assert!(a.text.contains("cg.objects_created"), "{}", a.text);

        let mut second = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let b = evaluate_session(&mut second, &governor, &config).expect("second eval");
        assert!(b.cached, "repeat upload answered from cache");
        assert_eq!(a.text, b.text, "cached answer is byte-identical");

        // No spool leftovers.
        let leftovers = std::fs::read_dir(config.cache_dir.join("uploads"))
            .expect("uploads dir")
            .count();
        assert_eq!(leftovers, 0, "spools are always reclaimed");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn corrupt_stream_reports_corrupt_class() {
        let config = test_config("corrupt");
        let governor = Governor::new(ResourceLimits::untrusted());
        let mut bytes = small_trace_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        let mut body = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let err = evaluate_session(&mut body, &governor, &config).expect_err("corrupt");
        assert_eq!(err.class(), ErrorClass::Corrupt, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn event_budget_trips_limit_class() {
        let config = test_config("limit");
        let governor = Governor::new(ResourceLimits::parse("events=10").expect("spec"));
        let bytes = small_trace_bytes();
        let mut body = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let err = evaluate_session(&mut body, &governor, &config).expect_err("limited");
        assert_eq!(err.class(), ErrorClass::Limit, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn upload_cap_trips_before_disk_fills() {
        let config = EvalConfig {
            max_upload_bytes: 1024,
            ..test_config("cap")
        };
        let governor = Governor::new(ResourceLimits::untrusted());
        let mut framed = Vec::new();
        for _ in 0..10 {
            cg_trace::proto::write_frame(&mut framed, &Frame::Data(vec![0u8; 512])).unwrap();
        }
        cg_trace::proto::write_frame(&mut framed, &Frame::End).unwrap();
        let mut body = SessionReader::new(io::Cursor::new(framed));
        let err = evaluate_session(&mut body, &governor, &config).expect_err("capped");
        assert_eq!(err.class(), ErrorClass::Limit, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn disconnect_mid_body_is_a_protocol_error() {
        let config = test_config("disconnect");
        let governor = Governor::new(ResourceLimits::untrusted());
        let mut framed = Vec::new();
        cg_trace::proto::write_frame(&mut framed, &Frame::Data(vec![1, 2, 3])).unwrap();
        // No END frame: the client vanished.
        let mut body = SessionReader::new(io::Cursor::new(framed));
        let err = evaluate_session(&mut body, &governor, &config).expect_err("gone");
        assert_eq!(err.class(), ErrorClass::Protocol, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }
}
