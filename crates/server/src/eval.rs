//! One session's evaluation: spool the uploaded `.cgt` byte stream to
//! disk with O(chunk) memory, answer repeated workloads from the memoized
//! result cache, otherwise replay under the session's [`Governor`] via the
//! governed streaming path and publish the result for next time.
//!
//! Large uploads take the **sharded** path: when the tenant's `shards`
//! budget allows ≥ 2 shards and the spool crosses
//! [`EvalConfig::shard_min_bytes`], the spool is split per thread with
//! [`partition_path_streaming`] and evaluated on one OS thread per shard
//! via [`parallel_eval_streaming_governed`] — sound because contaminated
//! GC's per-thread frame/block locality (§3.3) keeps shard state
//! independent up to explicit cross-shard waits, and byte-identical to
//! the single-shard replay by the shard-equivalence invariant.  Shard
//! failures surface as [`SessionError::Shards`] with the completed
//! shards' partial statistics preserved in the error message.
//!
//! **Live streams** ([`evaluate_stream_session`]) never spool at all: the
//! framed body is decoded event-by-event as it arrives and applied to the
//! shadow heap incrementally, so a stream of any length evaluates in
//! O(chunk) memory, with periodic `PROGRESS` callbacks for the client.
//!
//! The result cache lives under the same directory tree as the benchmark
//! harness's disk trace cache and uses the same atomic-publish discipline
//! (collision-proof tmp sibling + rename, expired tmps swept on startup).
//! Entries are keyed by content — `(length, CRC32, FNV-1a 64)` of the full
//! uploaded byte stream — so a repeated upload of the same workload trace
//! is answered without replaying a single event, and a trace that differs
//! anywhere (header, events, footer) can never collide into a wrong
//! answer short of a simultaneous 96-bit hash collision.

use std::cell::RefCell;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use cg_bench::{sweep_stale_tmps, unique_tmp_path, TMP_SWEEP_TTL};
use cg_heap::Heap;
use cg_trace::footer::{canonical_collector, canonical_config, cg_section};
use cg_trace::proto::{session_error, ErrorClass, ProtoError, SessionReader};
use cg_trace::{
    apply_event, open_trace, parallel_eval_streaming_governed, partition_path_streaming,
    replay_path_governed, EvalError, FooterSection, Governor, ParallelError, ReplayOutcome,
    ResourceLimits, TraceIoError, TraceReader, GOVERNOR_CHECK_EVENTS,
};

/// Most shard threads one session may occupy, regardless of the tenant's
/// `shards` budget — the serving-side sanity clamp (the bench harness has
/// no such clamp; a daemon sharing a machine does).
pub const MAX_SERVING_SHARDS: usize = 16;

/// A live stream reports `PROGRESS` every this many events (plus once
/// right after the header parses, so every watcher sees at least one).
pub const PROGRESS_EVERY_EVENTS: u64 = 4096;

/// How a session's evaluation is configured (shared by all workers).
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Root directory for spools and memoized results.
    pub cache_dir: PathBuf,
    /// Whether to memoize results (on by default; off forces re-replay).
    pub memoize: bool,
    /// Hard cap on the uploaded byte stream.
    pub max_upload_bytes: u64,
    /// Smallest upload worth sharding: below this the partition cost
    /// outweighs the parallel win and the single-shard path runs instead.
    pub shard_min_bytes: u64,
}

/// Shard threads one session may use under `limits`: the tenant's
/// `shards` budget clamped by [`MAX_SERVING_SHARDS`], never zero.  The
/// budget is honored even on machines with fewer cores — byte-identity
/// holds at any shard count and an explicit grant should behave the same
/// everywhere; the speedup (not the answer) is what scales with cores.
/// The scheduler charges this many worker-equivalent slots at admission
/// (see [`crate::scheduler`]).
pub fn serving_shards(limits: &ResourceLimits) -> usize {
    let budget = limits.max_shards.unwrap_or(u64::MAX);
    budget.min(MAX_SERVING_SHARDS as u64).max(1) as usize
}

impl EvalConfig {
    /// Creates the spool/result directories and sweeps expired tmps left
    /// by evaluators that died mid-publish.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn prepare(&self) -> io::Result<()> {
        for sub in ["uploads", "results"] {
            let dir = self.cache_dir.join(sub);
            std::fs::create_dir_all(&dir)?;
            sweep_stale_tmps(&dir, TMP_SWEEP_TTL);
        }
        Ok(())
    }

    fn result_path(&self, len: u64, crc: u32, fnv: u64) -> PathBuf {
        self.cache_dir
            .join("results")
            .join(format!("{len:x}-{crc:08x}-{fnv:016x}.stats"))
    }
}

/// A successful evaluation, ready to frame as `STATS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionResult {
    /// The plaintext stats body: `events N` then `cg.<counter> <value>`
    /// lines in the canonical footer-section order.
    pub text: String,
    /// Whether it came from the memoized result cache.
    pub cached: bool,
    /// Events replayed (from the `events` line; the recorded count when
    /// answered from cache).
    pub events: u64,
    /// Shard threads the evaluation used (1 for the single-shard path,
    /// live streams and cache hits).
    pub shards: usize,
}

/// Why a session failed, with enough structure to pick the wire
/// [`ErrorClass`] and a metrics bucket.
#[derive(Debug)]
pub enum SessionError {
    /// The client broke the frame protocol mid-body.
    Proto(ProtoError),
    /// The client stopped sending bytes (socket idle timeout).
    Stalled,
    /// The upload exceeded the configured byte cap.
    UploadTooLarge {
        /// The configured cap.
        limit: u64,
    },
    /// The server's own disk I/O failed.
    Io(io::Error),
    /// The governed replay rejected or aborted the trace.
    Eval(EvalError),
    /// One or more shards of a parallel evaluation failed; the completed
    /// shards' partial statistics travel in the error message.
    Shards(ParallelError),
}

impl SessionError {
    /// The wire error class this failure reports as.
    pub fn class(&self) -> ErrorClass {
        match self {
            SessionError::Proto(_) => ErrorClass::Protocol,
            SessionError::Stalled => ErrorClass::Deadline,
            SessionError::UploadTooLarge { .. } => ErrorClass::Limit,
            SessionError::Io(_) => ErrorClass::Io,
            SessionError::Eval(e) => ErrorClass::from_eval(e),
            SessionError::Shards(e) => ErrorClass::from_eval(e.primary()),
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Proto(e) => write!(f, "{e}"),
            SessionError::Stalled => write!(f, "session stalled: no bytes within the idle timeout"),
            SessionError::UploadTooLarge { limit } => {
                write!(f, "upload exceeds the {limit}-byte cap")
            }
            SessionError::Io(e) => write!(f, "server i/o: {e}"),
            SessionError::Eval(e) => write!(f, "{e}"),
            SessionError::Shards(e) => {
                write!(f, "{e}")?;
                if let Some(p) = e.partial() {
                    write!(
                        f,
                        "; partial stats: events={} live_at_exit={} freed_objects={}",
                        p.events_replayed, p.live_at_exit, p.collector_freed_objects
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Classifies a [`SessionReader`] read failure: a wrapped [`ProtoError`]
/// is a protocol violation, a timeout is a stalled client, anything else
/// is transport I/O (mid-stream disconnects arrive as `Truncated`).
fn classify_read(e: io::Error) -> SessionError {
    if matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    ) {
        return SessionError::Stalled;
    }
    match session_error(&e) {
        Some(_) => {
            // Take the ProtoError back out of the io::Error wrapper.
            let inner = e
                .into_inner()
                .expect("session_error saw an inner error")
                .downcast::<ProtoError>()
                .expect("session_error checked the type");
            SessionError::Proto(*inner)
        }
        None => SessionError::Proto(ProtoError::Io(e)),
    }
}

/// Runs one session body to completion: spools, memoizes, evaluates.
///
/// The governor's deadline covers the whole session — a client that
/// uploads slowly eats into its own evaluation budget, so a worker slot
/// is always reclaimed within the deadline plus one idle timeout.
///
/// # Errors
///
/// A [`SessionError`]; the worker frames it as an `ERROR` response.
pub fn evaluate_session<R: Read>(
    body: &mut SessionReader<R>,
    governor: &Governor,
    config: &EvalConfig,
) -> Result<SessionResult, SessionError> {
    let uploads = config.cache_dir.join("uploads");
    std::fs::create_dir_all(&uploads).map_err(SessionError::Io)?;
    let spool_path = unique_tmp_path(&uploads.join("session.cgt"));
    let result = spool_and_eval(body, governor, config, &spool_path);
    let _ = std::fs::remove_file(&spool_path);
    result
}

/// The marker error [`SharedSession`] raises when a stream crosses the
/// upload byte cap, so [`classify_stream`] can tell the cap apart from
/// transport failures after the error has passed through the trace
/// reader.
#[derive(Debug)]
struct CapExceeded;

impl fmt::Display for CapExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream exceeds the upload byte cap")
    }
}

impl std::error::Error for CapExceeded {}

/// A [`SessionReader`] behind a shared handle, so the trace reader can
/// consume it while the evaluation loop still observes `bytes_read` for
/// progress frames and drains the tail after the footer.  Enforces the
/// upload cap on every read.
struct SharedSession<R: Read> {
    inner: Rc<RefCell<SessionReader<R>>>,
    cap: u64,
}

impl<R: Read> Read for SharedSession<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut inner = self.inner.borrow_mut();
        let n = inner.read(buf)?;
        if inner.bytes_read() > self.cap {
            return Err(io::Error::other(CapExceeded));
        }
        Ok(n)
    }
}

/// Classifies a failure from the incremental trace reader: the cap marker
/// planted by [`SharedSession`], a client transport failure (stall,
/// disconnect, torn frame), or genuine stream damage.
fn classify_stream(e: TraceIoError, limit: u64) -> SessionError {
    match e {
        TraceIoError::Io(io) => {
            if io.get_ref().is_some_and(|inner| inner.is::<CapExceeded>()) {
                SessionError::UploadTooLarge { limit }
            } else {
                classify_read(io)
            }
        }
        damaged => SessionError::Eval(EvalError::Trace(damaged)),
    }
}

/// Runs one live `STREAM` session: decodes the framed `.cgt` body
/// event-by-event as it arrives and applies each event to the shadow heap
/// immediately, so memory stays O(chunk) no matter how long the client
/// records.  `progress` is called with `(events, bytes)` once after the
/// header parses and then every [`PROGRESS_EVERY_EVENTS`] events — the
/// worker turns each call into a `PROGRESS` frame; a callback error means
/// the client stopped draining and ends the session.
///
/// Live streams bypass the memoized result cache: the daemon never holds
/// the full byte stream, so there is no content key to look up.  The
/// governed checkpoints are the same as the spooled path's, so budgets
/// and deadlines trip identically.
///
/// # Errors
///
/// A [`SessionError`]; the worker frames it as an `ERROR` response.
pub fn evaluate_stream_session<R: Read>(
    body: SessionReader<R>,
    governor: &Governor,
    config: &EvalConfig,
    mut progress: impl FnMut(u64, u64) -> io::Result<()>,
) -> Result<SessionResult, SessionError> {
    let session = Rc::new(RefCell::new(body));
    let cap = config.max_upload_bytes;
    let mut reader = TraceReader::new(SharedSession {
        inner: Rc::clone(&session),
        cap,
    })
    .map_err(|e| classify_stream(e, cap))?;

    let heap_config = reader.meta().heap.ok_or_else(|| {
        SessionError::Eval(EvalError::Trace(TraceIoError::Malformed {
            chunk: None,
            detail: "stream header carries no heap configuration".to_string(),
        }))
    })?;
    governor
        .validate_heap(&heap_config)
        .map_err(SessionError::Eval)?;
    if let Some(declared) = reader.meta().declared_events {
        governor
            .validate_declared_events(declared)
            .map_err(SessionError::Eval)?;
    }

    let mut heap = Heap::new(heap_config);
    let mut collector = canonical_collector();
    let mut outcome = ReplayOutcome::default();
    progress(0, session.borrow().bytes_read()).map_err(classify_read)?;
    loop {
        match reader.next_event() {
            Ok(Some(event)) => {
                apply_event(&event, &mut heap, &mut collector, &mut outcome)
                    .map_err(|e| SessionError::Eval(EvalError::Replay(e)))?;
                let n = outcome.events_replayed as u64;
                if n.is_multiple_of(GOVERNOR_CHECK_EVENTS) {
                    governor.checkpoint(n, &heap).map_err(SessionError::Eval)?;
                }
                if n.is_multiple_of(PROGRESS_EVERY_EVENTS) {
                    progress(n, session.borrow().bytes_read()).map_err(classify_read)?;
                }
            }
            Ok(None) => break,
            Err(e) => return Err(classify_stream(e, cap)),
        }
    }
    let events = outcome.events_replayed as u64;
    governor
        .checkpoint(events, &heap)
        .map_err(SessionError::Eval)?;
    drop(reader);

    // Drain to the END frame so the response is never raced by an unread
    // tail (a close with buffered receive data can turn into a reset that
    // eats the STATS frame).
    let mut sink = [0u8; 4096];
    loop {
        let mut inner = session.borrow_mut();
        let n = inner.read(&mut sink).map_err(classify_read)?;
        if inner.bytes_read() > cap {
            return Err(SessionError::UploadTooLarge { limit: cap });
        }
        if n == 0 {
            break;
        }
    }

    let breakdown = collector.breakdown();
    let section = cg_section(collector.stats(), &breakdown);
    Ok(SessionResult {
        text: stats_text(events, &section),
        cached: false,
        events,
        shards: 1,
    })
}

fn spool_and_eval<R: Read>(
    body: &mut SessionReader<R>,
    governor: &Governor,
    config: &EvalConfig,
    spool_path: &Path,
) -> Result<SessionResult, SessionError> {
    // Spool the framed byte stream to disk: memory stays at one frame
    // plus this copy buffer regardless of trace size.
    let spool = File::create(spool_path).map_err(SessionError::Io)?;
    let mut spool = BufWriter::new(spool);
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        governor.check_deadline().map_err(SessionError::Eval)?;
        governor.check_cancelled().map_err(SessionError::Eval)?;
        let n = body.read(&mut buf).map_err(classify_read)?;
        if n == 0 {
            break;
        }
        if body.bytes_read() > config.max_upload_bytes {
            return Err(SessionError::UploadTooLarge {
                limit: config.max_upload_bytes,
            });
        }
        spool.write_all(&buf[..n]).map_err(SessionError::Io)?;
    }
    spool
        .into_inner()
        .map_err(|e| SessionError::Io(e.into_error()))?;

    // Memoization: same bytes, same answer — skip the replay entirely.
    let result_path = config.result_path(body.bytes_read(), body.crc32(), body.fnv64());
    if config.memoize {
        if let Some(hit) = load_result(&result_path) {
            return Ok(SessionResult {
                cached: true,
                ..hit
            });
        }
    }

    // Route: the sharded path when the tenant's budget allows it and the
    // upload is large enough to pay for the partition pass.
    let shards = if body.bytes_read() >= config.shard_min_bytes {
        serving_shards(governor.limits())
    } else {
        1
    };
    let (text, events) = if shards >= 2 {
        eval_sharded(spool_path, shards, governor)?
    } else {
        eval_single(spool_path, governor)?
    };
    if config.memoize {
        store_result(&result_path, &text);
    }
    Ok(SessionResult {
        text,
        cached: false,
        events,
        shards,
    })
}

/// The canonical stats body: `events N` then the footer-section entries.
fn stats_text(events: u64, section: &FooterSection) -> String {
    let mut text = format!("events {events}\n");
    for (name, value) in &section.entries {
        text.push_str(&format!("cg.{name} {value}\n"));
    }
    text
}

/// The single-shard whole-file path — the byte-identity reference for
/// both the sharded and the streamed evaluators.
fn eval_single(spool_path: &Path, governor: &Governor) -> Result<(String, u64), SessionError> {
    let evaluated = replay_path_governed(spool_path, None, canonical_collector(), governor)
        .map_err(SessionError::Eval)?;
    let mut collector = evaluated.replayed.collector;
    let breakdown = collector.breakdown();
    let section = cg_section(collector.stats(), &breakdown);
    let events = evaluated.replayed.outcome.events_replayed as u64;
    Ok((stats_text(events, &section), events))
}

/// The sharded path: partition the spool per recording thread, evaluate
/// one OS thread per shard, aggregate.  Identical output to
/// [`eval_single`] by the shard-equivalence invariant.
fn eval_sharded(
    spool_path: &Path,
    shards: usize,
    governor: &Governor,
) -> Result<(String, u64), SessionError> {
    let reader = open_trace(spool_path).map_err(|e| SessionError::Eval(EvalError::Trace(e)))?;
    let heap = reader.meta().heap.ok_or_else(|| {
        SessionError::Eval(EvalError::Trace(TraceIoError::Malformed {
            chunk: None,
            detail: "trace header carries no heap configuration".to_string(),
        }))
    })?;
    if let Some(declared) = reader.meta().declared_events {
        governor
            .validate_declared_events(declared)
            .map_err(SessionError::Eval)?;
    }
    drop(reader);

    // Append to the full spool name (which carries the per-session unique
    // tmp suffix) — `with_extension` would replace that suffix and make
    // every concurrent session partition into the same directory.
    let mut shard_dir = spool_path.as_os_str().to_owned();
    shard_dir.push(".shards");
    let shard_dir = std::path::PathBuf::from(shard_dir);
    std::fs::create_dir_all(&shard_dir).map_err(SessionError::Io)?;
    let result = (|| {
        let parts = partition_path_streaming(spool_path, shards, &shard_dir)
            .map_err(|e| SessionError::Eval(EvalError::Trace(e)))?;
        // The partition pass counted every event, so the budget check here
        // is exact even when the header declared nothing.
        governor
            .validate_declared_events(parts.total_events)
            .map_err(SessionError::Eval)?;
        let outcome =
            parallel_eval_streaming_governed(&parts.paths, heap, canonical_config(), governor)
                .map_err(|e| match e {
                    ParallelError::Rejected(e) => SessionError::Eval(e),
                    failed @ ParallelError::Shards { .. } => SessionError::Shards(failed),
                })?;
        let section = cg_section(&outcome.stats, &outcome.breakdown);
        let events = outcome.events_replayed as u64;
        Ok((stats_text(events, &section), events))
    })();
    let _ = std::fs::remove_dir_all(&shard_dir);
    result
}

/// Loads a memoized result; `None` on absence or any damage (a damaged
/// entry just costs a re-replay, exactly like the trace cache).
fn load_result(path: &Path) -> Option<SessionResult> {
    let text = std::fs::read_to_string(path).ok()?;
    let events = text
        .lines()
        .next()?
        .strip_prefix("events ")?
        .parse::<u64>()
        .ok()?;
    if !text.lines().skip(1).all(|l| l.starts_with("cg.")) || text.lines().count() < 2 {
        return None;
    }
    Some(SessionResult {
        text,
        cached: true,
        events,
        shards: 1,
    })
}

/// Publishes a result atomically (tmp sibling + rename).  Best-effort: a
/// failure here only loses the memoization, never the response.
fn store_result(path: &Path, text: &str) {
    let tmp = unique_tmp_path(path);
    let publish = || -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    if publish().is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_trace::proto::{write_session_body, Frame};
    use cg_trace::ResourceLimits;

    fn test_config(tag: &str) -> EvalConfig {
        let dir = std::env::temp_dir().join(format!("cgtd-eval-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EvalConfig {
            cache_dir: dir,
            memoize: true,
            max_upload_bytes: 64 << 20,
            shard_min_bytes: 4 << 20,
        };
        config.prepare().expect("prepare");
        config
    }

    /// A tiny but real `.cgt` stream: record one workload at size 1.
    fn small_trace_bytes() -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!("cgtd-eval-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("jess-s1.cgt");
        if !path.exists() {
            let workload = cg_workloads::Workload::by_name("jess").expect("jess exists");
            cg_bench::record_workload_trace_to_path(workload, cg_workloads::Size::S1, None, &path)
                .expect("record");
        }
        std::fs::read(&path).expect("read trace")
    }

    fn frame_body(bytes: &[u8]) -> Vec<u8> {
        let mut framed = Vec::new();
        write_session_body(&mut io::Cursor::new(bytes), &mut framed).expect("frame");
        framed
    }

    #[test]
    fn evaluates_then_memoizes_byte_identically() {
        let config = test_config("memo");
        let governor = Governor::new(ResourceLimits::untrusted());
        let bytes = small_trace_bytes();

        let mut first = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let a = evaluate_session(&mut first, &governor, &config).expect("first eval");
        assert!(!a.cached);
        assert!(a.events > 0);
        assert!(a.text.starts_with("events "));
        assert!(a.text.contains("cg.objects_created"), "{}", a.text);

        let mut second = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let b = evaluate_session(&mut second, &governor, &config).expect("second eval");
        assert!(b.cached, "repeat upload answered from cache");
        assert_eq!(a.text, b.text, "cached answer is byte-identical");

        // No spool leftovers.
        let leftovers = std::fs::read_dir(config.cache_dir.join("uploads"))
            .expect("uploads dir")
            .count();
        assert_eq!(leftovers, 0, "spools are always reclaimed");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn corrupt_stream_reports_corrupt_class() {
        let config = test_config("corrupt");
        let governor = Governor::new(ResourceLimits::untrusted());
        let mut bytes = small_trace_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        let mut body = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let err = evaluate_session(&mut body, &governor, &config).expect_err("corrupt");
        assert_eq!(err.class(), ErrorClass::Corrupt, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn event_budget_trips_limit_class() {
        let config = test_config("limit");
        let governor = Governor::new(ResourceLimits::parse("events=10").expect("spec"));
        let bytes = small_trace_bytes();
        let mut body = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let err = evaluate_session(&mut body, &governor, &config).expect_err("limited");
        assert_eq!(err.class(), ErrorClass::Limit, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn upload_cap_trips_before_disk_fills() {
        let config = EvalConfig {
            max_upload_bytes: 1024,
            ..test_config("cap")
        };
        let governor = Governor::new(ResourceLimits::untrusted());
        let mut framed = Vec::new();
        for _ in 0..10 {
            cg_trace::proto::write_frame(&mut framed, &Frame::Data(vec![0u8; 512])).unwrap();
        }
        cg_trace::proto::write_frame(&mut framed, &Frame::End).unwrap();
        let mut body = SessionReader::new(io::Cursor::new(framed));
        let err = evaluate_session(&mut body, &governor, &config).expect_err("capped");
        assert_eq!(err.class(), ErrorClass::Limit, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    /// The invariant of the whole PR: sharded and streamed evaluations of
    /// the same trace answer byte-identically to the single-shard path.
    #[test]
    fn sharded_and_streamed_answers_match_single_shard_byte_for_byte() {
        let config = EvalConfig {
            memoize: false,
            ..test_config("identity")
        };
        let bytes = small_trace_bytes();

        let mut single = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let governor = Governor::new(ResourceLimits::untrusted());
        let reference = evaluate_session(&mut single, &governor, &config).expect("single");
        assert_eq!(reference.shards, 1, "small upload stays single-shard");

        // Sharded: force the route with a zero size floor and a 4-shard
        // budget.
        let sharded_config = EvalConfig {
            shard_min_bytes: 0,
            ..config.clone()
        };
        let governor = Governor::new(ResourceLimits::parse("shards=4").expect("spec"));
        let mut body = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let sharded = evaluate_session(&mut body, &governor, &sharded_config).expect("sharded");
        assert_eq!(sharded.shards, 4, "the sharded route honors the budget");
        assert_eq!(
            sharded.text, reference.text,
            "sharded answer is byte-identical"
        );
        assert_eq!(sharded.events, reference.events);

        // Streamed: same bytes through the incremental evaluator.
        let governor = Governor::new(ResourceLimits::untrusted());
        let body = SessionReader::new(io::Cursor::new(frame_body(&bytes)));
        let mut frames = 0u32;
        let mut last = (0u64, 0u64);
        let streamed = evaluate_stream_session(body, &governor, &config, |events, bytes| {
            frames += 1;
            assert!(
                (events, bytes) >= last,
                "progress is monotonic: {last:?} then ({events}, {bytes})"
            );
            last = (events, bytes);
            Ok(())
        })
        .expect("streamed");
        assert_eq!(
            streamed.text, reference.text,
            "streamed answer is byte-identical"
        );
        assert!(frames >= 1, "at least the post-header progress frame fires");
        assert!(!streamed.cached, "live streams bypass the result cache");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn stream_exceeding_event_budget_trips_limit_mid_flight() {
        let config = test_config("stream-limit");
        let governor = Governor::new(ResourceLimits::parse("events=10").expect("spec"));
        let body = SessionReader::new(io::Cursor::new(frame_body(&small_trace_bytes())));
        let err =
            evaluate_stream_session(body, &governor, &config, |_, _| Ok(())).expect_err("limited");
        assert_eq!(err.class(), ErrorClass::Limit, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn stream_disconnect_mid_body_is_a_protocol_error() {
        let config = test_config("stream-disconnect");
        let governor = Governor::new(ResourceLimits::untrusted());
        let bytes = small_trace_bytes();
        let mut framed = Vec::new();
        write_session_body(&mut io::Cursor::new(&bytes[..]), &mut framed).expect("frame");
        framed.truncate(framed.len() / 2); // the client vanished mid-stream
        let body = SessionReader::new(io::Cursor::new(framed));
        let err =
            evaluate_stream_session(body, &governor, &config, |_, _| Ok(())).expect_err("gone");
        assert_eq!(err.class(), ErrorClass::Protocol, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn stream_upload_cap_trips_limit() {
        let config = EvalConfig {
            max_upload_bytes: 512,
            ..test_config("stream-cap")
        };
        let governor = Governor::new(ResourceLimits::untrusted());
        let body = SessionReader::new(io::Cursor::new(frame_body(&small_trace_bytes())));
        let err =
            evaluate_stream_session(body, &governor, &config, |_, _| Ok(())).expect_err("capped");
        assert_eq!(err.class(), ErrorClass::Limit, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn shard_failure_preserves_partial_stats_in_the_error() {
        // A 4-shard budget but a tiny event budget: at least one shard
        // trips the governor while others may complete; either way the
        // failure must carry the Shard-or-Limit structure, not a panic.
        let config = EvalConfig {
            shard_min_bytes: 0,
            memoize: false,
            ..test_config("shard-partial")
        };
        let governor = Governor::new(ResourceLimits::parse("shards=4,events=10").expect("spec"));
        let mut body = SessionReader::new(io::Cursor::new(frame_body(&small_trace_bytes())));
        let err = evaluate_session(&mut body, &governor, &config).expect_err("limited");
        assert_eq!(err.class(), ErrorClass::Limit, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn disconnect_mid_body_is_a_protocol_error() {
        let config = test_config("disconnect");
        let governor = Governor::new(ResourceLimits::untrusted());
        let mut framed = Vec::new();
        cg_trace::proto::write_frame(&mut framed, &Frame::Data(vec![1, 2, 3])).unwrap();
        // No END frame: the client vanished.
        let mut body = SessionReader::new(io::Cursor::new(framed));
        let err = evaluate_session(&mut body, &governor, &config).expect_err("gone");
        assert_eq!(err.class(), ErrorClass::Protocol, "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }
}
