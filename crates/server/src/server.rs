//! The daemon itself: TCP accept loop, per-connection handshake, and the
//! fixed worker pool that runs sessions.
//!
//! Threading model:
//!
//! * one **acceptor** (the thread that calls [`Server::run`]);
//! * a short-lived **handshake** thread per connection, bounded in count,
//!   which reads the preamble and first frame, answers metrics scrapes
//!   inline, and hands submissions to the scheduler (or bounces BUSY);
//! * `workers` long-lived **evaluator** threads that each own one session
//!   at a time — admission control [`crate::scheduler::Scheduler`] is the
//!   only queue, so memory and concurrency are bounded by construction.
//!
//! A worker slot can never be held hostage: every socket read carries the
//! idle timeout, and the per-tenant governor deadline covers the whole
//! session (upload included), so torn frames, slowloris drips and
//! mid-stream disconnects all surface as structured errors and free the
//! slot.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cg_trace::proto::{read_frame, read_preamble, write_frame, ErrorClass, Frame, SessionReader};
use cg_trace::{Governor, ResourceLimits};

use crate::eval::{evaluate_session, evaluate_stream_session, serving_shards, EvalConfig};
use crate::metrics::{Metrics, SessionShape};
use crate::scheduler::{QueuedSession, Scheduler, SessionKind};

/// Longest tenant name the daemon accepts.
pub const MAX_TENANT_LEN: usize = 64;

/// Everything a `cgtd` needs to know before binding.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Evaluator threads — the fixed worker pool size.
    pub workers: usize,
    /// Max sessions queued per tenant (beyond running ones).
    pub tenant_queue: usize,
    /// Max sessions queued across all tenants; `0` means `workers * 4`.
    pub global_queue: usize,
    /// Budget for tenants without an explicit entry in `tenant_limits`.
    pub default_limits: ResourceLimits,
    /// Per-tenant budget overrides.
    pub tenant_limits: HashMap<String, ResourceLimits>,
    /// Hard cap on one session's uploaded bytes.
    pub max_upload_bytes: u64,
    /// Smallest upload routed through the sharded evaluator (when the
    /// tenant's `shards` budget allows ≥ 2).
    pub shard_min_bytes: u64,
    /// Socket read/write timeout — a silent peer is cut off after this.
    pub idle_timeout: Duration,
    /// Spool/result-cache root; `None` means `<trace cache dir>/cgtd`.
    pub cache_dir: Option<PathBuf>,
    /// Memoize repeated uploads through the disk result cache.
    pub memoize: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4270".to_string(),
            workers: 4,
            tenant_queue: 4,
            global_queue: 0,
            // Sharded serving is an explicit grant: the stock daemon
            // evaluates single-shard (and admits every upload at weight 1)
            // until the operator widens `shards` via `--limits`/`--tenant`.
            default_limits: ResourceLimits {
                max_shards: Some(1),
                ..ResourceLimits::untrusted()
            },
            tenant_limits: HashMap::new(),
            max_upload_bytes: 256 << 20,
            shard_min_bytes: 4 << 20,
            idle_timeout: Duration::from_secs(30),
            cache_dir: None,
            memoize: true,
        }
    }
}

/// Shared state between acceptor, handshake threads and workers.
#[derive(Debug)]
struct Shared {
    scheduler: Scheduler,
    metrics: Metrics,
    eval: EvalConfig,
    default_limits: ResourceLimits,
    tenant_limits: HashMap<String, ResourceLimits>,
    idle_timeout: Duration,
    shutdown: AtomicBool,
    handshakes: AtomicUsize,
    handshake_cap: usize,
}

impl Shared {
    fn limits_for(&self, tenant: &str) -> ResourceLimits {
        self.tenant_limits
            .get(tenant)
            .copied()
            .unwrap_or(self.default_limits)
    }
}

/// A handle for observing and stopping a running [`Server`] from another
/// thread (tests, signal handlers).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Sessions currently queued.
    pub fn queue_depth(&self) -> usize {
        self.shared.scheduler.depth()
    }

    /// Asks the server to stop: new submissions bounce, queued sessions
    /// drain, workers then exit and [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.scheduler.close();
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound, not-yet-running daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

impl Server {
    /// Binds the listen socket and prepares the cache directories.
    ///
    /// # Errors
    ///
    /// Bind or cache-directory failures.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let workers = config.workers.max(1);
        let global_queue = if config.global_queue == 0 {
            workers * 4
        } else {
            config.global_queue
        };
        let eval = EvalConfig {
            cache_dir: config
                .cache_dir
                .unwrap_or_else(|| cg_bench::trace_cache_dir().join("cgtd")),
            memoize: config.memoize,
            max_upload_bytes: config.max_upload_bytes,
            shard_min_bytes: config.shard_min_bytes,
        };
        eval.prepare()?;
        let shared = Arc::new(Shared {
            scheduler: Scheduler::new(global_queue, config.tenant_queue),
            metrics: Metrics::new(workers),
            eval,
            default_limits: config.default_limits,
            tenant_limits: config.tenant_limits,
            idle_timeout: config.idle_timeout,
            shutdown: AtomicBool::new(false),
            handshakes: AtomicUsize::new(0),
            // Enough for every queue slot plus every worker to have a
            // connection mid-handshake, with headroom for metrics scrapes.
            handshake_cap: global_queue + workers + 16,
        });
        Ok(Server {
            listener,
            shared,
            workers,
        })
    }

    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle, cloneable across threads.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.local_addr()?,
        })
    }

    /// Runs the daemon on the calling thread until [`ServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures only; per-connection trouble is handled
    /// (and counted) internally.
    pub fn run(self) -> io::Result<()> {
        let mut workers = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let shared = Arc::clone(&self.shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cgtd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(stream) => stream,
                // Transient accept errors (EMFILE, resets) must not kill
                // the daemon.
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            if shared.handshakes.fetch_add(1, Ordering::SeqCst) >= shared.handshake_cap {
                shared.handshakes.fetch_sub(1, Ordering::SeqCst);
                reject_overload(stream, &shared);
                continue;
            }
            let spawned = std::thread::Builder::new()
                .name("cgtd-handshake".to_string())
                .spawn(move || {
                    handshake(stream, &shared);
                    shared.handshakes.fetch_sub(1, Ordering::SeqCst);
                });
            if spawned.is_err() {
                self.shared.handshakes.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.shared.scheduler.close();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Over the handshake cap: answer BUSY without spawning anything.
fn reject_overload(stream: TcpStream, shared: &Shared) {
    shared.metrics.on_busy_overload();
    let mut writer = BufWriter::new(stream);
    let _ = write_frame(
        &mut writer,
        &Frame::Busy {
            reason: "too many connections".to_string(),
        },
    );
    let _ = writer.flush();
}

/// Reads the preamble and first frame; dispatches to metrics or admission.
fn handshake(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let _ = stream.set_write_timeout(Some(shared.idle_timeout));
    let reader_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);

    let refuse = |writer: &mut BufWriter<TcpStream>, message: String| {
        shared.metrics.on_handshake_error();
        let _ = write_frame(
            writer,
            &Frame::Error {
                class: ErrorClass::Protocol,
                message,
            },
        );
        let _ = writer.flush();
    };

    if let Err(e) = read_preamble(&mut reader) {
        refuse(&mut writer, e.to_string());
        return;
    }
    match read_frame(&mut reader) {
        Ok(Some(Frame::Metrics)) => {
            let text = shared.metrics.render(&shared.scheduler.depths());
            let _ = write_frame(&mut writer, &Frame::MetricsReply { text });
            let _ = writer.flush();
        }
        Ok(Some(Frame::Submit { tenant })) => {
            admit(reader, writer, shared, tenant, SessionKind::Upload);
        }
        Ok(Some(Frame::Stream { tenant })) => {
            admit(reader, writer, shared, tenant, SessionKind::Stream);
        }
        Ok(Some(_)) => refuse(
            &mut writer,
            "expected SUBMIT, STREAM or METRICS".to_string(),
        ),
        Ok(None) => shared.metrics.on_handshake_error(),
        Err(e) => refuse(&mut writer, e.to_string()),
    }
}

/// Validates the tenant name and hands the connection to the scheduler
/// (or bounces BUSY).  The session is charged its worker-equivalent
/// weight at admission: the tenant's serving shard budget for uploads,
/// one slot for live streams, which always evaluate single-threaded.
fn admit(
    reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
    shared: &Shared,
    tenant: String,
    kind: SessionKind,
) {
    let refuse = |writer: &mut BufWriter<TcpStream>, message: String| {
        shared.metrics.on_handshake_error();
        let _ = write_frame(
            writer,
            &Frame::Error {
                class: ErrorClass::Protocol,
                message,
            },
        );
        let _ = writer.flush();
    };
    if tenant.is_empty()
        || tenant.len() > MAX_TENANT_LEN
        || !tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
    {
        refuse(
            &mut writer,
            format!(
                "tenant names are 1..={MAX_TENANT_LEN} ascii \
                 alphanumeric/dash/underscore/dot characters"
            ),
        );
        return;
    }
    // Reunite the halves: the worker owns the whole socket.  Any
    // bytes the buffered reader pulled past the SUBMIT frame (a
    // client that streamed without waiting for ACCEPTED) travel
    // with the session so nothing is swallowed.
    let leftover = reader.buffer().to_vec();
    drop(reader);
    let stream = match writer.into_inner() {
        Ok(stream) => stream,
        Err(_) => return,
    };
    // Keep a reply handle: on rejection the session (and its
    // socket) has been consumed by value.
    let reply = stream.try_clone().ok();
    let slots = match kind {
        SessionKind::Upload => serving_shards(&shared.limits_for(&tenant)),
        SessionKind::Stream => 1,
    };
    if let Err(rejected) = shared.scheduler.try_enqueue(QueuedSession {
        tenant: tenant.clone(),
        stream,
        leftover,
        kind,
        slots,
    }) {
        shared.metrics.on_busy(&tenant);
        if let Some(reply) = reply {
            let mut writer = BufWriter::new(reply);
            let _ = write_frame(
                &mut writer,
                &Frame::Busy {
                    reason: rejected.reason(),
                },
            );
            let _ = writer.flush();
        }
    }
}

/// One evaluator thread: pull, run, repeat until the scheduler closes.
fn worker_loop(shared: &Shared) {
    while let Some(session) = shared.scheduler.dequeue() {
        shared.metrics.on_session_start(&session.tenant);
        run_session(session, shared);
    }
}

/// Runs one admitted session to its response frame.
fn run_session(session: QueuedSession, shared: &Shared) {
    let QueuedSession {
        tenant,
        stream,
        leftover,
        kind,
        slots: _,
    } = session;
    let started = Instant::now();
    let governor = Governor::new(shared.limits_for(&tenant));

    let outcome = (|| -> Result<_, crate::eval::SessionError> {
        let reader_stream = stream.try_clone().map_err(crate::eval::SessionError::Io)?;
        let mut writer = BufWriter::new(stream);
        write_frame(&mut writer, &Frame::Accepted)
            .and_then(|()| writer.flush())
            .map_err(crate::eval::SessionError::Io)?;
        // Bytes buffered during the handshake come first, then the socket.
        let source = io::Cursor::new(leftover).chain(reader_stream);
        let result = match kind {
            SessionKind::Upload => {
                let mut body = SessionReader::new(BufReader::new(source));
                evaluate_session(&mut body, &governor, &shared.eval)
            }
            SessionKind::Stream => {
                let body = SessionReader::new(BufReader::new(source));
                evaluate_stream_session(body, &governor, &shared.eval, |events, bytes| {
                    write_frame(&mut writer, &Frame::Progress { events, bytes })?;
                    writer.flush()
                })
            }
        };
        Ok((writer, result))
    })();

    match outcome {
        Ok((mut writer, Ok(result))) => {
            shared.metrics.on_session_ok(
                &tenant,
                result.events,
                started.elapsed(),
                SessionShape {
                    cached: result.cached,
                    shards: result.shards,
                    streamed: kind == SessionKind::Stream,
                },
            );
            let _ = write_frame(
                &mut writer,
                &Frame::Stats {
                    cached: result.cached,
                    text: result.text,
                },
            );
            let _ = writer.flush();
        }
        Ok((mut writer, Err(e))) => {
            shared
                .metrics
                .on_session_error(&tenant, e.class(), started.elapsed());
            let _ = write_frame(
                &mut writer,
                &Frame::Error {
                    class: e.class(),
                    message: e.to_string(),
                },
            );
            let _ = writer.flush();
        }
        Err(e) => {
            // Could not even greet the client (it is usually gone).
            shared
                .metrics
                .on_session_error(&tenant, e.class(), started.elapsed());
        }
    }
}

/// Binds and runs a server on a background thread; returns the handle and
/// the join handle.  The convenience entry point for tests and `cgtd`.
///
/// # Errors
///
/// Propagates [`Server::bind`] failures.
pub fn spawn(config: ServerConfig) -> io::Result<(ServerHandle, std::thread::JoinHandle<()>)> {
    let server = Server::bind(config)?;
    let handle = server.handle()?;
    let join = std::thread::Builder::new()
        .name("cgtd-acceptor".to_string())
        .spawn(move || {
            let _ = server.run();
        })?;
    Ok((handle, join))
}
