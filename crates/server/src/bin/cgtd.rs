//! `cgtd` — serve contaminated-GC trace evaluation over TCP.
//!
//! ```text
//! cgtd [--addr HOST:PORT] [--workers N] [--tenant-queue N]
//!      [--global-queue N] [--limits SPEC] [--tenant NAME=SPEC]...
//!      [--max-upload-mib N] [--shard-min-kib N] [--idle-timeout-ms N]
//!      [--cache-dir PATH] [--no-memoize] [--addr-file PATH]
//! ```
//!
//! `SPEC` is the `cgt`-style limits spec, e.g.
//! `events=50000000,heap-mib=1024,deadline-ms=60000`; an empty spec means
//! the conservative untrusted-input defaults.  `--tenant` overrides the
//! default budget for one tenant and may repeat.  `--addr 127.0.0.1:0`
//! picks an ephemeral port; `--addr-file` writes the bound address to a
//! file so scripts can find it.  `--shard-min-kib` sets the smallest
//! upload routed through the sharded evaluator when the tenant's `shards`
//! budget allows it (default 4096 KiB; `0` shards everything).

use std::process::ExitCode;
use std::time::Duration;

use cg_server::{Server, ServerConfig};
use cg_trace::ResourceLimits;

fn usage() -> ! {
    eprintln!(
        "usage: cgtd [--addr HOST:PORT] [--workers N] [--tenant-queue N]\n\
         \x20           [--global-queue N] [--limits SPEC] [--tenant NAME=SPEC]...\n\
         \x20           [--max-upload-mib N] [--shard-min-kib N] [--idle-timeout-ms N]\n\
         \x20           [--cache-dir PATH] [--no-memoize] [--addr-file PATH]"
    );
    std::process::exit(2);
}

fn parse_num(flag: &str, value: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("cgtd: {flag} wants a number, got '{value}'");
        usage();
    })
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut addr_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("cgtd: {flag} wants a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value_of("--addr"),
            "--workers" => config.workers = parse_num("--workers", &value_of("--workers")) as usize,
            "--tenant-queue" => {
                config.tenant_queue =
                    parse_num("--tenant-queue", &value_of("--tenant-queue")) as usize;
            }
            "--global-queue" => {
                config.global_queue =
                    parse_num("--global-queue", &value_of("--global-queue")) as usize;
            }
            "--limits" => {
                let spec = value_of("--limits");
                config.default_limits = match ResourceLimits::parse(&spec) {
                    Ok(limits) => limits,
                    Err(e) => {
                        eprintln!("cgtd: --limits: {e}");
                        usage();
                    }
                };
            }
            "--tenant" => {
                let pair = value_of("--tenant");
                let Some((name, spec)) = pair.split_once('=') else {
                    eprintln!("cgtd: --tenant wants NAME=SPEC, got '{pair}'");
                    usage();
                };
                match ResourceLimits::parse(spec) {
                    Ok(limits) => {
                        config.tenant_limits.insert(name.to_string(), limits);
                    }
                    Err(e) => {
                        eprintln!("cgtd: --tenant {name}: {e}");
                        usage();
                    }
                }
            }
            "--max-upload-mib" => {
                config.max_upload_bytes =
                    parse_num("--max-upload-mib", &value_of("--max-upload-mib")) << 20;
            }
            "--shard-min-kib" => {
                config.shard_min_bytes =
                    parse_num("--shard-min-kib", &value_of("--shard-min-kib")) << 10;
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = Duration::from_millis(parse_num(
                    "--idle-timeout-ms",
                    &value_of("--idle-timeout-ms"),
                ));
            }
            "--cache-dir" => config.cache_dir = Some(value_of("--cache-dir").into()),
            "--no-memoize" => config.memoize = false,
            "--addr-file" => addr_file = Some(value_of("--addr-file")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("cgtd: unknown flag '{other}'");
                usage();
            }
        }
    }
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cgtd: bind failed: {e}");
            return ExitCode::from(6);
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("cgtd: no local address: {e}");
            return ExitCode::from(6);
        }
    };
    if let Some(path) = addr_file {
        if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
            eprintln!("cgtd: cannot write --addr-file {path}: {e}");
            return ExitCode::from(6);
        }
    }
    println!("cgtd listening on {addr}");
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cgtd: {e}");
            ExitCode::FAILURE
        }
    }
}
