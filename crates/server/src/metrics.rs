//! Daemon counters and the plaintext `/metrics`-style rendering.
//!
//! Everything is behind one mutex: sessions touch the metrics a handful of
//! times each (admission, start, finish), so contention is negligible next
//! to an evaluation, and a single lock keeps the snapshot consistent —
//! `render` never shows a session that is both queued and finished.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cg_trace::proto::{ErrorClass, ERROR_CLASSES};

/// Per-tenant counters.  Queue depths are *not* counted here — they are
/// snapshotted from the scheduler at render time, so the queue's own lock
/// is the single source of truth and the numbers can never drift.
#[derive(Debug, Default, Clone)]
pub struct TenantMetrics {
    /// Sessions finished (successfully or not).
    pub sessions: u64,
    /// Sessions currently being evaluated.
    pub active: u64,
    /// Events replayed across all finished sessions.
    pub events: u64,
    /// Wall-clock spent evaluating (spool + replay), for the events/s rate.
    pub busy: Duration,
    /// Sessions that ended in an error, by class.
    pub errors: u64,
    /// Submissions bounced with BUSY (the backpressure path).
    pub busy_rejected: u64,
    /// Sessions answered from the memoized result cache.
    pub cache_hits: u64,
    /// Uploads evaluated on the sharded (multi-thread) path.
    pub sharded: u64,
    /// Live `STREAM` sessions evaluated incrementally.
    pub streamed: u64,
}

impl TenantMetrics {
    /// Events per second of evaluation wall-clock, zero before any work.
    pub fn events_per_sec(&self) -> u64 {
        let secs = self.busy.as_secs_f64();
        if secs <= 0.0 {
            return 0;
        }
        (self.events as f64 / secs) as u64
    }
}

#[derive(Debug, Default)]
struct Inner {
    sessions_total: u64,
    sessions_active: u64,
    busy_rejected: u64,
    cache_hits: u64,
    sessions_sharded: u64,
    sessions_streamed: u64,
    errors: BTreeMap<&'static str, u64>,
    tenants: BTreeMap<String, TenantMetrics>,
}

/// How a finished session was evaluated, for the counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionShape {
    /// Answered from the memoized result cache.
    pub cached: bool,
    /// Shard threads the evaluation used (1 = single-shard path).
    pub shards: usize,
    /// Evaluated incrementally as a live `STREAM` session.
    pub streamed: bool,
}

/// Shared daemon counters; cheap to clone behind an `Arc`.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    workers: usize,
    inner: Mutex<Inner>,
}

impl Metrics {
    /// Fresh counters for a daemon with `workers` evaluation slots.
    pub fn new(workers: usize) -> Self {
        Self {
            started: Instant::now(),
            workers,
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A submission was bounced with BUSY.
    pub fn on_busy(&self, tenant: &str) {
        let mut inner = self.lock();
        inner.busy_rejected += 1;
        inner
            .tenants
            .entry(tenant.to_string())
            .or_default()
            .busy_rejected += 1;
    }

    /// A connection was bounced before it even named a tenant (the
    /// handshake-thread cap): counted globally only.
    pub fn on_busy_overload(&self) {
        self.lock().busy_rejected += 1;
    }

    /// A worker picked the session up.
    pub fn on_session_start(&self, tenant: &str) {
        let mut inner = self.lock();
        inner.sessions_active += 1;
        inner.tenants.entry(tenant.to_string()).or_default().active += 1;
    }

    /// The session finished successfully.
    pub fn on_session_ok(&self, tenant: &str, events: u64, busy: Duration, shape: SessionShape) {
        let mut inner = self.lock();
        inner.sessions_total += 1;
        inner.sessions_active = inner.sessions_active.saturating_sub(1);
        if shape.cached {
            inner.cache_hits += 1;
        }
        if shape.shards >= 2 {
            inner.sessions_sharded += 1;
        }
        if shape.streamed {
            inner.sessions_streamed += 1;
        }
        let t = inner.tenants.entry(tenant.to_string()).or_default();
        t.active = t.active.saturating_sub(1);
        t.sessions += 1;
        t.events += events;
        t.busy += busy;
        if shape.cached {
            t.cache_hits += 1;
        }
        if shape.shards >= 2 {
            t.sharded += 1;
        }
        if shape.streamed {
            t.streamed += 1;
        }
    }

    /// The session failed with `class`.
    pub fn on_session_error(&self, tenant: &str, class: ErrorClass, busy: Duration) {
        let mut inner = self.lock();
        inner.sessions_total += 1;
        inner.sessions_active = inner.sessions_active.saturating_sub(1);
        *inner.errors.entry(class.name()).or_default() += 1;
        let t = inner.tenants.entry(tenant.to_string()).or_default();
        t.active = t.active.saturating_sub(1);
        t.sessions += 1;
        t.errors += 1;
        t.busy += busy;
    }

    /// A connection died before (or instead of) submitting a session —
    /// counted globally under the protocol class, no tenant to bill.
    pub fn on_handshake_error(&self) {
        let mut inner = self.lock();
        *inner.errors.entry(ErrorClass::Protocol.name()).or_default() += 1;
    }

    /// Snapshot of one tenant's counters (None if never seen).
    pub fn tenant(&self, tenant: &str) -> Option<TenantMetrics> {
        self.lock().tenants.get(tenant).cloned()
    }

    /// Total sessions finished.
    pub fn sessions_total(&self) -> u64 {
        self.lock().sessions_total
    }

    /// Sessions currently evaluating.
    pub fn sessions_active(&self) -> u64 {
        self.lock().sessions_active
    }

    /// Total BUSY bounces.
    pub fn busy_rejected(&self) -> u64 {
        self.lock().busy_rejected
    }

    /// Total memoized answers.
    pub fn cache_hits(&self) -> u64 {
        self.lock().cache_hits
    }

    /// Total uploads evaluated on the sharded path.
    pub fn sessions_sharded(&self) -> u64 {
        self.lock().sessions_sharded
    }

    /// Total live streams evaluated.
    pub fn sessions_streamed(&self) -> u64 {
        self.lock().sessions_streamed
    }

    /// Total errors of one class.
    pub fn errors_of(&self, class: ErrorClass) -> u64 {
        self.lock().errors.get(class.name()).copied().unwrap_or(0)
    }

    /// The plaintext snapshot served in `METRICS_REPLY` frames: one
    /// `key value` per line, keys stable, tenants sorted.  `queues` is the
    /// scheduler's per-tenant queue-depth snapshot taken at render time.
    pub fn render(&self, queues: &BTreeMap<String, usize>) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let _ = writeln!(out, "cgtd.uptime_secs {}", self.started.elapsed().as_secs());
        let _ = writeln!(out, "cgtd.workers {}", self.workers);
        let _ = writeln!(out, "cgtd.sessions_total {}", inner.sessions_total);
        let _ = writeln!(out, "cgtd.sessions_active {}", inner.sessions_active);
        let queued: usize = queues.values().sum();
        let _ = writeln!(out, "cgtd.queue_depth {queued}");
        let _ = writeln!(out, "cgtd.busy_rejected {}", inner.busy_rejected);
        let _ = writeln!(out, "cgtd.cache_hits {}", inner.cache_hits);
        let _ = writeln!(out, "cgtd.sessions_sharded {}", inner.sessions_sharded);
        let _ = writeln!(out, "cgtd.sessions_streamed {}", inner.sessions_streamed);
        for class in ERROR_CLASSES {
            let n = inner.errors.get(class.name()).copied().unwrap_or(0);
            let _ = writeln!(out, "cgtd.errors.{} {n}", class.name());
        }
        // A tenant that is only queued (never finished a session) still
        // shows up, so dashboards see it the moment it submits.
        let mut names: Vec<&str> = inner.tenants.keys().map(String::as_str).collect();
        for name in queues.keys() {
            if !inner.tenants.contains_key(name) {
                names.push(name);
            }
        }
        names.sort_unstable();
        names.dedup();
        let empty = TenantMetrics::default();
        for name in names {
            let t = inner.tenants.get(name).unwrap_or(&empty);
            let depth = queues.get(name).copied().unwrap_or(0);
            let _ = writeln!(out, "tenant.{name}.sessions {}", t.sessions);
            let _ = writeln!(out, "tenant.{name}.queue_depth {depth}");
            let _ = writeln!(out, "tenant.{name}.active {}", t.active);
            let _ = writeln!(out, "tenant.{name}.events {}", t.events);
            let _ = writeln!(out, "tenant.{name}.events_per_sec {}", t.events_per_sec());
            let _ = writeln!(out, "tenant.{name}.errors {}", t.errors);
            let _ = writeln!(out, "tenant.{name}.busy_rejected {}", t.busy_rejected);
            let _ = writeln!(out, "tenant.{name}.cache_hits {}", t.cache_hits);
            let _ = writeln!(out, "tenant.{name}.sharded {}", t.sharded);
            let _ = writeln!(out, "tenant.{name}.streamed {}", t.streamed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable_and_complete() {
        let m = Metrics::new(3);
        m.on_session_start("acme");
        m.on_session_ok(
            "acme",
            1000,
            Duration::from_millis(10),
            SessionShape {
                shards: 4,
                ..SessionShape::default()
            },
        );
        m.on_busy("acme");
        m.on_session_start("acme");
        m.on_session_ok(
            "acme",
            500,
            Duration::from_millis(5),
            SessionShape {
                streamed: true,
                shards: 1,
                cached: false,
            },
        );
        m.on_session_start("zeta");
        m.on_session_error("zeta", ErrorClass::Limit, Duration::from_millis(1));
        let queues = BTreeMap::from([("acme".to_string(), 2usize), ("idle".to_string(), 1)]);
        let text = m.render(&queues);
        for needle in [
            "cgtd.workers 3",
            "cgtd.sessions_total 3",
            "cgtd.sessions_active 0",
            "cgtd.queue_depth 3",
            "cgtd.busy_rejected 1",
            "cgtd.errors.limit 1",
            "cgtd.sessions_sharded 1",
            "cgtd.sessions_streamed 1",
            "tenant.acme.sessions 2",
            "tenant.acme.queue_depth 2",
            "tenant.acme.events 1500",
            "tenant.acme.busy_rejected 1",
            "tenant.acme.sharded 1",
            "tenant.acme.streamed 1",
            "tenant.idle.queue_depth 1",
            "tenant.zeta.errors 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Rate: 1000 events in 10ms ≈ 100k/s.
        assert!(m.tenant("acme").unwrap().events_per_sec() > 50_000);
    }
}
