//! `cgtd` — a concurrent trace-evaluation daemon for contaminated GC.
//!
//! The streaming `.cgt` format (bounded-memory record/replay) plus the
//! resource governor (`ResourceLimits`/`Governor`/`EvalError`) make trace
//! evaluation a server-shaped problem: this crate turns "replay a
//! benchmark" into "serve heavy traffic".  A long-running TCP daemon
//! accepts concurrent `.cgt` uploads and live event streams over the
//! length-prefixed, CRC'd frame protocol in [`cg_trace::proto`], schedules
//! sessions across a fixed worker pool with bounded per-tenant queues
//! (explicit BUSY backpressure, never unbounded buffering), evaluates each
//! trace under per-tenant budgets via the governed replay paths, memoizes
//! repeated workloads through the disk cache, and answers plaintext
//! `/metrics`-style scrapes.
//!
//! ```no_run
//! use cg_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! println!("cgtd listening on {}", server.local_addr()?);
//! server.run()?;
//! # std::io::Result::Ok(())
//! ```
//!
//! Clients are two functions away: `cg_trace::proto::submit_path` uploads
//! a file and returns the canonical stats, `fetch_metrics` scrapes the
//! counters — or use `cgt submit` / `cgt metrics` from the command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod metrics;
pub mod scheduler;
pub mod server;

pub use eval::{evaluate_session, EvalConfig, SessionError, SessionResult};
pub use metrics::{Metrics, TenantMetrics};
pub use scheduler::{QueuedSession, Rejected, Scheduler};
pub use server::{spawn, Server, ServerConfig, ServerHandle, MAX_TENANT_LEN};
