//! The fixed worker pool's admission queue: a global FIFO with a hard
//! global bound and a per-tenant bound, both measured in
//! **worker-equivalent slots**.
//!
//! Backpressure is explicit and immediate — [`Scheduler::try_enqueue`]
//! never blocks and never buffers beyond the bounds; a full queue is a
//! `Busy` answer the client can retry, not an unbounded `VecDeque`.  The
//! queued item is the accepted connection itself, so a queued session
//! costs one socket and a tenant string, not trace bytes.
//!
//! A sharded session occupies [`QueuedSession::slots`] OS threads at
//! dequeue, not one, so admission charges that many slots against both
//! bounds — a tenant with a wide `shards` budget queues proportionally
//! fewer sessions instead of monopolizing the machine.  The first session
//! of a tenant (or of an empty queue) is always admissible even when its
//! weight alone exceeds the bound; otherwise a budget wider than the
//! queue could never be served at all.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

/// What kind of session a worker is about to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// A complete `.cgt` upload (`SUBMIT`): spooled, memoized, possibly
    /// sharded.
    Upload,
    /// A live event stream (`STREAM`): evaluated incrementally with
    /// periodic `PROGRESS` frames.
    Stream,
}

/// One admitted session waiting for (or held by) a worker.
#[derive(Debug)]
pub struct QueuedSession {
    /// The tenant it is accounted under.
    pub tenant: String,
    /// The client connection, positioned just after its `SUBMIT` frame.
    pub stream: TcpStream,
    /// Bytes the handshake's buffered reader pulled off the socket past
    /// the `SUBMIT` frame (a client that streamed without waiting for
    /// `ACCEPTED`); the worker consumes these before the socket.
    pub leftover: Vec<u8>,
    /// Upload or live stream.
    pub kind: SessionKind,
    /// Worker-equivalent slots this session occupies when dequeued: the
    /// tenant's serving shard budget for uploads, 1 for live streams
    /// (which always evaluate single-threaded).  Charged against both
    /// admission bounds; values below 1 are treated as 1.
    pub slots: usize,
}

impl QueuedSession {
    fn weight(&self) -> usize {
        self.slots.max(1)
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The global queue is at capacity.
    GlobalFull {
        /// The configured global bound.
        cap: usize,
    },
    /// This tenant's queue is at capacity.
    TenantFull {
        /// The configured per-tenant bound.
        cap: usize,
    },
    /// The daemon is shutting down.
    ShuttingDown,
}

impl Rejected {
    /// The operator-facing reason string carried in the BUSY frame.
    pub fn reason(&self) -> String {
        match self {
            Rejected::GlobalFull { cap } => format!("global queue full ({cap}/{cap})"),
            Rejected::TenantFull { cap } => format!("tenant queue full ({cap}/{cap})"),
            Rejected::ShuttingDown => "shutting down".to_string(),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    queue: VecDeque<QueuedSession>,
    /// Queued worker-equivalent slots per tenant (admission accounting;
    /// session counts come from the queue itself).
    per_tenant: HashMap<String, usize>,
    queued_slots: usize,
    closed: bool,
}

/// Bounded admission queue shared by the acceptor and the worker pool.
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<State>,
    ready: Condvar,
    global_cap: usize,
    tenant_cap: usize,
}

impl Scheduler {
    /// A queue bounded at `global_cap` worker-equivalent slots total and
    /// `tenant_cap` per tenant (both at least 1).  Single-shard sessions
    /// weigh one slot each, so for them the bounds read as session
    /// counts, exactly as before sharding existed.
    pub fn new(global_cap: usize, tenant_cap: usize) -> Self {
        Self {
            state: Mutex::new(State::default()),
            ready: Condvar::new(),
            global_cap: global_cap.max(1),
            tenant_cap: tenant_cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits a session or rejects it immediately — never blocks.
    ///
    /// The session's [`weight`](QueuedSession::slots) is charged against
    /// both bounds.  The check is `current < cap` rather than
    /// `current + weight <= cap`, so a session wider than the whole bound
    /// is still admissible when the bound is idle — it just prevents
    /// anything else from queueing behind it.
    ///
    /// # Errors
    ///
    /// The [`Rejected`] bound that was hit.
    pub fn try_enqueue(&self, session: QueuedSession) -> Result<(), Rejected> {
        let mut state = self.lock();
        if state.closed {
            return Err(Rejected::ShuttingDown);
        }
        if state.queued_slots >= self.global_cap {
            return Err(Rejected::GlobalFull {
                cap: self.global_cap,
            });
        }
        let tenant_depth = state
            .per_tenant
            .get(session.tenant.as_str())
            .copied()
            .unwrap_or(0);
        if tenant_depth >= self.tenant_cap {
            return Err(Rejected::TenantFull {
                cap: self.tenant_cap,
            });
        }
        let weight = session.weight();
        *state.per_tenant.entry(session.tenant.clone()).or_default() += weight;
        state.queued_slots += weight;
        state.queue.push_back(session);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next session; `None` means the scheduler was closed
    /// and drained (the worker should exit).
    pub fn dequeue(&self) -> Option<QueuedSession> {
        let mut state = self.lock();
        loop {
            if let Some(session) = state.queue.pop_front() {
                let weight = session.weight();
                state.queued_slots = state.queued_slots.saturating_sub(weight);
                if let Some(depth) = state.per_tenant.get_mut(session.tenant.as_str()) {
                    *depth = depth.saturating_sub(weight);
                    if *depth == 0 {
                        state.per_tenant.remove(session.tenant.as_str());
                    }
                }
                return Some(session);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending sessions still drain, new submissions get
    /// [`Rejected::ShuttingDown`], idle workers wake and exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Sessions currently queued (all tenants).
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Per-tenant queued **session counts** (tenants with zero queued are
    /// absent) — the metrics renderer's source of truth for queue gauges.
    /// Counts sessions, not slots, so dashboards keep reading naturally.
    pub fn depths(&self) -> BTreeMap<String, usize> {
        let state = self.lock();
        let mut out = BTreeMap::new();
        for session in &state.queue {
            *out.entry(session.tenant.clone()).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A connected socket pair to stand in for client connections.
    fn sock() -> TcpStream {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let _server_end = listener.accept().expect("accept");
        client
    }

    fn weighted(tenant: &str, slots: usize) -> QueuedSession {
        QueuedSession {
            tenant: tenant.to_string(),
            stream: sock(),
            leftover: Vec::new(),
            kind: SessionKind::Upload,
            slots,
        }
    }

    fn session(tenant: &str) -> QueuedSession {
        weighted(tenant, 1)
    }

    #[test]
    fn bounds_are_enforced_per_tenant_and_globally() {
        let sched = Scheduler::new(3, 2);
        sched.try_enqueue(session("a")).expect("a1");
        sched.try_enqueue(session("a")).expect("a2");
        assert_eq!(
            sched.try_enqueue(session("a")).unwrap_err(),
            Rejected::TenantFull { cap: 2 },
            "third session for one tenant bounces"
        );
        sched.try_enqueue(session("b")).expect("b1");
        assert_eq!(
            sched.try_enqueue(session("c")).unwrap_err(),
            Rejected::GlobalFull { cap: 3 },
            "fourth session overall bounces"
        );
        // Draining frees both bounds.
        assert_eq!(sched.dequeue().expect("drain").tenant, "a");
        sched.try_enqueue(session("a")).expect("slot freed");
        assert_eq!(sched.depth(), 3);
    }

    /// The PR-10 regression: a queued sharded session must be charged its
    /// shard budget, not one slot — otherwise a wide tenant queues as
    /// many sessions as a narrow one and monopolizes the pool's threads
    /// at dequeue.  Two tenants, one sharded: both make progress.
    #[test]
    fn shard_budgets_are_charged_at_admission() {
        let sched = Scheduler::new(8, 4);
        sched
            .try_enqueue(weighted("wide", 4))
            .expect("first sharded session admitted");
        assert_eq!(
            sched.try_enqueue(weighted("wide", 4)).unwrap_err(),
            Rejected::TenantFull { cap: 4 },
            "a second 4-shard session would let one tenant hold 8 threads"
        );
        // The narrow tenant still makes progress in the remaining slots.
        for i in 0..4 {
            sched
                .try_enqueue(session("narrow"))
                .unwrap_or_else(|e| panic!("narrow #{i} admitted: {e:?}"));
        }
        assert_eq!(
            sched.try_enqueue(session("narrow")).unwrap_err(),
            Rejected::GlobalFull { cap: 8 },
            "4 sharded slots + 4 single slots fill the global bound"
        );
        assert_eq!(sched.depth(), 5, "depth() still counts sessions");
        assert_eq!(
            sched.depths(),
            BTreeMap::from([("wide".to_string(), 1), ("narrow".to_string(), 4)]),
            "queue gauges count sessions, not slots"
        );
        // Draining the sharded session frees its whole weight at once.
        assert_eq!(sched.dequeue().expect("drain").tenant, "wide");
        sched
            .try_enqueue(weighted("wide", 4))
            .expect("the full shard weight was released");
    }

    /// A budget wider than the whole queue is still serveable: the first
    /// session in an idle bound always fits.
    #[test]
    fn oversized_budget_is_admissible_when_idle() {
        let sched = Scheduler::new(2, 2);
        sched
            .try_enqueue(weighted("huge", 16))
            .expect("idle bound admits any single session");
        assert_eq!(
            sched.try_enqueue(session("huge")).unwrap_err(),
            Rejected::GlobalFull { cap: 2 },
            "but nothing queues behind it"
        );
        assert_eq!(
            sched.try_enqueue(session("other")).unwrap_err(),
            Rejected::GlobalFull { cap: 2 },
        );
        sched.dequeue().expect("drain");
        sched.try_enqueue(session("other")).expect("slots released");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let sched = Scheduler::new(4, 4);
        sched.try_enqueue(session("a")).expect("enqueue");
        sched.close();
        assert_eq!(
            sched.try_enqueue(session("a")).unwrap_err(),
            Rejected::ShuttingDown
        );
        assert!(sched.dequeue().is_some(), "queued work still drains");
        assert!(sched.dequeue().is_none(), "then workers are told to exit");
    }
}
