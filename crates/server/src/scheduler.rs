//! The fixed worker pool's admission queue: a global FIFO with a hard
//! global bound and a per-tenant bound.
//!
//! Backpressure is explicit and immediate — [`Scheduler::try_enqueue`]
//! never blocks and never buffers beyond the bounds; a full queue is a
//! `Busy` answer the client can retry, not an unbounded `VecDeque`.  The
//! queued item is the accepted connection itself, so a queued session
//! costs one socket and a tenant string, not trace bytes.

use std::collections::{HashMap, VecDeque};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

/// One admitted session waiting for (or held by) a worker.
#[derive(Debug)]
pub struct QueuedSession {
    /// The tenant it is accounted under.
    pub tenant: String,
    /// The client connection, positioned just after its `SUBMIT` frame.
    pub stream: TcpStream,
    /// Bytes the handshake's buffered reader pulled off the socket past
    /// the `SUBMIT` frame (a client that streamed without waiting for
    /// `ACCEPTED`); the worker consumes these before the socket.
    pub leftover: Vec<u8>,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The global queue is at capacity.
    GlobalFull {
        /// The configured global bound.
        cap: usize,
    },
    /// This tenant's queue is at capacity.
    TenantFull {
        /// The configured per-tenant bound.
        cap: usize,
    },
    /// The daemon is shutting down.
    ShuttingDown,
}

impl Rejected {
    /// The operator-facing reason string carried in the BUSY frame.
    pub fn reason(&self) -> String {
        match self {
            Rejected::GlobalFull { cap } => format!("global queue full ({cap}/{cap})"),
            Rejected::TenantFull { cap } => format!("tenant queue full ({cap}/{cap})"),
            Rejected::ShuttingDown => "shutting down".to_string(),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    queue: VecDeque<QueuedSession>,
    per_tenant: HashMap<String, usize>,
    closed: bool,
}

/// Bounded admission queue shared by the acceptor and the worker pool.
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<State>,
    ready: Condvar,
    global_cap: usize,
    tenant_cap: usize,
}

impl Scheduler {
    /// A queue bounded at `global_cap` sessions total and `tenant_cap`
    /// per tenant (both at least 1).
    pub fn new(global_cap: usize, tenant_cap: usize) -> Self {
        Self {
            state: Mutex::new(State::default()),
            ready: Condvar::new(),
            global_cap: global_cap.max(1),
            tenant_cap: tenant_cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits a session or rejects it immediately — never blocks.
    ///
    /// # Errors
    ///
    /// The [`Rejected`] bound that was hit.
    pub fn try_enqueue(&self, session: QueuedSession) -> Result<(), Rejected> {
        let mut state = self.lock();
        if state.closed {
            return Err(Rejected::ShuttingDown);
        }
        if state.queue.len() >= self.global_cap {
            return Err(Rejected::GlobalFull {
                cap: self.global_cap,
            });
        }
        let tenant_depth = state
            .per_tenant
            .get(session.tenant.as_str())
            .copied()
            .unwrap_or(0);
        if tenant_depth >= self.tenant_cap {
            return Err(Rejected::TenantFull {
                cap: self.tenant_cap,
            });
        }
        *state.per_tenant.entry(session.tenant.clone()).or_default() += 1;
        state.queue.push_back(session);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next session; `None` means the scheduler was closed
    /// and drained (the worker should exit).
    pub fn dequeue(&self) -> Option<QueuedSession> {
        let mut state = self.lock();
        loop {
            if let Some(session) = state.queue.pop_front() {
                if let Some(depth) = state.per_tenant.get_mut(session.tenant.as_str()) {
                    *depth = depth.saturating_sub(1);
                    if *depth == 0 {
                        state.per_tenant.remove(session.tenant.as_str());
                    }
                }
                return Some(session);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending sessions still drain, new submissions get
    /// [`Rejected::ShuttingDown`], idle workers wake and exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Sessions currently queued (all tenants).
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Per-tenant queue depths (tenants with zero queued are absent) —
    /// the metrics renderer's source of truth for queue gauges.
    pub fn depths(&self) -> std::collections::BTreeMap<String, usize> {
        self.lock()
            .per_tenant
            .iter()
            .map(|(tenant, &depth)| (tenant.clone(), depth))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A connected socket pair to stand in for client connections.
    fn sock() -> TcpStream {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let _server_end = listener.accept().expect("accept");
        client
    }

    fn session(tenant: &str) -> QueuedSession {
        QueuedSession {
            tenant: tenant.to_string(),
            stream: sock(),
            leftover: Vec::new(),
        }
    }

    #[test]
    fn bounds_are_enforced_per_tenant_and_globally() {
        let sched = Scheduler::new(3, 2);
        sched.try_enqueue(session("a")).expect("a1");
        sched.try_enqueue(session("a")).expect("a2");
        assert_eq!(
            sched.try_enqueue(session("a")).unwrap_err(),
            Rejected::TenantFull { cap: 2 },
            "third session for one tenant bounces"
        );
        sched.try_enqueue(session("b")).expect("b1");
        assert_eq!(
            sched.try_enqueue(session("c")).unwrap_err(),
            Rejected::GlobalFull { cap: 3 },
            "fourth session overall bounces"
        );
        // Draining frees both bounds.
        assert_eq!(sched.dequeue().expect("drain").tenant, "a");
        sched.try_enqueue(session("a")).expect("slot freed");
        assert_eq!(sched.depth(), 3);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let sched = Scheduler::new(4, 4);
        sched.try_enqueue(session("a")).expect("enqueue");
        sched.close();
        assert_eq!(
            sched.try_enqueue(session("a")).unwrap_err(),
            Rejected::ShuttingDown
        );
        assert!(sched.dequeue().is_some(), "queued work still drains");
        assert!(sched.dequeue().is_none(), "then workers are told to exit");
    }
}
