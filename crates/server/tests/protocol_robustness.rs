//! Satellite coverage: hostile and broken clients against a live daemon.
//!
//! Every abuse pattern — wrong preamble, torn frames, oversized length
//! prefixes, slowloris drips, mid-stream disconnects — must surface as a
//! structured `ERROR` frame (or a counted handshake failure) and must
//! free the worker slot: after each attack the same daemon still serves
//! a clean session to completion.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cg_server::{spawn, ServerConfig, ServerHandle};
use cg_trace::proto::{self, read_frame, write_frame, write_preamble, ErrorClass, Frame};

fn golden() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../trace/golden/compress-s1.cgt")
}

/// One worker and short idle timeout: a held slot shows up immediately
/// and a stalled client is cut off fast.
fn test_server(tag: &str) -> (ServerHandle, std::thread::JoinHandle<()>) {
    test_server_with(tag, ServerConfig::default())
}

/// Like [`test_server`] but layered over a caller-tuned config (limits,
/// queue sizes) — the robustness defaults still win where they matter.
fn test_server_with(
    tag: &str,
    config: ServerConfig,
) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let dir = std::env::temp_dir().join(format!("cgtd-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        idle_timeout: Duration::from_millis(300),
        cache_dir: Some(dir),
        memoize: false,
        ..config
    })
    .expect("spawn server")
}

/// Connects, completes the handshake with `open`, and waits for ACCEPTED.
fn accepted_with(addr: &str, open: Frame) -> (BufReader<TcpStream>, BufWriter<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    write_preamble(&mut writer).expect("preamble");
    write_frame(&mut writer, &open).expect("open frame");
    writer.flush().expect("flush");
    match read_frame(&mut reader).expect("reply").expect("frame") {
        Frame::Accepted => (reader, writer),
        other => panic!("expected ACCEPTED, got {other:?}"),
    }
}

/// An accepted `SUBMIT` (whole-upload) session for `tenant`.
fn accepted_session(addr: &str, tenant: &str) -> (BufReader<TcpStream>, BufWriter<TcpStream>) {
    accepted_with(
        addr,
        Frame::Submit {
            tenant: tenant.to_string(),
        },
    )
}

/// An accepted live `STREAM` session for `tenant`.
fn accepted_stream(addr: &str, tenant: &str) -> (BufReader<TcpStream>, BufWriter<TcpStream>) {
    accepted_with(
        addr,
        Frame::Stream {
            tenant: tenant.to_string(),
        },
    )
}

/// Reads the session verdict and asserts it is an ERROR of `want`.
fn expect_error_class(reader: &mut BufReader<TcpStream>, want: ErrorClass, what: &str) {
    match read_frame(reader).expect("verdict").expect("frame") {
        Frame::Error { class, message } => {
            assert_eq!(class, want, "{what}: server said {class:?}: {message}");
        }
        other => panic!("{what}: expected ERROR, got {other:?}"),
    }
}

/// The daemon still serves a clean session — the abused worker slot was
/// freed, not wedged.
fn assert_recovered(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match proto::submit_path(addr, "clean", &golden(), Some(Duration::from_secs(60))) {
            Ok(outcome) => {
                assert!(outcome.events().unwrap_or(0) > 0);
                return;
            }
            Err(proto::ClientError::Busy { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("daemon did not recover: {e}"),
        }
    }
}

#[test]
fn wrong_preamble_is_refused_with_a_protocol_error() {
    let (handle, join) = test_server("preamble");
    let addr = handle.addr().to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    writer.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    writer.flush().expect("flush");
    expect_error_class(&mut reader, ErrorClass::Protocol, "http client");

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn torn_frame_then_half_close_is_a_structured_protocol_error() {
    let (handle, join) = test_server("torn");
    let addr = handle.addr().to_string();

    let (mut reader, mut writer) = accepted_session(&addr, "torn");
    // A DATA frame header promising 1000 payload bytes, then only 10,
    // then a half-close: the stream ends mid-frame.
    writer.write_all(&[0x02]).expect("kind");
    writer.write_all(&1000u32.to_le_bytes()).expect("len");
    writer.write_all(&[0xAA; 10]).expect("partial payload");
    writer.flush().expect("flush");
    writer
        .get_ref()
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    expect_error_class(&mut reader, ErrorClass::Protocol, "torn frame");

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let (handle, join) = test_server("oversized");
    let addr = handle.addr().to_string();

    let (mut reader, mut writer) = accepted_session(&addr, "oversized");
    // A DATA frame claiming a 4 GiB payload: the length must be rejected
    // on sight, not buffered.
    writer.write_all(&[0x02]).expect("kind");
    writer.write_all(&u32::MAX.to_le_bytes()).expect("len");
    writer.flush().expect("flush");
    expect_error_class(&mut reader, ErrorClass::Protocol, "oversized frame");

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn corrupt_frame_crc_is_a_structured_protocol_error() {
    let (handle, join) = test_server("crc");
    let addr = handle.addr().to_string();

    let (mut reader, mut writer) = accepted_session(&addr, "crc");
    // A well-formed DATA frame with its trailing CRC32 flipped.
    let mut framed = Vec::new();
    write_frame(&mut framed, &Frame::Data(vec![1, 2, 3, 4])).expect("encode");
    let last = framed.len() - 1;
    framed[last] ^= 0xFF;
    writer.write_all(&framed).expect("write");
    writer.flush().expect("flush");
    expect_error_class(&mut reader, ErrorClass::Protocol, "bad frame crc");

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn slowloris_is_cut_off_and_the_slot_freed() {
    let (handle, join) = test_server("slowloris");
    let addr = handle.addr().to_string();

    // Accepted, then silent: the 300ms idle timeout must reclaim the
    // worker, reported as a deadline-class error.
    let (mut reader, _writer) = accepted_session(&addr, "drip");
    expect_error_class(&mut reader, ErrorClass::Deadline, "slowloris");
    assert_eq!(handle.metrics().errors_of(ErrorClass::Deadline), 1);

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn mid_stream_disconnect_frees_the_slot() {
    let (handle, join) = test_server("disconnect");
    let addr = handle.addr().to_string();

    {
        let (_reader, mut writer) = accepted_session(&addr, "vanish");
        // One valid DATA frame, then the client process "dies".
        write_frame(&mut writer, &Frame::Data(vec![0u8; 128])).expect("data");
        writer.flush().expect("flush");
    } // both halves drop: RST/EOF mid-session

    // The worker sees a truncated session; its slot must come back.  The
    // error frame is unobservable (the client is gone), so watch metrics.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.metrics().errors_of(ErrorClass::Protocol) == 0 {
        assert!(Instant::now() < deadline, "disconnect never surfaced");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.metrics().sessions_active(), 0);

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn data_before_submit_is_refused() {
    let (handle, join) = test_server("early-data");
    let addr = handle.addr().to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    write_preamble(&mut writer).expect("preamble");
    write_frame(&mut writer, &Frame::Data(vec![1, 2, 3])).expect("data");
    writer.flush().expect("flush");
    expect_error_class(&mut reader, ErrorClass::Protocol, "data before submit");

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

/// Reads frames until the session verdict, skipping any `PROGRESS` the
/// incremental evaluator emitted first, and asserts an ERROR of `want`.
fn expect_stream_error_class(reader: &mut BufReader<TcpStream>, want: ErrorClass, what: &str) {
    loop {
        match read_frame(reader).expect("verdict").expect("frame") {
            Frame::Progress { .. } => continue,
            Frame::Error { class, message } => {
                assert_eq!(class, want, "{what}: server said {class:?}: {message}");
                return;
            }
            other => panic!("{what}: expected ERROR, got {other:?}"),
        }
    }
}

/// A live stream whose client vanishes mid-body: the incremental
/// evaluator sees a truncated session, counts a protocol error, and the
/// worker slot comes back.
#[test]
fn stream_disconnect_mid_flight_frees_the_slot() {
    let (handle, join) = test_server("stream-disconnect");
    let addr = handle.addr().to_string();

    {
        let (_reader, mut writer) = accepted_stream(&addr, "vanish");
        // The first bytes of a real trace so the server is mid-parse,
        // then the client process "dies".
        let body = std::fs::read(golden()).expect("read golden");
        write_frame(
            &mut writer,
            &Frame::Data(body[..256.min(body.len())].to_vec()),
        )
        .expect("data");
        writer.flush().expect("flush");
    } // both halves drop: RST/EOF mid-stream

    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.metrics().errors_of(ErrorClass::Protocol) == 0 {
        assert!(
            Instant::now() < deadline,
            "stream disconnect never surfaced"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.metrics().sessions_active(), 0, "slot freed");

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

/// A live stream that goes silent: the idle timeout must cut it off with
/// a deadline-class error, exactly like a stalled upload.
#[test]
fn stalled_stream_hits_the_idle_timeout() {
    let (handle, join) = test_server("stream-stall");
    let addr = handle.addr().to_string();

    let (mut reader, _writer) = accepted_stream(&addr, "drip");
    expect_stream_error_class(&mut reader, ErrorClass::Deadline, "stalled stream");
    assert_eq!(handle.metrics().errors_of(ErrorClass::Deadline), 1);

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

/// A live stream that blows through `max_events` *mid-flight*: the
/// incremental evaluator must stop at the budget with a limit-class
/// error instead of replaying to the end first.
#[test]
fn stream_exceeding_max_events_trips_the_limit_mid_flight() {
    let (handle, join) = test_server_with(
        "stream-limit",
        ServerConfig {
            default_limits: cg_trace::ResourceLimits {
                max_events: Some(10),
                ..cg_trace::ResourceLimits::untrusted()
            },
            // `assert_recovered` replays a full golden as tenant "clean";
            // exempt it from the 10-event budget under test.
            tenant_limits: std::collections::HashMap::from([(
                "clean".to_string(),
                cg_trace::ResourceLimits::untrusted(),
            )]),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    let (mut reader, mut writer) = accepted_stream(&addr, "hog");
    // Stream the whole golden; the server may answer (and hang up) while
    // bytes are still in flight, so write errors past that point are
    // expected, not failures.
    let body = std::fs::read(golden()).expect("read golden");
    for chunk in body.chunks(4096) {
        if write_frame(&mut writer, &Frame::Data(chunk.to_vec())).is_err() {
            break;
        }
    }
    let _ = write_frame(&mut writer, &Frame::End);
    let _ = writer.flush();
    expect_stream_error_class(&mut reader, ErrorClass::Limit, "event budget");
    assert_eq!(handle.metrics().sessions_active(), 0, "slot freed");

    assert_recovered(&addr);
    handle.shutdown();
    join.join().expect("server thread");
}

/// A torn session must not poison the *next* session on a fresh
/// connection even when both race the same single worker.
#[test]
fn interleaved_abuse_and_clean_sessions_all_resolve() {
    let (handle, join) = test_server("interleaved");
    let addr = handle.addr().to_string();

    let mut abusers = Vec::new();
    for i in 0..4 {
        let addr = addr.clone();
        abusers.push(std::thread::spawn(move || {
            let (mut reader, mut writer) = accepted_session(&addr, &format!("abuser-{i}"));
            writer.write_all(&[0x02]).expect("kind");
            writer.write_all(&64u32.to_le_bytes()).expect("len");
            writer.write_all(&[0u8; 16]).expect("partial");
            writer.flush().expect("flush");
            writer
                .get_ref()
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            expect_error_class(&mut reader, ErrorClass::Protocol, "torn frame");
        }));
    }
    for t in abusers {
        t.join().expect("abuser thread");
    }
    assert_recovered(&addr);
    assert_eq!(handle.metrics().sessions_active(), 0, "no slot leaked");

    handle.shutdown();
    join.join().expect("server thread");
}
