//! The acceptance gate for `cgtd`: the eight committed golden traces,
//! submitted concurrently (32+ sessions), must each come back with stats
//! byte-identical to the footer the trace itself carries — and the
//! daemon's backpressure, memoization and metrics must all be observable
//! from the outside.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use cg_server::{spawn, ServerConfig, ServerHandle};
use cg_trace::footer::CG_SECTION;
use cg_trace::open_trace;
use cg_trace::proto::{self, read_frame, write_frame, write_preamble, ClientError, Frame};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../trace/golden")
}

fn golden_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(golden_dir())
        .expect("golden dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cgt"))
        .collect();
    paths.sort();
    assert_eq!(paths.len(), 8, "the eight committed golden traces");
    paths
}

/// Drains a golden trace and returns (total events, embedded "cg" entries).
fn embedded_footer(path: &Path) -> (u64, Vec<(String, u64)>) {
    let mut reader = open_trace(path).expect("open golden");
    while reader.next_event().expect("event").is_some() {}
    let footer = reader.footer().expect("drained").clone();
    let section = footer.section(CG_SECTION).expect("cg footer");
    (footer.total_events(), section.entries.clone())
}

fn test_server(tag: &str, config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let dir = std::env::temp_dir().join(format!("cgtd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: Some(dir),
        ..config
    };
    spawn(config).expect("spawn server")
}

/// Submits with a bounded BUSY retry loop — backpressure is an expected,
/// retryable answer, not a failure.
fn submit_retrying(
    addr: &str,
    tenant: &str,
    path: &Path,
) -> Result<proto::SubmitOutcome, ClientError> {
    let timeout = Some(Duration::from_secs(120));
    for _ in 0..500 {
        match proto::submit_path(addr, tenant, path, timeout) {
            Err(ClientError::Busy { .. }) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => return other,
        }
    }
    panic!("server still busy after 500 retries");
}

#[test]
fn thirty_two_concurrent_sessions_match_embedded_footers() {
    let (handle, join) = test_server(
        "golden",
        ServerConfig {
            workers: 4,
            tenant_queue: 16,
            global_queue: 64,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    let goldens = golden_paths();
    let expected: HashMap<PathBuf, (u64, Vec<(String, u64)>)> = goldens
        .iter()
        .map(|p| (p.clone(), embedded_footer(p)))
        .collect();

    // 8 goldens x 4 tenants = 32 concurrent sessions.
    let mut threads = Vec::new();
    for round in 0..4 {
        for path in &goldens {
            let addr = addr.clone();
            let path = path.clone();
            let (want_events, want_entries) = expected[&path].clone();
            threads.push(std::thread::spawn(move || {
                let tenant = format!("tenant-{round}");
                let outcome = submit_retrying(&addr, &tenant, &path).expect("session succeeds");
                assert_eq!(
                    outcome.events(),
                    Some(want_events),
                    "{}: replayed event count matches the footer census",
                    path.display()
                );
                assert_eq!(
                    outcome.cg_entries(),
                    want_entries,
                    "{}: server stats are byte-identical to the embedded footer",
                    path.display()
                );
            }));
        }
    }
    assert_eq!(threads.len(), 32);
    for t in threads {
        t.join().expect("session thread");
    }

    let metrics = handle.metrics();
    assert_eq!(metrics.sessions_total(), 32);
    assert_eq!(metrics.sessions_active(), 0, "all worker slots freed");

    // Round two, serially: every golden has been evaluated at least once,
    // so each repeat upload must be a memoized hit with identical bytes.
    let hits_before = metrics.cache_hits();
    for path in &goldens {
        let outcome = submit_retrying(&addr, "repeat", path).expect("repeat succeeds");
        assert!(
            outcome.cached,
            "{}: repeat answered from cache",
            path.display()
        );
        assert_eq!(outcome.cg_entries(), expected[path].1);
    }
    assert_eq!(metrics.cache_hits() - hits_before, 8);

    // The metrics scrape shows the tenants and totals.
    let text = proto::fetch_metrics(&addr, Some(Duration::from_secs(10))).expect("metrics");
    for needle in [
        "cgtd.workers 4",
        "cgtd.sessions_total 40",
        "cgtd.sessions_active 0",
        "tenant.tenant-0.sessions 8",
        "tenant.repeat.cache_hits 8",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    handle.shutdown();
    join.join().expect("server thread");
}

/// The phase-2 acceptance gate: the same eight goldens, submitted
/// concurrently under a `shards=4` budget with the size floor lowered so
/// every upload takes the sharded path — byte-identity must survive
/// partition + parallel evaluation + aggregation.
#[test]
fn eight_concurrent_sharded_sessions_match_embedded_footers() {
    let (handle, join) = test_server(
        "sharded",
        ServerConfig {
            workers: 4,
            // Slot units: each session is admitted at its 4-shard weight.
            tenant_queue: 64,
            global_queue: 64,
            default_limits: cg_trace::ResourceLimits {
                max_shards: Some(4),
                ..cg_trace::ResourceLimits::untrusted()
            },
            shard_min_bytes: 0,
            memoize: false,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    let goldens = golden_paths();
    let mut threads = Vec::new();
    for path in &goldens {
        let addr = addr.clone();
        let path = path.clone();
        let (want_events, want_entries) = embedded_footer(&path);
        threads.push(std::thread::spawn(move || {
            let outcome = submit_retrying(&addr, "sharded", &path).expect("session succeeds");
            assert_eq!(
                outcome.events(),
                Some(want_events),
                "{}: sharded event count matches the footer census",
                path.display()
            );
            assert_eq!(
                outcome.cg_entries(),
                want_entries,
                "{}: sharded stats are byte-identical to the embedded footer",
                path.display()
            );
        }));
    }
    assert_eq!(threads.len(), 8);
    for t in threads {
        t.join().expect("session thread");
    }

    let metrics = handle.metrics();
    assert_eq!(metrics.sessions_total(), 8);
    assert_eq!(
        metrics.sessions_sharded(),
        8,
        "every session took the sharded path"
    );
    assert_eq!(metrics.sessions_active(), 0, "all shard slots freed");

    handle.shutdown();
    join.join().expect("server thread");
}

/// Four goldens opened as live `STREAM` sessions concurrently: the
/// incremental evaluator must answer byte-identically to the embedded
/// footer, with at least one `PROGRESS` frame per session and monotonic
/// progress counters.
#[test]
fn four_concurrent_live_streams_match_embedded_footers() {
    let (handle, join) = test_server(
        "streams",
        ServerConfig {
            workers: 4,
            tenant_queue: 8,
            global_queue: 64,
            memoize: false,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    let goldens: Vec<PathBuf> = golden_paths().into_iter().take(4).collect();
    let mut threads = Vec::new();
    for path in &goldens {
        let addr = addr.clone();
        let path = path.clone();
        let (want_events, want_entries) = embedded_footer(&path);
        threads.push(std::thread::spawn(move || {
            let file = std::fs::File::open(&path).expect("open golden");
            let mut body = std::io::BufReader::new(file);
            let mut frames = 0u64;
            let mut last = (0u64, 0u64);
            let outcome = proto::stream_events(
                &addr,
                "live",
                &mut body,
                Some(Duration::from_secs(120)),
                |p| {
                    frames += 1;
                    assert!(
                        (p.events, p.bytes) >= last,
                        "{}: progress is monotonic",
                        path.display()
                    );
                    last = (p.events, p.bytes);
                },
            )
            .expect("live stream succeeds");
            assert!(frames >= 1, "{}: saw PROGRESS frames", path.display());
            assert_eq!(
                outcome.events(),
                Some(want_events),
                "{}: streamed event count matches the footer census",
                path.display()
            );
            assert_eq!(
                outcome.cg_entries(),
                want_entries,
                "{}: streamed stats are byte-identical to the embedded footer",
                path.display()
            );
            assert!(!outcome.cached, "live streams bypass the result cache");
        }));
    }
    for t in threads {
        t.join().expect("stream thread");
    }

    let metrics = handle.metrics();
    assert_eq!(metrics.sessions_total(), 4);
    assert_eq!(metrics.sessions_streamed(), 4);
    assert_eq!(metrics.sessions_active(), 0, "all worker slots freed");

    handle.shutdown();
    join.join().expect("server thread");
}

/// A raw session opened by hand: preamble + SUBMIT sent, then *held* —
/// the admission (and, once dequeued, the worker slot) stays occupied
/// until the stream is dropped.  `wait_accept` reads the ACCEPTED frame,
/// which only a dequeued session ever receives.
fn open_held_session(addr: &str, tenant: &str, wait_accept: bool) -> std::net::TcpStream {
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    write_preamble(&mut writer).expect("preamble");
    write_frame(
        &mut writer,
        &Frame::Submit {
            tenant: tenant.to_string(),
        },
    )
    .expect("submit");
    std::io::Write::flush(&mut writer).expect("flush");
    if wait_accept {
        match read_frame(&mut reader).expect("reply").expect("frame") {
            Frame::Accepted => {}
            other => panic!("expected ACCEPTED, got {other:?}"),
        }
    }
    stream
}

#[test]
fn saturation_answers_busy_and_recovers() {
    // One worker, one queue slot of every kind: the third concurrent
    // session MUST bounce.
    let (handle, join) = test_server(
        "busy",
        ServerConfig {
            workers: 1,
            tenant_queue: 1,
            global_queue: 1,
            idle_timeout: Duration::from_secs(20),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();
    let golden = golden_dir().join("compress-s1.cgt");

    // Occupy the only worker and the only queue slot with held sessions.
    let occupant = open_held_session(&addr, "hog-a", true);
    // The worker dequeues the first session quickly; make sure it has
    // before parking the second one in the queue.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.metrics().sessions_active() == 0 {
        assert!(std::time::Instant::now() < deadline, "worker never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued = open_held_session(&addr, "hog-b", false);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.queue_depth() == 0 {
        assert!(std::time::Instant::now() < deadline, "session never queued");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Now the queue is full: a fresh submission gets an explicit BUSY.
    let err = proto::submit_path(&addr, "victim", &golden, Some(Duration::from_secs(10)))
        .expect_err("saturated daemon must bounce");
    match err {
        ClientError::Busy { reason } => {
            assert!(reason.contains("queue full"), "reason: {reason}");
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    assert!(handle.metrics().busy_rejected() >= 1);

    // Release the hogs (mid-stream disconnects) and verify the daemon
    // recovers: the same submission now succeeds end-to-end.
    drop(occupant);
    drop(queued);
    let outcome = submit_retrying(&addr, "victim", &golden).expect("recovered");
    let (want_events, want_entries) = embedded_footer(&golden);
    assert_eq!(outcome.events(), Some(want_events));
    assert_eq!(outcome.cg_entries(), want_entries);

    handle.shutdown();
    join.join().expect("server thread");
}
